//! UTCTime and GeneralizedTime, plus the minimal calendar arithmetic the
//! validity-period analyses (Figure 3) need.

use crate::error::{Error, Result};
use std::fmt;

/// Which ASN.1 time type carried a value on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeKind {
    /// UTCTime (`YYMMDDHHMMSSZ`, years 1950–2049).
    Utc,
    /// GeneralizedTime (`YYYYMMDDHHMMSSZ`).
    Generalized,
}

/// A calendar timestamp (proleptic Gregorian, always UTC).
///
/// Deliberately tiny: certificates need construction, parsing, ordering, and
/// day arithmetic — not a full datetime library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DateTime {
    /// Full year, e.g. 2025.
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
    /// Hour 0–23.
    pub hour: u8,
    /// Minute 0–59.
    pub minute: u8,
    /// Second 0–59 (leap seconds rejected, as in DER practice).
    pub second: u8,
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl DateTime {
    /// Construct a validated timestamp.
    pub fn new(year: i32, month: u8, day: u8, hour: u8, minute: u8, second: u8) -> Result<DateTime> {
        if !(1..=12).contains(&month)
            || day == 0
            || day > days_in_month(year, month)
            || hour > 23
            || minute > 59
            || second > 59
        {
            return Err(Error::InvalidTime);
        }
        Ok(DateTime { year, month, day, hour, minute, second })
    }

    /// Midnight on the given date.
    pub fn date(year: i32, month: u8, day: u8) -> Result<DateTime> {
        DateTime::new(year, month, day, 0, 0, 0)
    }

    /// Days since the civil epoch 1970-01-01 (may be negative).
    ///
    /// Howard Hinnant's `days_from_civil` algorithm.
    pub fn days_from_epoch(&self) -> i64 {
        let y = if self.month <= 2 { self.year - 1 } else { self.year } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146097 + doe - 719468
    }

    /// Seconds since 1970-01-01T00:00:00Z.
    pub fn unix_seconds(&self) -> i64 {
        self.days_from_epoch() * 86400
            + self.hour as i64 * 3600
            + self.minute as i64 * 60
            + self.second as i64
    }

    /// Whole days from `self` to `other` (positive when `other` is later).
    pub fn days_until(&self, other: &DateTime) -> i64 {
        // Round toward the paper's convention: a 90-day cert issued at noon
        // and expiring at noon 90 days later counts as 90 days.
        (other.unix_seconds() - self.unix_seconds()) / 86400
    }

    /// `self` advanced by `days` (time of day preserved).
    pub fn plus_days(&self, days: i64) -> DateTime {
        let mut total = self.days_from_epoch() + days;
        // civil_from_days (inverse of days_from_civil).
        total += 719468;
        let era = if total >= 0 { total } else { total - 146096 } / 146097;
        let doe = total - era * 146097;
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
        let year = (if m <= 2 { y + 1 } else { y }) as i32;
        DateTime { year, month: m, day: d, ..*self }
    }

    /// Parse UTCTime content octets (`YYMMDDHHMMSSZ`).
    ///
    /// RFC 5280 requires seconds and the `Z` suffix; two-digit years map to
    /// 1950–2049.
    pub fn from_utc_time(bytes: &[u8]) -> Result<DateTime> {
        let s = std::str::from_utf8(bytes).map_err(|_| Error::InvalidTime)?;
        if s.len() != 13 || !s.ends_with('Z') {
            return Err(Error::InvalidTime);
        }
        let d = digits(&s[..12])?;
        let yy = (d[0] * 10 + d[1]) as i32;
        let year = if yy >= 50 { 1900 + yy } else { 2000 + yy };
        DateTime::new(
            year,
            (d[2] * 10 + d[3]) as u8,
            (d[4] * 10 + d[5]) as u8,
            (d[6] * 10 + d[7]) as u8,
            (d[8] * 10 + d[9]) as u8,
            (d[10] * 10 + d[11]) as u8,
        )
    }

    /// Parse GeneralizedTime content octets (`YYYYMMDDHHMMSSZ`).
    pub fn from_generalized(bytes: &[u8]) -> Result<DateTime> {
        let s = std::str::from_utf8(bytes).map_err(|_| Error::InvalidTime)?;
        if s.len() != 15 || !s.ends_with('Z') {
            return Err(Error::InvalidTime);
        }
        let d = digits(&s[..14])?;
        let year = (d[0] as i32) * 1000 + (d[1] as i32) * 100 + (d[2] as i32) * 10 + d[3] as i32;
        DateTime::new(
            year,
            (d[4] * 10 + d[5]) as u8,
            (d[6] * 10 + d[7]) as u8,
            (d[8] * 10 + d[9]) as u8,
            (d[10] * 10 + d[11]) as u8,
            (d[12] * 10 + d[13]) as u8,
        )
    }

    /// The `YYMMDDHHMMSSZ` form (caller must ensure year is 1950–2049).
    pub fn to_utc_time_string(&self) -> String {
        format!(
            "{:02}{:02}{:02}{:02}{:02}{:02}Z",
            self.year.rem_euclid(100),
            self.month,
            self.day,
            self.hour,
            self.minute,
            self.second
        )
    }

    /// The `YYYYMMDDHHMMSSZ` form.
    pub fn to_generalized_string(&self) -> String {
        format!(
            "{:04}{:02}{:02}{:02}{:02}{:02}Z",
            self.year, self.month, self.day, self.hour, self.minute, self.second
        )
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
            self.year, self.month, self.day, self.hour, self.minute, self.second
        )
    }
}

fn digits(s: &str) -> Result<Vec<i32>> {
    s.bytes()
        .map(|b| {
            if b.is_ascii_digit() {
                Ok((b - b'0') as i32)
            } else {
                Err(Error::InvalidTime)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utc_time_round_trip() {
        let dt = DateTime::new(2024, 3, 15, 12, 30, 45).unwrap();
        let s = dt.to_utc_time_string();
        assert_eq!(s, "240315123045Z");
        assert_eq!(DateTime::from_utc_time(s.as_bytes()).unwrap(), dt);
    }

    #[test]
    fn utc_time_century_pivot() {
        let d = DateTime::from_utc_time(b"500101000000Z").unwrap();
        assert_eq!(d.year, 1950);
        let d = DateTime::from_utc_time(b"491231235959Z").unwrap();
        assert_eq!(d.year, 2049);
    }

    #[test]
    fn generalized_round_trip() {
        let dt = DateTime::new(2051, 12, 31, 23, 59, 59).unwrap();
        let s = dt.to_generalized_string();
        assert_eq!(s, "20511231235959Z");
        assert_eq!(DateTime::from_generalized(s.as_bytes()).unwrap(), dt);
    }

    #[test]
    fn rejects_malformed_times() {
        assert!(DateTime::from_utc_time(b"2403151230Z").is_err()); // no seconds
        assert!(DateTime::from_utc_time(b"240315123045").is_err()); // no Z
        assert!(DateTime::from_utc_time(b"24031512304aZ").is_err());
        assert!(DateTime::from_utc_time(b"241315123045Z").is_err()); // month 13
        assert!(DateTime::from_utc_time(b"240230123045Z").is_err()); // Feb 30
        assert!(DateTime::from_generalized(b"20240315123045+0800".as_ref()).is_err());
    }

    #[test]
    fn leap_years() {
        assert!(DateTime::date(2024, 2, 29).is_ok());
        assert!(DateTime::date(2023, 2, 29).is_err());
        assert!(DateTime::date(2000, 2, 29).is_ok());
        assert!(DateTime::date(1900, 2, 29).is_err());
    }

    #[test]
    fn epoch_days() {
        assert_eq!(DateTime::date(1970, 1, 1).unwrap().days_from_epoch(), 0);
        assert_eq!(DateTime::date(1970, 1, 2).unwrap().days_from_epoch(), 1);
        assert_eq!(DateTime::date(1969, 12, 31).unwrap().days_from_epoch(), -1);
        assert_eq!(DateTime::date(2000, 3, 1).unwrap().days_from_epoch(), 11017);
    }

    #[test]
    fn plus_days_round_trip() {
        let start = DateTime::date(2023, 1, 31).unwrap();
        let later = start.plus_days(90);
        assert_eq!(start.days_until(&later), 90);
        assert_eq!(later, DateTime::date(2023, 5, 1).unwrap());
        let back = later.plus_days(-90);
        assert_eq!(back, start);
    }

    #[test]
    fn ordering() {
        let a = DateTime::new(2024, 1, 1, 0, 0, 0).unwrap();
        let b = DateTime::new(2024, 1, 1, 0, 0, 1).unwrap();
        assert!(a < b);
    }
}
