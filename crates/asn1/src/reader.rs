//! Zero-copy DER reader.
//!
//! [`Reader`] walks a byte slice as a stream of TLV triplets. It enforces the
//! DER rules that matter for security: definite lengths only, minimal length
//! encodings, bounded nesting depth, and exact consumption.

use crate::error::{Error, Result};
use crate::tag::{tags, Class, Tag};
use std::cell::Cell;

/// Maximum nesting depth accepted by [`Reader::read_nested`] helpers.
///
/// Real certificates nest about 10 deep; 64 leaves generous headroom while
/// stopping pathological inputs (the "deep nesting" failure-injection tests
/// exercise this limit).
pub const MAX_DEPTH: usize = 64;

/// Resource limits for one parse, enforced by budgeted [`Reader`]s.
///
/// Declared DER lengths are attacker-controlled; the reader already refuses
/// to slice past the real input, but a hostile certificate can still make a
/// naive pipeline do quadratic work (nesting bombs re-walk the same bytes at
/// every level) or carry absurd element counts. A `ParseBudget` puts hard
/// ceilings on all three axes:
///
/// * `max_input` — total input size admitted at all ([`ParseBudget::admit`]);
/// * `max_tlv_bytes` — cumulative `raw` bytes over every TLV element read,
///   counting re-visits of nested content (so a depth-`d` nesting bomb costs
///   `O(d · n)` against this budget and trips it long before wall time);
/// * `max_elements` — total TLV elements decoded.
///
/// The defaults are sized for certificates (a few KB of DER, tens of
/// elements deep) with orders-of-magnitude headroom, so they only ever
/// trigger on hostile input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseBudget {
    /// Maximum admissible input, in bytes.
    pub max_input: usize,
    /// Maximum cumulative element bytes (`Tlv::raw` lengths summed over all
    /// reads, nested re-reads included).
    pub max_tlv_bytes: u64,
    /// Maximum number of TLV elements decoded.
    pub max_elements: u64,
}

impl Default for ParseBudget {
    fn default() -> Self {
        ParseBudget {
            max_input: 1 << 20,          // 1 MiB — certificates are a few KB
            max_tlv_bytes: 64 << 20,     // 64 MiB of cumulative TLV traffic
            max_elements: 1 << 20,       // a million elements
        }
    }
}

impl ParseBudget {
    /// Check `input` against `max_input` before any parsing starts.
    pub fn admit(&self, input: &[u8]) -> Result<()> {
        if input.len() > self.max_input {
            return Err(Error::BudgetExceeded { resource: "input_bytes" });
        }
        Ok(())
    }

    /// Start tracking consumption against this budget.
    pub fn start(self) -> BudgetState {
        BudgetState { limits: self, tlv_bytes: Cell::new(0), elements: Cell::new(0) }
    }
}

/// Live consumption counters for one parse, shared by every [`Reader`]
/// derived from the root reader (nested readers charge the same state).
#[derive(Debug)]
pub struct BudgetState {
    limits: ParseBudget,
    tlv_bytes: Cell<u64>,
    elements: Cell<u64>,
}

impl BudgetState {
    /// Charge one decoded TLV element of `raw_len` total bytes.
    fn charge(&self, raw_len: usize) -> Result<()> {
        let elements = self.elements.get().saturating_add(1);
        self.elements.set(elements);
        if elements > self.limits.max_elements {
            return Err(Error::BudgetExceeded { resource: "elements" });
        }
        let tlv_bytes = self.tlv_bytes.get().saturating_add(raw_len as u64);
        self.tlv_bytes.set(tlv_bytes);
        if tlv_bytes > self.limits.max_tlv_bytes {
            return Err(Error::BudgetExceeded { resource: "tlv_bytes" });
        }
        Ok(())
    }

    /// Check `input` against the originating budget's `max_input`, as
    /// [`ParseBudget::admit`] does. Lets a caller that holds only the
    /// started state (e.g. the zero-copy certificate view, whose borrows
    /// thread through the state) run the same admission check.
    pub fn admit(&self, input: &[u8]) -> Result<()> {
        self.limits.admit(input)
    }

    /// TLV elements decoded so far.
    pub fn elements_used(&self) -> u64 {
        self.elements.get()
    }

    /// Cumulative TLV bytes decoded so far.
    pub fn tlv_bytes_used(&self) -> u64 {
        self.tlv_bytes.get()
    }
}

/// A half-open byte range `[offset, offset + len)` into a parse input.
///
/// Spans are the unit of evidence provenance: every structural element a
/// [`Reader`] yields can be located back in the original DER buffer without
/// copying any bytes. Offsets are absolute within the buffer handed to the
/// *root* reader — nested readers created by [`Reader::read_nested`] carry
/// their base offset forward, so a span taken ten levels deep still indexes
/// the outermost input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte, absolute within the root input.
    pub offset: usize,
    /// Length of the range in bytes.
    pub len: usize,
}

impl Span {
    /// One byte past the end of the range.
    pub fn end(&self) -> usize {
        self.offset.saturating_add(self.len)
    }

    /// True when `other` lies entirely within this range.
    pub fn contains(&self, other: &Span) -> bool {
        other.offset >= self.offset && other.end() <= self.end()
    }

    /// True when the ranges share at least one byte.
    pub fn overlaps(&self, other: &Span) -> bool {
        self.offset < other.end() && other.offset < self.end()
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}..{})", self.offset, self.end())
    }
}

/// One decoded TLV element, borrowing the input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tlv<'a> {
    /// The element's tag.
    pub tag: Tag,
    /// The value octets (content only).
    pub value: &'a [u8],
    /// The complete element: identifier + length + content octets.
    ///
    /// Lints and the signature simulator need access to the raw bytes that
    /// were actually on the wire.
    pub raw: &'a [u8],
}

impl<'a> Tlv<'a> {
    /// A reader over this element's contents (for constructed types).
    pub fn contents(&self) -> Reader<'a> {
        Reader::new(self.value)
    }

    /// Require this element to carry `expected`, else [`Error::TagMismatch`].
    pub fn expect(&self, expected: Tag) -> Result<&Tlv<'a>> {
        if self.tag == expected {
            Ok(self)
        } else {
            Err(Error::TagMismatch { expected, found: self.tag })
        }
    }
}

/// A cursor over DER bytes.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
    depth: usize,
    base: usize,
    budget: Option<&'a BudgetState>,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `input`.
    pub fn new(input: &'a [u8]) -> Reader<'a> {
        Reader { input, pos: 0, depth: 0, base: 0, budget: None }
    }

    /// Start reading `input` that is known to sit at absolute byte offset
    /// `base` of some enclosing buffer, so that [`Reader::offset`] and the
    /// spans of [`Reader::read_tlv_spanned`] index the enclosing buffer.
    ///
    /// Used by evidence capture to re-walk a slice (e.g. an extension's
    /// OCTET STRING contents) while keeping provenance anchored to the
    /// original certificate DER.
    pub fn with_base(input: &'a [u8], base: usize) -> Reader<'a> {
        Reader { input, pos: 0, depth: 0, base, budget: None }
    }

    /// Start reading `input` with every decoded element charged against
    /// `budget`. Nested readers created by [`Reader::read_nested`] (and the
    /// sequence/set helpers) share the same budget state, so the limits are
    /// cumulative across the whole parse — call [`ParseBudget::admit`] on
    /// the input first to enforce `max_input`.
    pub fn with_budget(input: &'a [u8], budget: &'a BudgetState) -> Reader<'a> {
        Reader { input, pos: 0, depth: 0, base: 0, budget: Some(budget) }
    }

    /// A reader over nested content octets at absolute offset `base` and
    /// nesting depth `depth`, sharing an optional budget — the lazy
    /// cursor's way of descending one level (`crate::cursor`).
    pub(crate) fn nested_at(
        input: &'a [u8],
        base: usize,
        depth: usize,
        budget: Option<&'a BudgetState>,
    ) -> Reader<'a> {
        Reader { input, pos: 0, depth, base, budget }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// The cursor's absolute byte offset: position within this reader's
    /// slice plus the base offset inherited from enclosing readers.
    pub fn offset(&self) -> usize {
        self.base.saturating_add(self.pos)
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fail with [`Error::TrailingData`] unless the input is exhausted.
    pub fn finish(&self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(Error::TrailingData { remaining: self.remaining() })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::UnexpectedEof { needed: n - self.remaining() });
        }
        let end = self.pos.checked_add(n).ok_or(Error::InvalidLength)?;
        let out = self.input.get(self.pos..end).ok_or(Error::InvalidLength)?;
        self.pos = end;
        Ok(out)
    }

    fn take_byte(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Peek the tag of the next element without consuming anything.
    ///
    /// Returns `None` at end of input. Used for OPTIONAL fields.
    pub fn peek_tag(&self) -> Option<Tag> {
        let mut clone = self.clone();
        clone.read_tag().ok()
    }

    fn read_tag(&mut self) -> Result<Tag> {
        let first = self.take_byte()?;
        let (class, constructed, low) = Tag::from_first_octet(first);
        let number = if low < 31 {
            low as u32
        } else {
            // High tag number form: base-128, MSB continuation, at most
            // 4 octets (tag numbers fit in u32 well before that).
            let mut n: u32 = 0;
            let mut terminated = false;
            for octet in 0..4 {
                let b = self.take_byte()?;
                if octet == 0 && b == 0x80 {
                    return Err(Error::InvalidTag); // non-minimal
                }
                n = n.checked_mul(128).ok_or(Error::InvalidTag)?;
                n += (b & 0x7F) as u32;
                if b & 0x80 == 0 {
                    terminated = true;
                    break;
                }
            }
            if !terminated {
                return Err(Error::InvalidTag);
            }
            if n < 31 {
                return Err(Error::InvalidTag); // should have used low form
            }
            n
        };
        Ok(Tag { class, constructed, number })
    }

    fn read_length(&mut self) -> Result<usize> {
        let first = self.take_byte()?;
        if first < 0x80 {
            return self.admit_length(first as usize);
        }
        if first == 0x80 {
            return Err(Error::IndefiniteLength);
        }
        let n_octets = (first & 0x7F) as usize;
        if n_octets > 8 {
            return Err(Error::InvalidLength);
        }
        let bytes = self.take(n_octets)?;
        if bytes[0] == 0 {
            return Err(Error::NonMinimalLength);
        }
        let mut len: u64 = 0;
        for &b in bytes {
            len = (len << 8) | b as u64;
        }
        if len < 0x80 {
            return Err(Error::NonMinimalLength);
        }
        let len = usize::try_from(len).map_err(|_| Error::InvalidLength)?;
        self.admit_length(len)
    }

    /// Inflated-length guard: a declared length is rejected the moment it
    /// exceeds the bytes actually present, before any consumer can size an
    /// allocation or a loop bound from it. This makes "length bombs"
    /// structurally inert — no code downstream of the reader ever sees a
    /// declared length larger than the remaining input.
    fn admit_length(&self, len: usize) -> Result<usize> {
        if len > self.remaining() {
            return Err(Error::UnexpectedEof { needed: len - self.remaining() });
        }
        Ok(len)
    }

    /// Read the next complete TLV element.
    pub fn read_tlv(&mut self) -> Result<Tlv<'a>> {
        let start = self.pos;
        let tag = self.read_tag()?;
        let len = self.read_length()?;
        let value = self.take(len)?;
        let raw = self.input.get(start..self.pos).unwrap_or(&[]); // take() keeps pos <= input.len() and start was a prior pos
        if let Some(budget) = self.budget {
            budget.charge(raw.len())?;
        }
        Ok(Tlv { tag, value, raw })
    }

    /// Read the next complete TLV element together with the absolute byte
    /// range it occupies (identifier + length + content octets).
    ///
    /// The span indexes the buffer handed to the root reader (see
    /// [`Reader::with_base`]); evidence capture uses it to anchor findings
    /// to concrete input bytes.
    pub fn read_tlv_spanned(&mut self) -> Result<(Span, Tlv<'a>)> {
        let start = self.offset();
        let tlv = self.read_tlv()?;
        Ok((Span { offset: start, len: tlv.raw.len() }, tlv))
    }

    /// Read the next element and require tag `expected`.
    pub fn read_expected(&mut self, expected: Tag) -> Result<Tlv<'a>> {
        let tlv = self.read_tlv()?;
        tlv.expect(expected)?; // analysis:allow(expect) Tlv::expect returns Result, it never panics
        Ok(tlv)
    }

    /// Read an element only if its tag matches (OPTIONAL fields).
    pub fn read_optional(&mut self, tag: Tag) -> Result<Option<Tlv<'a>>> {
        match self.peek_tag() {
            Some(t) if t == tag => Ok(Some(self.read_tlv()?)),
            _ => Ok(None),
        }
    }

    /// Read an element whose tag is context-specific `[n]` regardless of the
    /// constructed bit (OPTIONAL fields that implementations encode loosely).
    pub fn read_optional_context(&mut self, number: u32) -> Result<Option<Tlv<'a>>> {
        match self.peek_tag() {
            Some(t) if t.class == Class::ContextSpecific && t.number == number => {
                Ok(Some(self.read_tlv()?))
            }
            _ => Ok(None),
        }
    }

    /// Read a SEQUENCE and hand its contents to `f`; `f` must consume it
    /// entirely.
    pub fn read_sequence<T>(&mut self, f: impl FnOnce(&mut Reader<'a>) -> Result<T>) -> Result<T> {
        self.read_nested(tags::SEQUENCE, f)
    }

    /// Read a SET and hand its contents to `f`; `f` must consume it entirely.
    pub fn read_set<T>(&mut self, f: impl FnOnce(&mut Reader<'a>) -> Result<T>) -> Result<T> {
        self.read_nested(tags::SET, f)
    }

    /// Read an element with tag `tag` and parse its contents with `f`,
    /// enforcing complete consumption and the depth limit.
    pub fn read_nested<T>(
        &mut self,
        tag: Tag,
        f: impl FnOnce(&mut Reader<'a>) -> Result<T>,
    ) -> Result<T> {
        if self.depth + 1 > MAX_DEPTH {
            return Err(Error::DepthExceeded { limit: MAX_DEPTH });
        }
        let tlv = self.read_expected(tag)?;
        // The content octets end where the element ends, so they start at
        // the current absolute offset minus the value length.
        let value_base = self.offset().saturating_sub(tlv.value.len());
        let mut inner = Reader {
            input: tlv.value,
            pos: 0,
            depth: self.depth + 1,
            base: value_base,
            budget: self.budget,
        };
        let out = f(&mut inner)?;
        inner.finish()?;
        Ok(out)
    }

    /// Collect every remaining element at this level.
    pub fn read_all(&mut self) -> Result<Vec<Tlv<'a>>> {
        let mut out = Vec::new();
        while !self.is_empty() {
            out.push(self.read_tlv()?);
        }
        Ok(out)
    }
}

/// Parse `input` as exactly one TLV element with no trailing bytes.
pub fn parse_single(input: &[u8]) -> Result<Tlv<'_>> {
    let mut r = Reader::new(input);
    let tlv = r.read_tlv()?;
    r.finish()?;
    Ok(tlv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::tags;

    #[test]
    fn reads_short_form() {
        let der = [0x02, 0x01, 0x05];
        let tlv = parse_single(&der).unwrap();
        assert_eq!(tlv.tag, tags::INTEGER);
        assert_eq!(tlv.value, &[0x05]);
        assert_eq!(tlv.raw, &der);
    }

    #[test]
    fn reads_long_form() {
        let mut der = vec![0x04, 0x81, 0x80];
        der.extend(std::iter::repeat_n(0xAB, 0x80));
        let tlv = parse_single(&der).unwrap();
        assert_eq!(tlv.value.len(), 0x80);
    }

    #[test]
    fn rejects_non_minimal_long_form() {
        // 0x7F encoded in long form.
        let mut der = vec![0x04, 0x81, 0x7F];
        der.extend(std::iter::repeat_n(0, 0x7F));
        assert_eq!(parse_single(&der).unwrap_err(), Error::NonMinimalLength);
        // Leading zero length octet.
        let der = [0x04, 0x82, 0x00, 0x81, 0x00];
        assert_eq!(parse_single(&der).unwrap_err(), Error::NonMinimalLength);
    }

    #[test]
    fn rejects_indefinite_length() {
        let der = [0x30, 0x80, 0x00, 0x00];
        assert_eq!(parse_single(&der).unwrap_err(), Error::IndefiniteLength);
    }

    #[test]
    fn rejects_truncated_value() {
        let der = [0x04, 0x05, 0x01, 0x02];
        assert_eq!(parse_single(&der).unwrap_err(), Error::UnexpectedEof { needed: 3 });
    }

    #[test]
    fn rejects_trailing_garbage() {
        let der = [0x05, 0x00, 0xFF];
        assert_eq!(parse_single(&der).unwrap_err(), Error::TrailingData { remaining: 1 });
    }

    #[test]
    fn high_tag_number_round_trip() {
        // [100] primitive, empty — 100 needs high-tag form.
        let der = [0x9F, 0x64, 0x00];
        let tlv = parse_single(&der).unwrap();
        assert_eq!(tlv.tag, Tag::context(100));
    }

    #[test]
    fn rejects_non_minimal_high_tag() {
        let der = [0x9F, 0x80, 0x64, 0x00];
        assert!(parse_single(&der).is_err());
        // High form used for a number < 31.
        let der = [0x9F, 0x05, 0x00];
        assert_eq!(parse_single(&der).unwrap_err(), Error::InvalidTag);
    }

    #[test]
    fn nested_sequences_respect_depth_limit() {
        // Build MAX_DEPTH + 2 nested sequences with the writer (it emits
        // long-form lengths correctly as the payload grows).
        let mut der = vec![0x05, 0x00]; // NULL core
        for _ in 0..MAX_DEPTH + 2 {
            let mut w = crate::writer::Writer::new();
            w.write_tlv(tags::SEQUENCE, &der);
            der = w.into_bytes();
        }
        fn recurse(r: &mut Reader<'_>) -> Result<()> {
            if r.peek_tag() == Some(tags::SEQUENCE) {
                r.read_sequence(recurse)
            } else {
                r.read_tlv().map(|_| ())
            }
        }
        let mut r = Reader::new(&der);
        assert_eq!(recurse(&mut r).unwrap_err(), Error::DepthExceeded { limit: MAX_DEPTH });
    }

    #[test]
    fn optional_context_reads_only_matching() {
        // [0] 0x01 then INTEGER 2
        let der = [0xA0, 0x03, 0x02, 0x01, 0x01, 0x02, 0x01, 0x02];
        let mut r = Reader::new(&der);
        assert!(r.read_optional_context(1).unwrap().is_none());
        assert!(r.read_optional_context(0).unwrap().is_some());
        assert!(r.read_optional_context(0).unwrap().is_none());
        let tlv = r.read_expected(tags::INTEGER).unwrap();
        assert_eq!(tlv.value, &[0x02]);
        r.finish().unwrap();
    }

    #[test]
    fn inflated_length_rejected_before_any_consumption() {
        // Declared length 0x7FFFFFFF on a 6-byte buffer: the length decode
        // itself must fail — no consumer may ever observe the bogus length.
        let der = [0x04, 0x84, 0x7F, 0xFF, 0xFF, 0xFF];
        let err = parse_single(&der).unwrap_err();
        assert!(matches!(err, Error::UnexpectedEof { .. }), "{err:?}");
        // Short form, same property.
        let der = [0x04, 0x30, 0x00];
        let err = parse_single(&der).unwrap_err();
        assert_eq!(err, Error::UnexpectedEof { needed: 0x30 - 1 });
    }

    #[test]
    fn budget_caps_element_count() {
        // 100 consecutive NULLs against a 10-element budget.
        let der: Vec<u8> = std::iter::repeat_n([0x05, 0x00], 100).flatten().collect();
        let budget = ParseBudget { max_elements: 10, ..ParseBudget::default() }.start();
        let mut r = Reader::with_budget(&der, &budget);
        let err = r.read_all().unwrap_err();
        assert_eq!(err, Error::BudgetExceeded { resource: "elements" });
        assert_eq!(budget.elements_used(), 11);
    }

    #[test]
    fn budget_caps_cumulative_tlv_bytes_on_nesting() {
        // A nesting bomb re-walks inner bytes at every level, so cumulative
        // TLV traffic grows quadratically with depth while the input stays
        // small. A tlv_bytes budget trips on it even below MAX_DEPTH.
        let mut der = vec![0x05, 0x00];
        for _ in 0..40 {
            let mut w = crate::writer::Writer::new();
            w.write_tlv(tags::SEQUENCE, &der);
            der = w.into_bytes();
        }
        fn recurse(r: &mut Reader<'_>) -> Result<()> {
            if r.peek_tag() == Some(tags::SEQUENCE) {
                r.read_sequence(recurse)
            } else {
                r.read_tlv().map(|_| ())
            }
        }
        let budget = ParseBudget { max_tlv_bytes: 512, ..ParseBudget::default() }.start();
        let mut r = Reader::with_budget(&der, &budget);
        assert_eq!(
            recurse(&mut r).unwrap_err(),
            Error::BudgetExceeded { resource: "tlv_bytes" }
        );
    }

    #[test]
    fn budget_admit_rejects_oversized_input() {
        let big = vec![0u8; 64];
        let budget = ParseBudget { max_input: 32, ..ParseBudget::default() };
        assert_eq!(
            budget.admit(&big).unwrap_err(),
            Error::BudgetExceeded { resource: "input_bytes" }
        );
        assert!(budget.admit(&big[..32]).is_ok());
    }

    #[test]
    fn budgeted_reader_accepts_ordinary_input() {
        let der = [0x30, 0x06, 0x02, 0x01, 0x05, 0x02, 0x01, 0x07];
        let budget = ParseBudget::default().start();
        let mut r = Reader::with_budget(&der, &budget);
        let (a, b) = r
            .read_sequence(|seq| {
                let a = seq.read_expected(tags::INTEGER)?.value.to_vec();
                let b = seq.read_expected(tags::INTEGER)?.value.to_vec();
                Ok((a, b))
            })
            .unwrap();
        r.finish().unwrap();
        assert_eq!((a.as_slice(), b.as_slice()), (&[0x05][..], &[0x07][..]));
        assert_eq!(budget.elements_used(), 3);
    }

    #[test]
    fn spans_index_the_root_buffer_through_nesting() {
        // SEQUENCE { INTEGER 05, SEQUENCE { INTEGER 07 } }
        let der = [0x30, 0x08, 0x02, 0x01, 0x05, 0x30, 0x03, 0x02, 0x01, 0x07];
        let mut r = Reader::new(&der);
        let spans = r
            .read_sequence(|seq| {
                assert_eq!(seq.offset(), 2, "content starts after the outer header");
                let (a, _) = seq.read_tlv_spanned()?;
                let inner = seq.read_sequence(|inner| {
                    let (b, tlv) = inner.read_tlv_spanned()?;
                    assert_eq!(tlv.value, &[0x07]);
                    Ok(b)
                })?;
                Ok((a, inner))
            })
            .unwrap();
        assert_eq!(spans.0, Span { offset: 2, len: 3 });
        assert_eq!(spans.1, Span { offset: 7, len: 3 });
        assert_eq!(&der[spans.1.offset..spans.1.end()], &[0x02, 0x01, 0x07]);
    }

    #[test]
    fn with_base_shifts_spans() {
        let der = [0x02, 0x01, 0x05];
        let mut r = Reader::with_base(&der, 100);
        let (span, _) = r.read_tlv_spanned().unwrap();
        assert_eq!(span, Span { offset: 100, len: 3 });
        assert_eq!(r.offset(), 103);
    }

    #[test]
    fn span_geometry() {
        let outer = Span { offset: 4, len: 10 };
        let inner = Span { offset: 6, len: 3 };
        let after = Span { offset: 14, len: 2 };
        assert_eq!(outer.end(), 14);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.overlaps(&inner));
        assert!(!outer.overlaps(&after));
        assert_eq!(inner.to_string(), "[6..9)");
    }

    #[test]
    fn sequence_contents_must_be_fully_consumed() {
        let der = [0x30, 0x03, 0x02, 0x01, 0x07];
        let mut r = Reader::new(&der);
        let err = r
            .read_sequence(|_inner| Ok(())) // consume nothing
            .unwrap_err();
        assert_eq!(err, Error::TrailingData { remaining: 3 });
    }
}
