//! Multilingual subject-content pools, echoing the scripts and examples
//! the paper observes (German, Polish, Czech, Japanese, Korean, Chinese,
//! Cyrillic, Turkish organization names; IDN domain stems).

use rand::Rng;

/// One script pool: organization names and IDN domain stems.
pub struct ScriptPool {
    /// Pool key (matches `IssuerProfile::script`).
    pub key: &'static str,
    /// Organization names in the script.
    pub orgs: &'static [&'static str],
    /// Unicode domain stems (U-label material).
    pub domain_stems: &'static [&'static str],
    /// ccTLD-ish suffix.
    pub tld: &'static str,
}

/// All pools.
pub static SCRIPT_POOLS: &[ScriptPool] = &[
    ScriptPool {
        key: "latin",
        orgs: &[
            "Example Corp", "Acme Industries", "Global Services Ltd", "Northwind Traders",
            "Contoso GmbH", "Fabrikam, Inc.", "Vegas.XXX (VegasLLC)", "crossmedia:team GmbH",
        ],
        // Stems feed *IDN* generation, so even the Latin pool uses
        // diacritics (münchen-style Latin-script IDNs).
        domain_stems: &["münchen", "bücher", "café", "señoría", "crème", "smørrebrød"],
        tld: "com",
    },
    ScriptPool {
        key: "german",
        orgs: &[
            "Müller GmbH", "Störi AG", "Samco Autotechnik GmbH", "Bäckerei Schäfer",
            "Günther & Söhne KG", "Straßenbau Köln AG",
        ],
        domain_stems: &["müller", "bäckerei", "straßenbau", "köln", "günther"],
        tld: "de",
    },
    ScriptPool {
        key: "polish",
        orgs: &[
            "NOWOCZESNASTODOŁA.PL SP. Z O.O.", "Łódź Software Sp. z o.o.",
            "Księgarnia Żak", "Poczta Południe S.A.",
        ],
        domain_stems: &["stodoła", "łódź", "książki", "żabka"],
        tld: "pl",
    },
    ScriptPool {
        key: "czech",
        orgs: &[
            "Česká pošta, s.p.", "Pražské služby a.s.", "RWE Energie, s.r.o.",
            "Železnice Čech s.r.o.",
        ],
        domain_stems: &["pošta", "praha-služby", "železnice", "čeština"],
        tld: "cz",
    },
    ScriptPool {
        key: "japanese",
        orgs: &["株式会社 中国銀行", "日本電気株式会社", "東京システム株式会社"],
        domain_stems: &["日本", "東京", "銀行"],
        tld: "jp",
    },
    ScriptPool {
        key: "korean",
        orgs: &["대한민국 정부", "한국전자통신연구원", "서울특별시청"],
        domain_stems: &["한국", "서울", "정부"],
        tld: "kr",
    },
    ScriptPool {
        key: "chinese",
        orgs: &["北京数字认证股份有限公司", "中国工商银行", "上海市信息中心"],
        domain_stems: &["中国", "北京", "银行"],
        tld: "cn",
    },
    ScriptPool {
        key: "cyrillic",
        orgs: &["ООО СКАТ Электроникс", "Федеральная служба", "Банк Москвы"],
        domain_stems: &["москва", "банк", "почта"],
        tld: "ru",
    },
    ScriptPool {
        key: "turkish",
        orgs: &["Türk Telekomünikasyon A.Ş.", "İstanbul Büyükşehir Belediyesi"],
        domain_stems: &["türkiye", "i̇stanbul", "şirket"],
        tld: "tr",
    },
];

/// Look up a pool by key (falls back to Latin).
pub fn pool(key: &str) -> &'static ScriptPool {
    SCRIPT_POOLS
        .iter()
        .find(|p| p.key == key)
        .unwrap_or(&SCRIPT_POOLS[0])
}

/// Pick an organization name from a pool.
pub fn org_name(rng: &mut impl Rng, key: &str) -> &'static str {
    let p = pool(key);
    crate::pick(rng, p.orgs)
}

/// Pick an organization name guaranteed to contain non-ASCII (so a
/// certificate with an ASCII hostname still qualifies as a Unicert).
/// Falls back to the German pool when the issuer's own pool is all-ASCII.
pub fn non_ascii_org(rng: &mut impl Rng, key: &str) -> &'static str {
    let p = pool(key);
    let mut candidates: Vec<&'static str> =
        p.orgs.iter().copied().filter(|o| !o.is_ascii()).collect();
    if candidates.is_empty() {
        candidates = pool("german")
            .orgs
            .iter()
            .copied()
            .filter(|o| !o.is_ascii())
            .collect();
    }
    crate::pick(rng, &candidates)
}

/// Build an ASCII hostname (the compliant default).
pub fn ascii_hostname(rng: &mut impl Rng) -> String {
    let stems = ["www", "mail", "shop", "api", "login", "portal", "cdn", "app"];
    let stem = crate::pick(rng, &stems);
    format!("{stem}{}.example{}.com", rng.gen_range(0..100_000), rng.gen_range(0..100))
}

/// Build a compliant IDN hostname: a valid A-label + ASCII labels.
pub fn idn_hostname(rng: &mut impl Rng, key: &str) -> String {
    let p = pool(key);
    let stem = crate::pick(rng, p.domain_stems);
    // Vary with a numeric suffix in the Unicode label to diversify.
    let unicode_label = format!("{stem}{}", rng.gen_range(0..10_000));
    match unicert_idna::label::u_to_a(&unicode_label.to_lowercase()) {
        Ok(a) => format!("{a}.{}", p.tld),
        Err(_) => format!("xn--fallback{}.{}", rng.gen_range(0..1000), p.tld),
    }
}

/// Is this hostname (in ACE or Unicode form) an IDN?
pub fn is_idn(host: &str) -> bool {
    unicert_idna::is_idn_domain(host)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn idn_hostnames_are_valid_a_labels() {
        let mut rng = SmallRng::seed_from_u64(7);
        for p in SCRIPT_POOLS.iter().skip(1) {
            for _ in 0..20 {
                let host = idn_hostname(&mut rng, p.key);
                assert!(host.starts_with("xn--"), "{host}");
                assert!(
                    unicert_idna::validate_dns_name(&host, Default::default()).is_ok(),
                    "{host}"
                );
                assert!(is_idn(&host));
            }
        }
    }

    #[test]
    fn ascii_hostnames_are_valid() {
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..50 {
            let host = ascii_hostname(&mut rng);
            assert!(unicert_idna::validate_dns_name(&host, Default::default()).is_ok(), "{host}");
            assert!(!is_idn(&host));
        }
    }

    #[test]
    fn org_pools_contain_non_ascii() {
        for p in SCRIPT_POOLS.iter().skip(1) {
            assert!(p.orgs.iter().any(|o| !o.is_ascii()), "{}", p.key);
        }
    }
}
