//! Synthetic Certificate Transparency corpus, calibrated to the paper's
//! published aggregates (§4.1–§4.4).
//!
//! The paper analyzed 34.8 million Unicerts drawn from a 70-billion-entry
//! proprietary CT dataset. This crate substitutes a deterministic generator
//! whose population statistics reproduce everything the paper reports about
//! that dataset — issuer oligopoly and per-issuer noncompliance rates
//! (Table 2), the taxonomy mix (Table 1), issuance trend (Fig. 2), validity
//! distributions (Fig. 3), per-script field usage (Fig. 4), and Subject
//! variant strategies (Table 3) — so the downstream analysis pipeline runs
//! unchanged. See DESIGN.md §3 for the substitution argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bimi;
pub mod chunked;
pub mod defects;
pub mod generator;
pub mod issuers;
pub mod subjects;
pub mod trend;
pub mod trust;
pub mod variants;

pub use bimi::{BimiConfig, BimiDefect, BimiEntry, BimiGenerator};
pub use chunked::{Chunks, CorpusChunk, IntoChunks};
pub use defects::Defect;
pub use generator::{CertMeta, CorpusConfig, CorpusEntry, CorpusGenerator, RawEntry};
pub use issuers::{IssuancePolicy, IssuerProfile, TrustStatus};
pub use variants::{VariantPair, VariantStrategy};

/// Uniformly pick one element of a non-empty slice.
///
/// The single audited indexing site for all the generator's "choose one
/// of" sampling — callers never index by random value directly.
pub(crate) fn pick<T: Copy>(rng: &mut impl rand::Rng, items: &[T]) -> T {
    items[rng.gen_range(0..items.len())] // analysis:allow(slice_index) gen_range(0..len) is always < len for a non-empty slice
}

/// The shared default lint registry (building 95 boxed lints is cheap but
/// not free; callers across the workspace reuse one instance). Since the
/// profile refactor this is the `webpki` profile's shared registry —
/// callers wanting another catalog go through
/// [`unicert_lint::profiles::registry`].
pub fn lint_registry() -> &'static unicert_lint::Registry {
    unicert_lint::profiles::default_registry_static()
}
