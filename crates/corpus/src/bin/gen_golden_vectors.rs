//! Regenerates the golden lint-vector conformance corpora in
//! `tests/vectors/<profile>/`.
//!
//! One subdirectory per registered compliance profile, holding one DER
//! certificate per lint of that profile's registry, each hand-crafted to
//! trigger that lint (plus whatever related lints unavoidably co-fire), and
//! one clean control certificate with zero findings. Each manifest records
//! the *complete* expected finding set per vector; `tests/golden_lints.rs`
//! replays every vector through its profile's registry and asserts
//! byte-exact agreement, so any behavioral drift in a lint — intended or
//! not — shows up as a diff against a committed artifact.
//!
//! Adding a catalog lint without a recipe here makes this binary exit
//! non-zero, and adding one without a committed vector fails the golden
//! test; the two guards keep every profile's catalog and conformance
//! corpus in lockstep. `webpki` recipes live in [`recipe`] below; `bimi`
//! recipes are the deterministic [`unicert_corpus::bimi::vector_builder`]
//! defect shapes.
//!
//! Usage: `cargo run -p unicert-corpus --bin gen_golden_vectors`

use std::fmt::Write as _;
use std::path::PathBuf;
use unicert_asn1::oid::known;
use unicert_asn1::{DateTime, Oid, StringKind, Tag, TimeKind, Writer};
use unicert_corpus::BimiDefect;
use unicert_lint::{profiles, Registry, RunOptions};
use unicert_x509::extensions::{
    authority_info_access, certificate_policies, crl_distribution_points, issuer_alt_name,
    subject_info_access, AccessDescription, PolicyInformation, PolicyQualifier,
};
use unicert_x509::{
    AttributeTypeAndValue, CertificateBuilder, DistinguishedName, GeneralName, RawValue, Rdn,
    SimKey, Validity,
};

/// Issuance date for every vector: after the latest lint effective date
/// (RFC 9598, 2024-06), so date gating never masks a finding.
fn issued() -> DateTime {
    DateTime { year: 2024, month: 7, day: 1, hour: 0, minute: 0, second: 0 }
}

fn base() -> CertificateBuilder {
    CertificateBuilder::new().validity_days(issued(), 90)
}

/// `id-at-initials` (2.5.4.43): a real DN attribute no per-attribute
/// encoding lint covers, used to exercise string-type lints in isolation.
fn initials() -> Oid {
    known::initials()
}

/// `id-at-dnQualifier` (2.5.4.46).
fn dn_qualifier() -> Oid {
    known::dn_qualifier()
}

/// A single-attribute DN (for issuer-side vectors).
fn dn1(oid: Oid, value: RawValue) -> DistinguishedName {
    DistinguishedName {
        rdns: vec![Rdn { attributes: vec![AttributeTypeAndValue { oid, value }] }],
    }
}

fn policies_with_text(kind: StringKind, text: &str) -> unicert_x509::Extension {
    certificate_policies(&[PolicyInformation {
        policy_id: known::any_policy(),
        qualifiers: vec![PolicyQualifier::UserNotice {
            explicit_text: Some(RawValue::from_text(kind, text)),
        }],
    }])
}

/// An SmtpUTF8Mailbox OtherName with the mailbox under an arbitrary string
/// kind ([0] EXPLICIT wrapping).
fn smtp_mailbox(kind: StringKind, text: &str) -> GeneralName {
    let mut w = Writer::new();
    w.write_constructed(Tag::context_constructed(0), |w| {
        w.write_string(kind, text);
    });
    GeneralName::OtherName { type_id: known::smtp_utf8_mailbox(), value: w.into_bytes() }
}

/// The certificate recipe for one catalog lint: a minimal certificate that
/// violates exactly that rule (co-firing related lints where the trigger
/// construction inherently violates several). `None` means the catalog
/// gained a lint without a recipe here — the binary exits non-zero so the
/// two stay in lockstep.
fn recipe(lint: &str) -> Option<CertificateBuilder> {
    let b = base();
    Some(match lint {
        // --- T1: Invalid Character --------------------------------------
        "e_rfc_dns_idn_a2u_unpermitted_unichar" => b.add_dns_san("xn--www-hn0a.example.com"),
        "e_rfc_subject_dn_not_printable_characters" => b.subject_attr_raw(
            known::organization_name(),
            StringKind::Utf8,
            b"Evil\x1BOrg",
        ),
        "e_rfc_subject_printable_string_badalpha" => b.subject_attr_raw(
            known::organization_name(),
            StringKind::Printable,
            b"Acme@Example",
        ),
        "w_community_subject_dn_trailing_whitespace" => {
            b.subject_attr(known::organization_name(), StringKind::Utf8, "Acme Corp ")
        }
        "w_community_subject_dn_leading_whitespace" => {
            b.subject_attr(known::organization_name(), StringKind::Utf8, " Acme Corp")
        }
        "e_rfc_dns_idn_malformed_unicode" => b.add_dns_san("xn--99999999999.example.com"),
        "e_cab_dns_bad_character_in_label" => b.add_dns_san("bad_label.example.com"),
        "e_ext_san_dns_contain_unpermitted_unichar" => b.add_san(GeneralName::DnsName(
            RawValue::from_raw(StringKind::Ia5, "münchen.example.com".as_bytes()),
        )),
        "e_subject_dn_nul_byte" => b.subject_attr_raw(
            known::organization_name(),
            StringKind::Utf8,
            b"\x00C\x00&\x00I\x00S",
        ),
        "e_issuer_dn_not_printable_characters" => b.issuer(dn1(
            known::organization_name(),
            RawValue::from_raw(StringKind::Utf8, b"Rogue\x1BCA"),
        )),
        "e_ext_san_rfc822_invalid_characters" => {
            b.add_san(GeneralName::email("bad name@example.com"))
        }
        "e_ext_san_uri_invalid_characters" => {
            b.add_san(GeneralName::uri("https://example.com/a b"))
        }
        "e_subject_dn_bidi_controls" => b.subject_attr(
            known::organization_name(),
            StringKind::Utf8,
            "Acme\u{202E}proC\u{202C}",
        ),
        "e_subject_dn_zero_width_characters" => b.subject_attr(
            known::organization_name(),
            StringKind::Utf8,
            "Acme\u{200B}Corp",
        ),
        "e_ext_ian_dns_invalid_characters" => {
            b.add_extension(issuer_alt_name(&[GeneralName::dns("bad_label.example.com")]))
        }
        "e_utf8string_disallowed_control_codes" => b.subject_attr_raw(
            known::organization_name(),
            StringKind::Utf8,
            b"Acme\x07Corp",
        ),
        "w_subject_dn_nonstandard_whitespace" => b.subject_attr(
            known::organization_name(),
            StringKind::Utf8,
            "Peddy\u{A0}Shield",
        ),
        "e_ext_crldp_uri_control_characters" => b.add_extension(crl_distribution_points(&[vec![
            GeneralName::uri("http://crl.example.com/\u{1}ca.crl"),
        ]])),
        "e_numeric_string_invalid_character" => {
            b.subject_attr_raw(initials(), StringKind::Numeric, b"12A4")
        }
        "e_ia5string_out_of_range" => {
            b.subject_attr_raw(initials(), StringKind::Ia5, &[b'a', 0xC3, 0xA9])
        }
        "w_teletex_replacement_character" => b.subject_attr_raw(
            initials(),
            StringKind::Teletex,
            &[b'A', 0xEF, 0xBF, 0xBD, b'B'],
        ),
        "e_visible_string_control_characters" => {
            b.subject_attr_raw(initials(), StringKind::Visible, &[b'A', 0x08, b'B'])
        }
        // --- T2: Bad Normalization --------------------------------------
        "e_rfc_dns_idn_u_label_not_nfc" => {
            // Decomposed "münchen" (u + combining diaeresis) behind Punycode.
            let enc = unicert_idna::punycode::encode("mu\u{308}nchen").expect("encodable"); // analysis:allow(expect) static literal is always encodable
            b.add_dns_san(&format!("xn--{enc}.de"))
        }
        "w_subject_utf8_not_nfc" => b.subject_attr(
            known::organization_name(),
            StringKind::Utf8,
            "I\u{302}le-de-France SARL",
        ),
        "e_rfc_dns_idn_punycode_roundtrip_mismatch" => b.add_dns_san("xn---foo.example.com"),
        "w_smtp_utf8_mailbox_not_nfc" => {
            b.add_san(smtp_mailbox(StringKind::Utf8, "mu\u{308}ller@example.com"))
        }
        // --- T3a: Illegal Format ----------------------------------------
        "e_rfc_ext_cp_explicit_text_too_long" => b.add_extension(policies_with_text(
            StringKind::Utf8,
            &"This certificate policy notice is deliberately far too long. ".repeat(5),
        )),
        "e_subject_country_not_two_letters" => {
            b.subject_attr(known::country_name(), StringKind::Printable, "Germany")
        }
        "e_subject_common_name_max_length" => {
            // 65 characters, yet a structurally valid DNS name (labels ≤ 63),
            // mirrored into the SAN so only the length lint fires.
            let cn = format!("{}.{}.ex", "a".repeat(50), "b".repeat(11));
            assert_eq!(cn.chars().count(), 65);
            b.subject_cn(&cn).add_dns_san(&cn)
        }
        "e_subject_organization_name_max_length" => {
            b.subject_attr(known::organization_name(), StringKind::Utf8, &"o".repeat(65))
        }
        "e_subject_locality_max_length" => {
            b.subject_attr(known::locality_name(), StringKind::Utf8, &"l".repeat(129))
        }
        "e_dns_label_too_long" => b.add_dns_san(&format!("{}.example.com", "a".repeat(64))),
        "e_dns_name_too_long" => {
            let l = "a".repeat(63);
            b.add_dns_san(&format!("{l}.{l}.{l}.{}", "a".repeat(62)))
        }
        "e_dns_label_bad_hyphen_placement" => b.add_dns_san("-bad.example.com"),
        "e_serial_number_longer_than_20_octets" => b.serial(&[0x7F; 21]),
        "e_serial_number_zero" => b.serial(&[0x00]),
        "e_validity_wrong_time_encoding" => b.validity(Validity {
            not_before: issued(),
            not_after: DateTime { year: 2024, month: 9, day: 29, hour: 0, minute: 0, second: 0 },
            // 2024 must be UTCTime; GeneralizedTime is the era mismatch.
            not_before_kind: TimeKind::Generalized,
            not_after_kind: TimeKind::Utc,
        }),
        "e_subject_empty_attribute_value" => {
            b.subject_attr(known::organization_name(), StringKind::Utf8, "")
        }
        "e_rfc_dns_empty_label" => b.add_dns_san("a..example.com"),
        "e_country_code_lowercase" => {
            b.subject_attr(known::country_name(), StringKind::Printable, "de")
        }
        "e_san_wildcard_not_leftmost" => b.add_dns_san("foo.*.example.com"),
        "e_ext_san_rfc822_invalid_format" => b.add_san(GeneralName::email("nobody")),
        "e_ext_san_uri_missing_scheme" => b.add_san(GeneralName::uri("//no-scheme/path")),
        // --- T3b: Invalid Encoding --------------------------------------
        "w_rfc_ext_cp_explicit_text_not_utf8" => {
            b.add_extension(policies_with_text(StringKind::Visible, "Certification notice"))
        }
        "e_rfc_ext_cp_explicit_text_ia5" => {
            b.add_extension(policies_with_text(StringKind::Ia5, "Legacy policy notice"))
        }
        "e_subject_dn_serial_number_not_printable" => {
            b.subject_attr(known::serial_number(), StringKind::Utf8, "C-2024-001")
        }
        "e_rfc_subject_country_not_printable" => {
            b.subject_attr(known::country_name(), StringKind::Utf8, "DE")
        }
        "e_rfc_issuer_country_not_printable" => b.issuer(dn1(
            known::country_name(),
            RawValue::from_text(StringKind::Utf8, "DE"),
        )),
        "e_subject_email_address_not_ia5" => {
            b.subject_attr(known::email_address(), StringKind::Utf8, "pki@example.com")
        }
        "e_subject_domain_component_not_ia5" => {
            b.subject_attr(known::domain_component(), StringKind::Utf8, "example")
        }
        "w_subject_dn_uses_teletex_string" => {
            b.subject_attr(initials(), StringKind::Teletex, "JD")
        }
        "w_subject_dn_uses_universal_string" => {
            b.subject_attr_raw(initials(), StringKind::Universal, &[0, 0, 0, b'J'])
        }
        "w_subject_dn_uses_bmp_string" => {
            b.subject_attr_raw(initials(), StringKind::Bmp, &[0, b'J'])
        }
        "e_subject_dn_qualifier_not_printable" => {
            b.subject_attr(dn_qualifier(), StringKind::Utf8, "XYZ")
        }
        "e_subject_organization_not_printable_or_utf8" => {
            b.subject_attr(known::organization_name(), StringKind::Bmp, "Acme Corp")
        }
        "e_subject_common_name_not_printable_or_utf8" => b
            .subject_attr(known::common_name(), StringKind::Bmp, "bmp.example.com")
            .add_dns_san("bmp.example.com"),
        "e_subject_locality_not_printable_or_utf8" => {
            b.subject_attr(known::locality_name(), StringKind::Teletex, "Zürich")
        }
        "e_subject_ou_not_printable_or_utf8" => {
            b.subject_attr(known::organizational_unit(), StringKind::Bmp, "IT 部門")
        }
        "e_subject_state_not_printable_or_utf8" => {
            b.subject_attr(known::state_or_province(), StringKind::Teletex, "Überlingen")
        }
        "e_subject_street_not_printable_or_utf8" => {
            b.subject_attr(known::street_address(), StringKind::Teletex, "Hauptstraße 1")
        }
        "e_subject_postal_code_not_printable_or_utf8" => {
            b.subject_attr(known::postal_code(), StringKind::Bmp, "100-0001")
        }
        "e_subject_jurisdiction_locality_not_printable_or_utf8" => {
            b.subject_attr(known::jurisdiction_locality(), StringKind::Teletex, "München")
        }
        "e_subject_jurisdiction_state_not_printable_or_utf8" => {
            b.subject_attr(known::jurisdiction_state(), StringKind::Bmp, "Bayern")
        }
        "e_subject_given_name_not_printable_or_utf8" => {
            b.subject_attr(known::given_name(), StringKind::Bmp, "Hans")
        }
        "e_subject_surname_not_printable_or_utf8" => {
            b.subject_attr(known::surname(), StringKind::Bmp, "Muster")
        }
        "e_subject_title_not_printable_or_utf8" => {
            b.subject_attr(known::title(), StringKind::Bmp, "Dr")
        }
        "e_subject_business_category_not_printable_or_utf8" => {
            b.subject_attr(known::business_category(), StringKind::Bmp, "Private Organization")
        }
        "e_subject_pseudonym_not_printable_or_utf8" => {
            b.subject_attr(known::pseudonym(), StringKind::Bmp, "Ghostwriter")
        }
        "e_subject_jurisdiction_country_not_printable" => {
            b.subject_attr(known::jurisdiction_country(), StringKind::Utf8, "DE")
        }
        "e_issuer_organization_not_printable_or_utf8" => b.issuer(dn1(
            known::organization_name(),
            RawValue::from_text(StringKind::Bmp, "Legacy CA GmbH"),
        )),
        "e_issuer_common_name_not_printable_or_utf8" => b.issuer(dn1(
            known::common_name(),
            RawValue::from_text(StringKind::Bmp, "Legacy CA R1"),
        )),
        "e_issuer_ou_not_printable_or_utf8" => b.issuer(dn1(
            known::organizational_unit(),
            RawValue::from_text(StringKind::Bmp, "Issuing Unit"),
        )),
        "e_issuer_locality_not_printable_or_utf8" => b.issuer(dn1(
            known::locality_name(),
            RawValue::from_text(StringKind::Bmp, "Wien"),
        )),
        "e_issuer_state_not_printable_or_utf8" => b.issuer(dn1(
            known::state_or_province(),
            RawValue::from_text(StringKind::Bmp, "Tirol"),
        )),
        "e_ext_san_dns_not_ia5string" => b.add_san(GeneralName::DnsName(RawValue::from_raw(
            StringKind::Ia5,
            "bücher.example.com".as_bytes(),
        ))),
        "e_ext_san_rfc822_not_ia5string" => b.add_san(GeneralName::Rfc822Name(
            RawValue::from_raw(StringKind::Ia5, "почта@example.com".as_bytes()),
        )),
        "e_ext_san_uri_not_ia5string" => b.add_san(GeneralName::Uri(RawValue::from_raw(
            StringKind::Ia5,
            "https://exämple.com/path".as_bytes(),
        ))),
        "e_ext_ian_name_not_ia5string" => {
            b.add_extension(issuer_alt_name(&[GeneralName::DnsName(RawValue::from_raw(
                StringKind::Ia5,
                "münchen.example.com".as_bytes(),
            ))]))
        }
        "e_ext_aia_uri_not_ia5string" => {
            b.add_extension(authority_info_access(&[AccessDescription {
                method: known::ad_ocsp(),
                location: GeneralName::Uri(RawValue::from_raw(
                    StringKind::Ia5,
                    "http://ocsp.exämple.com".as_bytes(),
                )),
            }]))
        }
        "e_ext_sia_uri_not_ia5string" => {
            b.add_extension(subject_info_access(&[AccessDescription {
                method: known::ad_ca_repository(),
                location: GeneralName::Uri(RawValue::from_raw(
                    StringKind::Ia5,
                    "http://repo.exämple.com".as_bytes(),
                )),
            }]))
        }
        "e_ext_crldp_uri_not_ia5string" => b.add_extension(crl_distribution_points(&[vec![
            GeneralName::Uri(RawValue::from_raw(
                StringKind::Ia5,
                "http://crl.exämple.com/ca.crl".as_bytes(),
            )),
        ]])),
        "e_utf8string_invalid_bytes" => b.subject_attr_raw(
            known::organization_name(),
            StringKind::Utf8,
            // Latin-1 "Störi" bytes under a UTF-8 tag.
            &[b'S', b't', 0xF6, b'r', b'i'],
        ),
        "e_bmpstring_odd_length" => {
            b.subject_attr_raw(initials(), StringKind::Bmp, &[0x00, 0x41, 0x42])
        }
        "e_universalstring_invalid_length" => {
            b.subject_attr_raw(initials(), StringKind::Universal, &[0, 0, 0, 0x41, 0, 0])
        }
        "e_bmpstring_surrogate_code_unit" => {
            b.subject_attr_raw(initials(), StringKind::Bmp, &[0xD8, 0x00])
        }
        "e_subject_cn_not_directory_string_type" => b.subject(dn1(
            known::common_name(),
            // OCTET STRING (tag 4) is not a character string type at all.
            RawValue { tag_number: 4, bytes: b"cn-bytes".to_vec() },
        )),
        "e_smtp_utf8_mailbox_not_utf8string" => {
            b.add_san(smtp_mailbox(StringKind::Ia5, "user@example.com"))
        }
        "w_ext_cp_explicit_text_bmpstring" => {
            b.add_extension(policies_with_text(StringKind::Bmp, "Policy notice"))
        }
        "e_dn_attribute_unknown_string_tag" => b.subject(dn1(
            initials(),
            RawValue { tag_number: 4, bytes: vec![0x01, 0x02] },
        )),
        "e_ext_cp_cps_uri_not_ia5string" => {
            b.add_extension(certificate_policies(&[PolicyInformation {
                policy_id: known::any_policy(),
                qualifiers: vec![PolicyQualifier::Cps(RawValue::from_text(
                    StringKind::Utf8,
                    "https://cps.example.com/cps",
                ))],
            }]))
        }
        "e_ext_san_rfc822_contains_non_ascii" => b.add_san(GeneralName::Rfc822Name(
            RawValue::from_raw(StringKind::Ia5, "müller@example.com".as_bytes()),
        )),
        // --- T3c: Invalid Structure -------------------------------------
        "w_cab_subject_common_name_not_in_san" => {
            b.subject_cn("other.example.com").add_dns_san("host.example.com")
        }
        "e_subject_duplicate_attribute" => b
            .subject_attr(known::organizational_unit(), StringKind::Utf8, "Unit A")
            .subject_attr(known::organizational_unit(), StringKind::Utf8, "Unit B"),
        // --- T3d: Discouraged Field -------------------------------------
        "w_cab_subject_contain_extra_common_name" => b
            .subject_cn("host.example.com")
            .subject_cn("www.host.example.com")
            .add_dns_san("host.example.com")
            .add_dns_san("www.host.example.com"),
        "w_ext_san_uri_discouraged" => b
            .add_dns_san("ok.example.com")
            .add_san(GeneralName::uri("https://ok.example.com")),
        _ => return None,
    })
}

fn findings_field(report: &unicert_lint::CertReport) -> String {
    report
        .findings
        .iter()
        .map(|f| format!("{}:{:?}:{:?}:{}", f.lint, f.severity, f.nc_type, f.new_lint))
        .collect::<Vec<_>>()
        .join(";")
}

/// The per-profile recipe dispatch: a builder violating exactly `lint`
/// under that profile's registry, or `None` when the profile gained a lint
/// with no recipe.
fn profile_recipe(profile: &str, lint: &str) -> Option<CertificateBuilder> {
    match profile {
        "webpki" => recipe(lint),
        // Every BIMI lint (including the two shared WebPKI rules) has a
        // seeded-defect shape in the corpus crate; reuse it verbatim so
        // golden vectors and generator defects cannot drift apart.
        "bimi" => BimiDefect::ALL
            .into_iter()
            .find(|d| d.expected_lint() == lint)
            .map(|d| unicert_corpus::bimi::vector_builder(Some(d))),
        _ => None,
    }
}

/// The clean control for a profile: zero findings under that registry.
fn profile_control(profile: &str) -> Option<CertificateBuilder> {
    match profile {
        "webpki" => {
            Some(base().subject_cn("clean.example.com").add_dns_san("clean.example.com"))
        }
        "bimi" => Some(unicert_corpus::bimi::vector_builder(None)),
        _ => None,
    }
}

fn write_profile(out_dir: &PathBuf, profile: &str, registry: &Registry) -> Result<(), String> {
    std::fs::create_dir_all(out_dir).map_err(|e| format!("create {}: {e}", out_dir.display()))?;
    let key = SimKey::from_seed("golden-vector-ca");
    let mut manifest = String::new();

    // The clean control certificate: zero findings, by construction.
    let control = profile_control(profile)
        .ok_or_else(|| format!("no clean-control recipe for profile {profile}"))?
        .build_signed(&key);
    let report = registry.run(&control, RunOptions::default());
    if !report.findings.is_empty() {
        return Err(format!("{profile}: control cert not clean: {:?}", report.findings));
    }
    std::fs::write(out_dir.join("clean_control.der"), &control.raw)
        .map_err(|e| format!("write clean_control.der: {e}"))?;
    let _ = writeln!(manifest, "clean_control\t");

    for lint in registry.iter() {
        let builder = profile_recipe(profile, lint.name).ok_or_else(|| {
            format!("no golden-vector recipe for {profile} lint {} — add one", lint.name)
        })?;
        let cert = builder.build_signed(&key);
        let report = registry.run(&cert, RunOptions::default());
        if !report.findings.iter().any(|f| f.lint == lint.name) {
            return Err(format!(
                "{profile}/{}: vector does not trigger its lint; findings: {:?}",
                lint.name, report.findings
            ));
        }
        std::fs::write(out_dir.join(format!("{}.der", lint.name)), &cert.raw)
            .map_err(|e| format!("write {}.der: {e}", lint.name))?;
        let _ = writeln!(manifest, "{}\t{}", lint.name, findings_field(&report));
    }

    std::fs::write(out_dir.join("manifest.tsv"), manifest)
        .map_err(|e| format!("write manifest.tsv: {e}"))?;
    println!("wrote {} vectors + control to {}", registry.len(), out_dir.display());
    Ok(())
}

fn run() -> Result<(), String> {
    let vectors_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/vectors");
    for profile in profiles::all() {
        let registry = profiles::registry(profile.name)
            .ok_or_else(|| format!("profile {} has no shared registry", profile.name))?;
        write_profile(&vectors_root.join(profile.name), profile.name, registry)?;
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("gen_golden_vectors: {e}");
        std::process::exit(1);
    }
}
