//! Noncompliance injection: every defect class the paper measures, with
//! sampling weights proportional to the Table 11 lint counts.

use rand::Rng;
use unicert_asn1::oid::known;
use unicert_asn1::StringKind;
use unicert_x509::extensions::{certificate_policies, PolicyInformation, PolicyQualifier};
use unicert_x509::{CertificateBuilder, GeneralName, RawValue};

/// A concrete noncompliance a certificate can be built with.
///
/// Each variant maps onto at least one catalog lint; `expected_lints`
/// documents the mapping and backs the corpus-vs-linter consistency tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Defect {
    // --- T1: Invalid Character -----------------------------------------
    /// A-label decoding to IDNA-disallowed characters (F1-ii).
    IdnA2uUnpermitted,
    /// Control characters (NUL/ESC/DEL) in a Subject attribute.
    SubjectControlChars,
    /// `@` inside a PrintableString value.
    PrintableBadAlpha,
    /// Trailing whitespace in a subject value.
    TrailingWhitespace,
    /// Leading whitespace in a subject value.
    LeadingWhitespace,
    /// Undecodable A-label (F1-i).
    IdnMalformedUnicode,
    /// Underscore label in a DNSName.
    DnsBadCharInLabel,
    /// Raw UTF-8 (U-label) in a SAN DNSName.
    SanDnsRawUnicode,
    /// NULs evenly inserted (`[NUL]C[NUL]&[NUL]I[NUL]S` — IPS CA/Thawte).
    NulEvenlyInserted,
    /// DEL characters in the middle of text (the locale bug, F4).
    DelCharacters,
    // --- T2: Bad Normalization ------------------------------------------
    /// A-label whose U-label is not NFC.
    IdnNotNfc,
    // --- T3a: Illegal Format ---------------------------------------------
    /// explicitText longer than 200 characters.
    ExplicitTextTooLong,
    /// countryName spelled out ("Germany").
    CountryNotTwoLetters,
    /// Lowercase country code ("de").
    CountryLowercase,
    // --- T3b: Invalid Encoding --------------------------------------------
    /// explicitText as VisibleString (SHOULD-level, the single biggest lint).
    ExplicitTextNotUtf8,
    /// explicitText as IA5String (MUST-level).
    ExplicitTextIa5,
    /// Organization as BMPString.
    OrgBmpString,
    /// CommonName as BMPString.
    CnBmpString,
    /// Locality as TeletexString.
    LocalityTeletex,
    /// OU as BMPString.
    OuBmpString,
    /// EV jurisdictionLocality as TeletexString.
    JurisdictionLocalityTeletex,
    /// EV jurisdictionState as BMPString.
    JurisdictionStateBmp,
    /// EV jurisdictionCountry as UTF8String.
    JurisdictionCountryUtf8,
    /// State as TeletexString.
    StateTeletex,
    /// postalCode as BMPString.
    PostalCodeBmp,
    /// streetAddress as TeletexString.
    StreetTeletex,
    /// serialNumber as UTF8String.
    SerialNumberUtf8,
    /// countryName as UTF8String.
    CountryUtf8,
    /// Invalid UTF-8 bytes in a UTF8String.
    InvalidUtf8Bytes,
    /// Non-ASCII bytes in an RFC822Name (RFC 9598 violation).
    Rfc822NonAscii,
    // --- T3c: Invalid Structure --------------------------------------------
    /// Subject CN missing from the SAN.
    CnNotInSan,
    /// Duplicate subject attribute (two OUs).
    DuplicateAttribute,
    // --- T3d: Discouraged Field ---------------------------------------------
    /// Two CNs in the subject.
    ExtraCn,
    // --- Latent-only defects (ablation machinery) -----------------------------
    /// Bidirectional controls in a Subject value — violates only the
    /// RFC 9549-based lint (effective 2024), so it is invisible under date
    /// gating for anything issued earlier.
    SubjectBidiControl,
    /// Zero-width characters in a Subject value — violates only the
    /// RFC 8399-based lint (effective 2018).
    SubjectZeroWidth,
}

/// `(defect, weight)` — weights follow the Table 11 lint counts so the
/// corpus reproduces Table 1's type distribution.
pub const GENERAL_WEIGHTS: &[(Defect, u32)] = &[
    // T1 (sums to ≈ 43.2K in the paper).
    (Defect::IdnA2uUnpermitted, 26_701),
    (Defect::SubjectControlChars, 12_800),
    (Defect::PrintableBadAlpha, 1_561),
    (Defect::TrailingWhitespace, 1_356),
    (Defect::LeadingWhitespace, 437),
    (Defect::IdnMalformedUnicode, 401),
    (Defect::DnsBadCharInLabel, 326),
    (Defect::SanDnsRawUnicode, 109),
    (Defect::NulEvenlyInserted, 400),
    (Defect::DelCharacters, 117),
    // T2 (3 certificates in the whole paper corpus).
    (Defect::IdnNotNfc, 3),
    // T3a (≈ 3.2K).
    (Defect::ExplicitTextTooLong, 2_988),
    (Defect::CountryNotTwoLetters, 150),
    (Defect::CountryLowercase, 80),
    // T3b (≈ 150.9K).
    (Defect::ExplicitTextNotUtf8, 117_471),
    (Defect::ExplicitTextIa5, 2_550),
    (Defect::OrgBmpString, 25_751),
    (Defect::CnBmpString, 25_081),
    (Defect::LocalityTeletex, 17_825),
    (Defect::OuBmpString, 11_654),
    (Defect::JurisdictionLocalityTeletex, 4_213),
    (Defect::JurisdictionStateBmp, 2_829),
    (Defect::JurisdictionCountryUtf8, 1_744),
    (Defect::StateTeletex, 1_671),
    (Defect::PostalCodeBmp, 1_262),
    (Defect::StreetTeletex, 990),
    (Defect::SerialNumberUtf8, 461),
    (Defect::CountryUtf8, 409),
    (Defect::InvalidUtf8Bytes, 300),
    (Defect::Rfc822NonAscii, 200),
    // T3c (≈ 93.7K).
    (Defect::CnNotInSan, 93_664),
    (Defect::DuplicateAttribute, 1_200),
    // T3d (589).
    (Defect::ExtraCn, 589),
];

/// Latent-defect weights: the violations that only late-effective-date
/// rules catch. These back the footnote-4 ablation (§4.3: ignoring
/// effective dates inflates findings from 249K to 1.8M, ~7×).
pub const LATENT_WEIGHTS: &[(Defect, u32)] = &[
    (Defect::SubjectBidiControl, 80),
    (Defect::SubjectZeroWidth, 20),
];

/// Defects an IDN-only (automated DV) issuer can produce: DNS-related only
/// (§4.3.2 — Let's Encrypt's noncompliance is all IDN validation).
pub const DNS_ONLY_WEIGHTS: &[(Defect, u32)] = &[
    (Defect::IdnA2uUnpermitted, 26_701),
    (Defect::IdnMalformedUnicode, 401),
    (Defect::DnsBadCharInLabel, 326),
    (Defect::SanDnsRawUnicode, 109),
    (Defect::IdnNotNfc, 3),
];

/// Sample a defect from a weight table.
pub fn sample(rng: &mut impl Rng, table: &[(Defect, u32)]) -> Defect {
    let total: u64 = table.iter().map(|&(_, w)| w as u64).sum();
    let mut pick = rng.gen_range(0..total);
    for &(d, w) in table {
        if pick < w as u64 {
            return d;
        }
        pick -= w as u64;
    }
    table.last().expect("non-empty table").0 // analysis:allow(expect) weight tables are static non-empty constants
}

/// Deceptive/broken A-labels used by the IDN defects.
const BAD_A_LABELS: &[&str] = &[
    "xn--www-hn0a",  // LRM + www (bidi control)
    "xn--ssl-0b",    // may decode to a disallowed char depending on digits
];

/// A-labels that cannot be converted back to Unicode.
const UNCONVERTIBLE_A_LABELS: &[&str] = &["xn--99999999999", "xn--a99999999"];

/// Apply a defect to a builder.
///
/// `org` and `host` are the certificate's nominal organization and primary
/// hostname; defects mutate around them. Returns the modified builder.
pub fn apply(
    defect: Defect,
    builder: CertificateBuilder,
    org: &str,
    host: &str,
    rng: &mut impl Rng,
) -> CertificateBuilder {
    match defect {
        Defect::IdnA2uUnpermitted => {
            let label = BAD_A_LABELS[0];
            builder.add_dns_san(&format!("{label}.{host}"))
        }
        Defect::SubjectControlChars => {
            let ctl = crate::pick(rng, b"\x00\x1B\x7F");
            let mut bytes = org.as_bytes().to_vec();
            bytes.insert(bytes.len() / 2, ctl);
            builder.subject_attr_raw(known::organization_name(), StringKind::Utf8, &bytes)
        }
        Defect::PrintableBadAlpha => builder
            .subject_attr_raw(
                known::common_name(),
                StringKind::Printable,
                format!("admin@{host}").as_bytes(),
            )
            // Keep the CN↔SAN structure lint quiet: the defect under test
            // is the character range, not the structure.
            .add_san(GeneralName::email(&format!("admin@{host}"))),
        Defect::TrailingWhitespace => {
            builder.subject_attr(known::organization_name(), StringKind::Utf8, &format!("{org} "))
        }
        Defect::LeadingWhitespace => {
            builder.subject_attr(known::organization_name(), StringKind::Utf8, &format!(" {org}"))
        }
        Defect::IdnMalformedUnicode => {
            let label = crate::pick(rng, UNCONVERTIBLE_A_LABELS);
            builder.add_dns_san(&format!("{label}.{host}"))
        }
        Defect::DnsBadCharInLabel => builder.add_dns_san(&format!("bad_label.{host}")),
        Defect::SanDnsRawUnicode => builder.add_san(GeneralName::DnsName(RawValue::from_raw(
            StringKind::Ia5,
            format!("münchen.{host}").as_bytes(),
        ))),
        Defect::NulEvenlyInserted => {
            // "[NUL]C[NUL]&[NUL]I[NUL]S" — a NUL before every character.
            let mut bytes = Vec::with_capacity(org.len() * 2);
            for ch in org.chars().take(8) {
                bytes.push(0);
                let mut buf = [0u8; 4];
                bytes.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
            }
            builder.subject_attr_raw(known::organization_name(), StringKind::Utf8, &bytes)
        }
        Defect::DelCharacters => {
            let mut bytes = org.as_bytes().to_vec();
            let at = bytes.len() / 3;
            bytes.insert(at, 0x7F);
            bytes.insert(at, 0x7F);
            builder.subject_attr_raw(known::organization_name(), StringKind::Utf8, &bytes)
        }
        Defect::IdnNotNfc => {
            // Decomposed "münchen" behind Punycode.
            let decomposed = "mu\u{308}nchen";
            let a = format!(
                "xn--{}",
                unicert_idna::punycode::encode(decomposed).expect("encodable") // analysis:allow(expect) static literal is always encodable
            );
            builder.add_dns_san(&format!("{a}.de"))
        }
        Defect::ExplicitTextTooLong => builder.add_extension(policies_with_text(
            StringKind::Utf8,
            &"This certificate policy notice is deliberately far too long. ".repeat(5),
        )),
        Defect::CountryNotTwoLetters => {
            builder.subject_attr(known::country_name(), StringKind::Printable, "Germany")
        }
        Defect::CountryLowercase => {
            builder.subject_attr(known::country_name(), StringKind::Printable, "de")
        }
        Defect::ExplicitTextNotUtf8 => {
            builder.add_extension(policies_with_text(StringKind::Visible, "Certification notice"))
        }
        Defect::ExplicitTextIa5 => {
            builder.add_extension(policies_with_text(StringKind::Ia5, "Legacy policy notice"))
        }
        Defect::OrgBmpString => {
            builder.subject_attr(known::organization_name(), StringKind::Bmp, org)
        }
        Defect::CnBmpString => builder
            .subject_attr(known::common_name(), StringKind::Bmp, host)
            .add_dns_san(host),
        Defect::LocalityTeletex => {
            builder.subject_attr(known::locality_name(), StringKind::Teletex, "Zürich")
        }
        Defect::OuBmpString => {
            builder.subject_attr(known::organizational_unit(), StringKind::Bmp, "IT 部門")
        }
        Defect::JurisdictionLocalityTeletex => {
            builder.subject_attr(known::jurisdiction_locality(), StringKind::Teletex, "München")
        }
        Defect::JurisdictionStateBmp => {
            builder.subject_attr(known::jurisdiction_state(), StringKind::Bmp, "Bayern")
        }
        Defect::JurisdictionCountryUtf8 => {
            builder.subject_attr(known::jurisdiction_country(), StringKind::Utf8, "DE")
        }
        Defect::StateTeletex => {
            builder.subject_attr(known::state_or_province(), StringKind::Teletex, "Überlingen")
        }
        Defect::PostalCodeBmp => {
            builder.subject_attr(known::postal_code(), StringKind::Bmp, "100-0001")
        }
        Defect::StreetTeletex => {
            builder.subject_attr(known::street_address(), StringKind::Teletex, "Hauptstraße 1")
        }
        Defect::SerialNumberUtf8 => {
            builder.subject_attr(known::serial_number(), StringKind::Utf8, "Č-2024-001")
        }
        Defect::CountryUtf8 => {
            builder.subject_attr(known::country_name(), StringKind::Utf8, "DE")
        }
        Defect::InvalidUtf8Bytes => builder.subject_attr_raw(
            known::organization_name(),
            StringKind::Utf8,
            &[b'S', b't', 0xF6, b'r', b'i'], // Latin-1 bytes under a UTF-8 tag
        ),
        Defect::Rfc822NonAscii => builder.add_san(GeneralName::Rfc822Name(RawValue::from_raw(
            StringKind::Ia5,
            format!("почта@{host}").as_bytes(),
        ))),
        Defect::CnNotInSan => builder.subject_cn(&format!("other-{host}")),
        Defect::DuplicateAttribute => builder
            .subject_attr(known::organizational_unit(), StringKind::Utf8, "Unit A")
            .subject_attr(known::organizational_unit(), StringKind::Utf8, "Unit B"),
        Defect::ExtraCn => builder
            .subject_attr(known::common_name(), StringKind::Utf8, host)
            .subject_attr(known::common_name(), StringKind::Utf8, &format!("www.{host}"))
            // Both CNs appear in the SAN so only the extra-CN lint fires.
            .add_dns_san(host)
            .add_dns_san(&format!("www.{host}")),
        Defect::SubjectBidiControl => {
            // RLO…PDF around part of the name: invisible to pre-9549 rules.
            let half = org.chars().count() / 2;
            let (a, b): (String, String) = {
                let mut chars = org.chars();
                let a: String = chars.by_ref().take(half).collect();
                (a, chars.collect())
            };
            builder.subject_attr(
                known::organization_name(),
                StringKind::Utf8,
                &format!("{a}\u{202E}{b}\u{202C}"),
            )
        }
        Defect::SubjectZeroWidth => {
            let half = org.chars().count() / 2;
            let (a, b): (String, String) = {
                let mut chars = org.chars();
                let a: String = chars.by_ref().take(half).collect();
                (a, chars.collect())
            };
            builder.subject_attr(
                known::organization_name(),
                StringKind::Utf8,
                &format!("{a}\u{200B}{b}"),
            )
        }
    }
}

fn policies_with_text(kind: StringKind, text: &str) -> unicert_x509::Extension {
    certificate_policies(&[PolicyInformation {
        policy_id: known::any_policy(),
        qualifiers: vec![PolicyQualifier::UserNotice {
            explicit_text: Some(RawValue::from_text(kind, text)),
        }],
    }])
}

impl Defect {
    /// The Table 1 taxonomy type this defect belongs to.
    pub fn nc_type(self) -> unicert_lint::NoncomplianceType {
        use unicert_lint::NoncomplianceType::*;
        use Defect::*;
        match self {
            IdnA2uUnpermitted | SubjectControlChars | PrintableBadAlpha | TrailingWhitespace
            | LeadingWhitespace | IdnMalformedUnicode | DnsBadCharInLabel | SanDnsRawUnicode
            | NulEvenlyInserted | DelCharacters => InvalidCharacter,
            IdnNotNfc => BadNormalization,
            ExplicitTextTooLong | CountryNotTwoLetters | CountryLowercase => IllegalFormat,
            ExplicitTextNotUtf8 | ExplicitTextIa5 | OrgBmpString | CnBmpString | LocalityTeletex
            | OuBmpString | JurisdictionLocalityTeletex | JurisdictionStateBmp
            | JurisdictionCountryUtf8 | StateTeletex | PostalCodeBmp | StreetTeletex
            | SerialNumberUtf8 | CountryUtf8 | InvalidUtf8Bytes | Rfc822NonAscii => InvalidEncoding,
            CnNotInSan | DuplicateAttribute => InvalidStructure,
            ExtraCn => DiscouragedField,
            SubjectBidiControl | SubjectZeroWidth => InvalidCharacter,
        }
    }

    /// Does applying this defect add its own O attribute? (The generator
    /// must then skip its default organization to avoid accidental
    /// duplicate-attribute findings.)
    pub fn provides_org(self) -> bool {
        use Defect::*;
        matches!(
            self,
            SubjectControlChars | TrailingWhitespace | LeadingWhitespace | NulEvenlyInserted
                | DelCharacters | OrgBmpString | InvalidUtf8Bytes | SubjectBidiControl
                | SubjectZeroWidth
        )
    }

    /// Does applying this defect add its own C attribute?
    pub fn provides_country(self) -> bool {
        use Defect::*;
        matches!(self, CountryNotTwoLetters | CountryLowercase | CountryUtf8)
    }

    /// Does applying this defect add its own CN attribute(s)?
    pub fn provides_cn(self) -> bool {
        use Defect::*;
        matches!(self, CnNotInSan | ExtraCn | CnBmpString | PrintableBadAlpha)
    }

    /// One catalog lint this defect is expected to trigger (consistency
    /// tests assert the linter actually fires it).
    pub fn expected_lint(self) -> &'static str {
        use Defect::*;
        match self {
            IdnA2uUnpermitted => "e_rfc_dns_idn_a2u_unpermitted_unichar",
            SubjectControlChars => "e_rfc_subject_dn_not_printable_characters",
            PrintableBadAlpha => "e_rfc_subject_printable_string_badalpha",
            TrailingWhitespace => "w_community_subject_dn_trailing_whitespace",
            LeadingWhitespace => "w_community_subject_dn_leading_whitespace",
            IdnMalformedUnicode => "e_rfc_dns_idn_malformed_unicode",
            DnsBadCharInLabel => "e_cab_dns_bad_character_in_label",
            SanDnsRawUnicode => "e_ext_san_dns_contain_unpermitted_unichar",
            NulEvenlyInserted => "e_subject_dn_nul_byte",
            DelCharacters => "e_rfc_subject_dn_not_printable_characters",
            IdnNotNfc => "e_rfc_dns_idn_u_label_not_nfc",
            ExplicitTextTooLong => "e_rfc_ext_cp_explicit_text_too_long",
            CountryNotTwoLetters => "e_subject_country_not_two_letters",
            CountryLowercase => "e_country_code_lowercase",
            ExplicitTextNotUtf8 => "w_rfc_ext_cp_explicit_text_not_utf8",
            ExplicitTextIa5 => "e_rfc_ext_cp_explicit_text_ia5",
            OrgBmpString => "e_subject_organization_not_printable_or_utf8",
            CnBmpString => "e_subject_common_name_not_printable_or_utf8",
            LocalityTeletex => "e_subject_locality_not_printable_or_utf8",
            OuBmpString => "e_subject_ou_not_printable_or_utf8",
            JurisdictionLocalityTeletex => "e_subject_jurisdiction_locality_not_printable_or_utf8",
            JurisdictionStateBmp => "e_subject_jurisdiction_state_not_printable_or_utf8",
            JurisdictionCountryUtf8 => "e_subject_jurisdiction_country_not_printable",
            StateTeletex => "e_subject_state_not_printable_or_utf8",
            PostalCodeBmp => "e_subject_postal_code_not_printable_or_utf8",
            StreetTeletex => "e_subject_street_not_printable_or_utf8",
            SerialNumberUtf8 => "e_subject_dn_serial_number_not_printable",
            CountryUtf8 => "e_rfc_subject_country_not_printable",
            InvalidUtf8Bytes => "e_utf8string_invalid_bytes",
            Rfc822NonAscii => "e_ext_san_rfc822_contains_non_ascii",
            CnNotInSan => "w_cab_subject_common_name_not_in_san",
            DuplicateAttribute => "e_subject_duplicate_attribute",
            ExtraCn => "w_cab_subject_contain_extra_common_name",
            SubjectBidiControl => "e_subject_dn_bidi_controls",
            SubjectZeroWidth => "e_subject_dn_zero_width_characters",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use unicert_asn1::DateTime;
    use unicert_lint::{default_registry, RunOptions};
    use unicert_x509::SimKey;

    fn all_defects() -> Vec<Defect> {
        GENERAL_WEIGHTS
            .iter()
            .chain(LATENT_WEIGHTS)
            .map(|&(d, _)| d)
            .collect()
    }

    /// Every defect, applied to a compliant base, makes its expected lint
    /// fire — the corpus ↔ linter contract.
    #[test]
    fn every_defect_triggers_its_lint() {
        let mut rng = SmallRng::seed_from_u64(42);
        let reg = default_registry();
        for defect in all_defects() {
            // CN-less base, matching the generator's defect-cert contract
            // (defects add their own CNs when they need them).
            let host = "host.example.com";
            let base = CertificateBuilder::new()
                .subject_org("Base Org")
                .add_dns_san(host)
                .validity_days(DateTime::date(2024, 7, 1).unwrap(), 90);
            let built = apply(defect, base, "Base Org", host, &mut rng)
                .build_signed(&SimKey::from_seed("defect-ca"));
            let report = reg.run(&built, RunOptions::default());
            let expected = defect.expected_lint();
            assert!(
                report.findings.iter().any(|f| f.lint == expected),
                "{defect:?}: expected {expected}, got {:?}",
                report.findings
            );
        }
    }

    /// Defect taxonomy types match what the linter reports.
    #[test]
    fn defect_types_match_lint_types() {
        let reg = default_registry();
        for defect in all_defects() {
            let lint = reg
                .get(defect.expected_lint())
                .unwrap_or_else(|| panic!("{}", defect.expected_lint()));
            assert_eq!(lint.nc_type, defect.nc_type(), "{defect:?}");
        }
    }

    #[test]
    fn weighted_sampling_follows_weights() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(sample(&mut rng, GENERAL_WEIGHTS)).or_insert(0usize) += 1;
        }
        // The dominant defect (explicitText-not-UTF8) must dominate.
        let top = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        assert_eq!(*top.0, Defect::ExplicitTextNotUtf8);
        // CnNotInSan is second.
        assert!(counts[&Defect::CnNotInSan] > counts[&Defect::IdnA2uUnpermitted]);
    }
}
