//! Temporal models: the Fig. 2 issuance trend, the Fig. 3 validity-period
//! distributions, and the declining noncompliance-rate factor.

use rand::Rng;
use unicert_asn1::DateTime;

/// First year the corpus covers (CT-era; §4.1 notes pre-2015 certificates
/// are underrepresented but present).
pub const FIRST_YEAR: i32 = 2013;
/// Final analysis year (April 2025 snapshot).
pub const LAST_YEAR: i32 = 2025;

/// Relative issuance weight per year — exponential growth flattening in
/// 2025 (partial year), shaping Figure 2's upward trend.
pub fn year_weight(year: i32) -> f64 {
    match year {
        2013 => 0.1,
        2014 => 0.3,
        2015 => 0.8,
        2016 => 1.8,
        2017 => 3.5,
        2018 => 5.5,
        2019 => 7.5,
        2020 => 9.5,
        2021 => 11.5,
        2022 => 13.5,
        2023 => 16.0,
        2024 => 20.0,
        2025 => 10.0, // data ends April 2025
        _ => 0.0,
    }
}

/// Noncompliance declines over time (Fig. 2's widening gap between all and
/// noncompliant issuance): a multiplicative factor applied to each
/// issuer's base rate.
pub fn nc_year_factor(year: i32) -> f64 {
    match year {
        ..=2014 => 5.0,
        2015 => 4.0,
        2016 => 3.2,
        2017 => 2.5,
        2018 => 2.0,
        2019 => 1.5,
        2020 => 1.1,
        2021 => 0.8,
        2022 => 0.6,
        2023 => 0.45,
        2024 => 0.35,
        _ => 0.3,
    }
}

/// Sample an issuance year within `[lo, hi]` following the global trend.
pub fn sample_year(rng: &mut impl Rng, lo: i32, hi: i32) -> i32 {
    let lo = lo.max(FIRST_YEAR);
    let hi = hi.min(LAST_YEAR);
    let total: f64 = (lo..=hi).map(year_weight).sum();
    if total <= 0.0 {
        return hi;
    }
    let mut pick = rng.gen_range(0.0..total);
    for y in lo..=hi {
        let w = year_weight(y);
        if pick < w {
            return y;
        }
        pick -= w;
    }
    hi
}

/// Sample an issuance date within a year (month truncated for 2025 to
/// match the April snapshot).
pub fn sample_date(rng: &mut impl Rng, year: i32) -> DateTime {
    let max_month = if year >= LAST_YEAR { 4 } else { 12 };
    let month = rng.gen_range(1..=max_month) as u8;
    let day = rng.gen_range(1..=28) as u8;
    // Month is 1..=12 and day <= 28, so the literal is always in range.
    DateTime { year, month, day, hour: 0, minute: 0, second: 0 }
}

/// Certificate class for validity sampling (Fig. 3's three CDFs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertClass {
    /// IDN-only automated issuance: 89.6% on the 90-day trend.
    IdnCert,
    /// Other (subject-customized) Unicerts: >10.7% exceed 398 days.
    OtherUnicert,
    /// Noncompliant Unicerts: ~50% ≥ 1 year, >20% > 700 days.
    Noncompliant,
}

/// Sample a validity period in days for a class.
pub fn sample_validity_days(rng: &mut impl Rng, class: CertClass) -> i64 {
    let r: f64 = rng.gen();
    match class {
        CertClass::IdnCert => {
            if r < 0.896 {
                90
            } else if r < 0.96 {
                365
            } else {
                398
            }
        }
        CertClass::OtherUnicert => {
            if r < 0.35 {
                90
            } else if r < 0.55 {
                365
            } else if r < 0.893 {
                398
            } else if r < 0.95 {
                730
            } else {
                rng.gen_range(800..1500)
            }
        }
        CertClass::Noncompliant => {
            if r < 0.30 {
                90
            } else if r < 0.50 {
                365
            } else if r < 0.78 {
                rng.gen_range(366..700)
            } else {
                rng.gen_range(701..3000)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn trend_is_increasing_through_2024() {
        for y in FIRST_YEAR..2024 {
            assert!(year_weight(y + 1) > year_weight(y), "{y}");
        }
    }

    #[test]
    fn nc_factor_declines() {
        for y in FIRST_YEAR..LAST_YEAR {
            assert!(nc_year_factor(y + 1) <= nc_year_factor(y), "{y}");
        }
    }

    #[test]
    fn sampled_years_respect_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let y = sample_year(&mut rng, 2015, 2018);
            assert!((2015..=2018).contains(&y));
        }
    }

    #[test]
    fn validity_distributions_have_paper_shape() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 10_000;
        let idn: Vec<i64> = (0..n).map(|_| sample_validity_days(&mut rng, CertClass::IdnCert)).collect();
        let other: Vec<i64> = (0..n).map(|_| sample_validity_days(&mut rng, CertClass::OtherUnicert)).collect();
        let nc: Vec<i64> = (0..n).map(|_| sample_validity_days(&mut rng, CertClass::Noncompliant)).collect();
        let frac = |v: &[i64], p: &dyn Fn(i64) -> bool| {
            v.iter().filter(|&&d| p(d)).count() as f64 / v.len() as f64
        };
        // ~89.6% of IDNCerts are 90-day.
        assert!((frac(&idn, &|d| d <= 90) - 0.896).abs() < 0.02);
        // >10.7% of other Unicerts exceed 398 days.
        assert!(frac(&other, &|d| d > 398) > 0.10);
        // ~50% of NC certs last >= a year; >20% exceed 700 days.
        assert!(frac(&nc, &|d| d >= 365) > 0.45);
        assert!(frac(&nc, &|d| d > 700) > 0.20);
    }

    #[test]
    fn dates_respect_2025_cutoff() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            let d = sample_date(&mut rng, 2025);
            assert!(d.month <= 4);
        }
    }
}
