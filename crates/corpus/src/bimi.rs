//! BIMI/VMC-shaped certificates: the corpus twin of the `bimi` compliance
//! profile (SNIPPETS.md Snippet 1).
//!
//! Mirrors the `defects`/`generator` split of the WebPKI corpus at VMC
//! scale: [`BimiDefect`] enumerates one seeded noncompliance per lint of
//! the `bimi` catalog, [`vector_builder`] produces the fully deterministic
//! certificates behind `tests/vectors/bimi/`, and [`BimiGenerator`] streams
//! a seeded mixed corpus (clean VMCs plus defect injections) for the
//! differential-fuzzing harness.

use crate::pick;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use unicert_asn1::oid::known;
use unicert_asn1::{DateTime, StringKind};
use unicert_x509::extensions::{certificate_policies, ext_key_usage, logotype, PolicyInformation};
use unicert_x509::{Certificate, CertificateBuilder, SimKey};

/// A concrete noncompliance a VMC can be built with. Each variant maps
/// onto exactly one lint of the `bimi` profile ([`BimiDefect::expected_lint`]);
/// the last two target the catalog's shared-WebPKI lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BimiDefect {
    /// certificatePolicies without the mark-certificate policy OID.
    OmitMarkPolicy,
    /// No extendedKeyUsage extension at all.
    OmitEku,
    /// extendedKeyUsage carrying serverAuth next to the BIMI purpose.
    ExtraEkuPurpose,
    /// No logotype extension.
    OmitLogotype,
    /// Logotype extension marked critical.
    CriticalLogotype,
    /// Subject DN without the markType attribute.
    OmitMarkType,
    /// markType as BMPString.
    BmpMarkType,
    /// Trademark office + registration without the country attribute.
    PartialTrademark,
    /// trademarkCountryOrRegionName spelled out ("USA").
    LongTrademarkCountry,
    /// trademarkRegistration as UTF8String instead of PrintableString.
    Utf8TrademarkId,
    /// statuteCitation without the accompanying statute country.
    StatuteWithoutCountry,
    /// priorUseMarkSourceURL over plain http.
    HttpPriorUseUrl,
    /// No subjectAltName (and no CN, so only the SAN lint fires).
    OmitSan,
    /// Subject CN absent from the SAN (shared WebPKI lint).
    CnNotInSan,
    /// Organization as BMPString (shared WebPKI lint).
    BmpOrganization,
}

impl BimiDefect {
    /// Every defect, in declaration order.
    pub const ALL: [BimiDefect; 15] = [
        BimiDefect::OmitMarkPolicy,
        BimiDefect::OmitEku,
        BimiDefect::ExtraEkuPurpose,
        BimiDefect::OmitLogotype,
        BimiDefect::CriticalLogotype,
        BimiDefect::OmitMarkType,
        BimiDefect::BmpMarkType,
        BimiDefect::PartialTrademark,
        BimiDefect::LongTrademarkCountry,
        BimiDefect::Utf8TrademarkId,
        BimiDefect::StatuteWithoutCountry,
        BimiDefect::HttpPriorUseUrl,
        BimiDefect::OmitSan,
        BimiDefect::CnNotInSan,
        BimiDefect::BmpOrganization,
    ];

    /// The `bimi`-profile lint this defect is expected to trigger.
    pub fn expected_lint(self) -> &'static str {
        use BimiDefect::*;
        match self {
            OmitMarkPolicy => "e_bimi_mark_certificate_policy_missing",
            OmitEku => "e_bimi_eku_missing",
            ExtraEkuPurpose => "w_bimi_eku_extraneous_purpose",
            OmitLogotype => "e_bimi_logotype_missing",
            CriticalLogotype => "e_bimi_logotype_critical",
            OmitMarkType => "e_bimi_mark_type_missing",
            BmpMarkType => "e_bimi_mark_type_not_printable_or_utf8",
            PartialTrademark => "e_bimi_trademark_registration_incomplete",
            LongTrademarkCountry => "e_bimi_trademark_country_not_two_letters",
            Utf8TrademarkId => "e_bimi_trademark_id_not_printable",
            StatuteWithoutCountry => "e_bimi_statute_citation_missing_country",
            HttpPriorUseUrl => "w_bimi_prior_use_url_not_https",
            OmitSan => "e_bimi_san_dns_missing",
            CnNotInSan => "w_cab_subject_common_name_not_in_san",
            BmpOrganization => "e_subject_organization_not_printable_or_utf8",
        }
    }
}

/// Midnight on a hand-validated calendar date (same pattern as the lint
/// framework's effective-date table: no fallible constructor at build time).
const fn midnight(year: i32, month: u8, day: u8) -> DateTime {
    DateTime { year, month, day, hour: 0, minute: 0, second: 0 }
}

/// The demo verified-mark issuer DN shared by every generated VMC.
fn issuer_dn() -> unicert_x509::DistinguishedName {
    unicert_x509::DistinguishedName::from_attributes(&[
        (known::country_name(), StringKind::Printable, "US"),
        (known::organization_name(), StringKind::Utf8, "BIMI Demo CA"),
        (known::common_name(), StringKind::Utf8, "BIMI Demo Verified Mark CA"),
    ])
}

/// Shape a VMC builder: a clean certificate satisfying every lint of the
/// `bimi` profile, or — with a defect — the same certificate perturbed so
/// exactly that defect's lint fires.
fn shape(
    defect: Option<BimiDefect>,
    host: &str,
    org: &str,
    serial: &[u8],
    issued: DateTime,
    days: i64,
) -> CertificateBuilder {
    use BimiDefect::*;
    let mut b = CertificateBuilder::new()
        .serial(serial)
        .issuer(issuer_dn())
        .validity_days(issued, days)
        .subject_attr(known::country_name(), StringKind::Printable, "US");

    b = match defect {
        Some(BmpOrganization) => b.subject_attr(known::organization_name(), StringKind::Bmp, org),
        _ => b.subject_attr(known::organization_name(), StringKind::Utf8, org),
    };
    match defect {
        // Without the SAN the CN would drag the shared CN↔SAN lint in too;
        // a CN-less subject keeps the vector single-lint.
        Some(OmitSan) => {}
        Some(CnNotInSan) => b = b.subject_cn(&format!("other-{host}")),
        _ => b = b.subject_cn(host),
    }
    match defect {
        Some(OmitMarkType) => {}
        Some(BmpMarkType) => {
            b = b.subject_attr(known::bimi_mark_type(), StringKind::Bmp, "Registered Mark")
        }
        _ => b = b.subject_attr(known::bimi_mark_type(), StringKind::Printable, "Registered Mark"),
    }

    // The trademark triple: office + country + registration number.
    b = b.subject_attr(
        known::bimi_trademark_office(),
        StringKind::Utf8,
        "US Patent and Trademark Office",
    );
    if !matches!(defect, Some(PartialTrademark)) {
        let country = if matches!(defect, Some(LongTrademarkCountry)) { "USA" } else { "US" };
        b = b.subject_attr(known::bimi_trademark_country(), StringKind::Printable, country);
    }
    b = match defect {
        Some(Utf8TrademarkId) => {
            b.subject_attr(known::bimi_trademark_id(), StringKind::Utf8, "7654321")
        }
        _ => b.subject_attr(known::bimi_trademark_id(), StringKind::Printable, "7654321"),
    };
    if matches!(defect, Some(StatuteWithoutCountry)) {
        b = b.subject_attr(known::bimi_statute_citation(), StringKind::Utf8, "15 U.S.C. 1051");
    }
    if matches!(defect, Some(HttpPriorUseUrl)) {
        b = b.subject_attr(
            known::bimi_prior_use_url(),
            StringKind::Utf8,
            "http://brand.example/mark",
        );
    }

    if !matches!(defect, Some(OmitSan)) {
        b = b.add_dns_san(host);
    }
    match defect {
        Some(OmitEku) => {}
        Some(ExtraEkuPurpose) => {
            b = b.add_extension(ext_key_usage(&[known::eku_bimi(), known::eku_server_auth()]))
        }
        _ => b = b.add_extension(ext_key_usage(&[known::eku_bimi()])),
    }
    if !matches!(defect, Some(OmitMarkPolicy)) {
        b = b.add_extension(certificate_policies(&[PolicyInformation {
            policy_id: known::bimi_mark_cert_policy(),
            qualifiers: Vec::new(),
        }]));
    }
    match defect {
        Some(OmitLogotype) => {}
        Some(CriticalLogotype) => {
            let mut ext = logotype("https://img.example/brand.svg");
            ext.critical = true;
            b = b.add_extension(ext);
        }
        _ => b = b.add_extension(logotype("https://img.example/brand.svg")),
    }
    b
}

/// The fully deterministic builder behind `tests/vectors/bimi/`: fixed
/// serial, brand, and validity, so regenerating golden vectors is
/// byte-stable across machines and runs.
pub fn vector_builder(defect: Option<BimiDefect>) -> CertificateBuilder {
    shape(defect, "brand.example", "Example Brand, Inc.", &[0x0B, 0x1F, 0x42], midnight(2024, 6, 1), 398)
}

/// Configuration for the seeded BIMI corpus.
#[derive(Debug, Clone)]
pub struct BimiConfig {
    /// Number of VMCs to produce.
    pub size: usize,
    /// RNG seed (fully deterministic given the seed).
    pub seed: u64,
    /// Fraction of entries carrying one seeded [`BimiDefect`].
    pub defect_fraction: f64,
}

impl Default for BimiConfig {
    fn default() -> Self {
        BimiConfig { size: 1_000, seed: 42, defect_fraction: 0.35 }
    }
}

/// One generated VMC with its ground-truth defect.
#[derive(Debug, Clone)]
pub struct BimiEntry {
    /// The certificate (parsed model + raw DER).
    pub cert: Certificate,
    /// The injected defect, if any.
    pub defect: Option<BimiDefect>,
}

/// `(host, org)` brand identities the generator samples from. One A-label
/// host keeps the IDN machinery in the differential corpus's diet.
const BRANDS: &[(&str, &str)] = &[
    ("brand.example", "Example Brand, Inc."),
    ("mail.acme.example", "Acme Corporation"),
    ("post.blumen.example", "Blumenladen München GmbH"),
    ("xn--mnchen-3ya.example", "Münchner Marken AG"),
    ("mark.nippon.example", "日本ブランド株式会社"),
];

/// Streaming seeded VMC generator.
pub struct BimiGenerator {
    config: BimiConfig,
    rng: SmallRng,
    key: SimKey,
    produced: usize,
}

impl BimiGenerator {
    /// Create a generator for the given configuration.
    pub fn new(config: BimiConfig) -> BimiGenerator {
        BimiGenerator {
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            key: SimKey::from_seed("bimi-demo-vmc-ca"),
            produced: 0,
        }
    }

    /// Generate the whole corpus into a vector.
    pub fn collect_all(config: BimiConfig) -> Vec<BimiEntry> {
        BimiGenerator::new(config).collect()
    }
}

impl Iterator for BimiGenerator {
    type Item = BimiEntry;

    fn next(&mut self) -> Option<BimiEntry> {
        if self.produced >= self.config.size {
            return None;
        }
        self.produced += 1;
        let defect = if self.config.defect_fraction > 0.0
            && self.rng.gen_bool(self.config.defect_fraction.min(1.0))
        {
            Some(pick(&mut self.rng, &BimiDefect::ALL))
        } else {
            None
        };
        let (host, org) = pick(&mut self.rng, BRANDS);
        let mut serial = [0u8; 10];
        self.rng.fill(&mut serial);
        serial[0] |= 0x01; // never zero
        let issued = midnight(
            2023 + self.rng.gen_range(0..3),
            self.rng.gen_range(1..=12),
            self.rng.gen_range(1..=28),
        );
        let days = pick(&mut self.rng, &[365i64, 398]);
        let cert = shape(defect, host, org, &serial, issued, days).build_signed(&self.key);
        Some(BimiEntry { cert, defect })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicert_lint::RunOptions;

    fn bimi_registry() -> &'static unicert_lint::Registry {
        unicert_lint::profiles::registry("bimi").expect("bimi profile registered")
    }

    #[test]
    fn clean_vector_passes_the_bimi_catalog() {
        let cert = vector_builder(None).build_signed(&SimKey::from_seed("bimi-demo-vmc-ca"));
        let report = bimi_registry().run(&cert, RunOptions::default());
        assert!(report.findings.is_empty(), "clean VMC lints dirty: {:?}", report.findings);
    }

    #[test]
    fn every_bimi_defect_triggers_its_lint() {
        let key = SimKey::from_seed("bimi-demo-vmc-ca");
        let reg = bimi_registry();
        for defect in BimiDefect::ALL {
            let cert = vector_builder(Some(defect)).build_signed(&key);
            let report = reg.run(&cert, RunOptions::default());
            let expected = defect.expected_lint();
            assert!(
                report.findings.iter().any(|f| f.lint == expected),
                "{defect:?}: expected {expected}, got {:?}",
                report.findings
            );
        }
    }

    #[test]
    fn every_defect_lint_is_registered() {
        let reg = bimi_registry();
        for defect in BimiDefect::ALL {
            assert!(reg.get(defect.expected_lint()).is_some(), "{defect:?}");
        }
        // And the mapping is onto: every bimi-profile lint has a defect.
        for lint in reg.iter() {
            assert!(
                BimiDefect::ALL.iter().any(|d| d.expected_lint() == lint.name),
                "no seeded defect targets {}",
                lint.name
            );
        }
    }

    #[test]
    fn generator_is_deterministic_and_mixed() {
        let a = BimiGenerator::collect_all(BimiConfig { size: 120, ..Default::default() });
        let b = BimiGenerator::collect_all(BimiConfig { size: 120, ..Default::default() });
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cert.raw, y.cert.raw);
            assert_eq!(x.defect, y.defect);
        }
        assert!(a.iter().any(|e| e.defect.is_some()));
        assert!(a.iter().any(|e| e.defect.is_none()));
    }

    #[test]
    fn generated_defects_are_detected_and_clean_vmcs_pass() {
        let reg = bimi_registry();
        for e in BimiGenerator::collect_all(BimiConfig { size: 250, seed: 7, ..Default::default() })
        {
            let report = reg.run(&e.cert, RunOptions::default());
            match e.defect {
                Some(d) => assert!(
                    report.findings.iter().any(|f| f.lint == d.expected_lint()),
                    "{d:?} not detected: {:?}",
                    report.findings
                ),
                None => assert!(report.findings.is_empty(), "clean VMC: {:?}", report.findings),
            }
        }
    }
}
