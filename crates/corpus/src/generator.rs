//! The corpus generator: a deterministic stream of synthetic CT entries
//! whose population statistics reproduce the paper's aggregates (§4,
//! Tables 1–3, Figures 2–4). See DESIGN.md's substitution table.

use crate::defects::{self, Defect};
use crate::issuers::{self, IssuancePolicy, IssuerProfile, TrustStatus};
use crate::subjects;
use crate::trend::{self, CertClass};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use unicert_asn1::oid::known;
use unicert_asn1::{DateTime, StringKind};
use unicert_x509::extensions::{authority_info_access, AccessDescription};
use unicert_x509::{Certificate, CertView, CertificateBuilder, GeneralName, SimKey};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of leaf Unicerts to produce.
    pub size: usize,
    /// RNG seed (corpora are fully deterministic given the seed).
    pub seed: u64,
    /// Emit a CT-poisoned precertificate twin for this fraction of entries
    /// (the paper's CT dataset is 54.7% precertificates before filtering).
    pub precert_fraction: f64,
    /// Inject "latent" defects — violations of rules whose effective dates
    /// postdate the certificate — reproducing the footnote-4 ablation
    /// (findings inflate ~7× with date gating off).
    pub latent_defects: bool,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { size: 10_000, seed: 42, precert_fraction: 0.0, latent_defects: true }
    }
}

/// Metadata the generator knows about each certificate (ground truth for
/// evaluating the analysis pipeline).
#[derive(Debug, Clone)]
pub struct CertMeta {
    /// IssuerOrganizationName.
    pub issuer_org: String,
    /// Trust status at issuance.
    pub trust: TrustStatus,
    /// Issuance date.
    pub issued: DateTime,
    /// Validity period in days.
    pub validity_days: i64,
    /// Does the certificate carry IDNs in DNS fields?
    pub is_idn_cert: bool,
    /// The injected defect, if any.
    pub injected: Option<Defect>,
    /// True when the defect is latent (only visible with date gating off).
    pub latent: bool,
    /// Is this entry a CT precertificate twin?
    pub is_precert: bool,
}

impl CertMeta {
    /// Best-effort metadata inferred from a parsed certificate alone.
    ///
    /// The survey's hostile-input path (`run_bytes` in `unicert-core`)
    /// feeds raw DER with no generator ground truth attached; this
    /// reconstructs the fields the aggregation kernel reads from what the
    /// certificate itself says. Trust defaults to `Untrusted` (nothing
    /// vouches for a cert that arrived as bare bytes) and the
    /// injected/latent channels — which only the generator can know — stay
    /// empty.
    pub fn inferred(cert: &Certificate) -> CertMeta {
        let issuer_org = cert
            .tbs
            .issuer
            .organization()
            .or_else(|| cert.tbs.issuer.common_name())
            .unwrap_or_else(|| "(unknown issuer)".to_string());
        CertMeta {
            issuer_org,
            trust: TrustStatus::Untrusted,
            issued: cert.tbs.validity.not_before,
            validity_days: cert.tbs.validity.period_days(),
            is_idn_cert: false,
            injected: None,
            latent: false,
            is_precert: cert.tbs.is_precertificate(),
        }
    }

    /// [`CertMeta::inferred`] over the zero-copy [`CertView`]: identical
    /// field values for the same DER, no owned tree materialized. The
    /// survey's borrowed hot path relies on this equivalence for its
    /// byte-identical-reports invariant.
    pub fn inferred_view(view: &CertView<'_>) -> CertMeta {
        let issuer_org = view
            .issuer
            .organization()
            .or_else(|| view.issuer.common_name())
            .unwrap_or_else(|| "(unknown issuer)".to_string());
        CertMeta {
            issuer_org,
            trust: TrustStatus::Untrusted,
            issued: view.validity.not_before,
            validity_days: view.validity.period_days(),
            is_idn_cert: false,
            injected: None,
            latent: false,
            is_precert: view.is_precertificate(),
        }
    }
}

/// One corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The certificate (parsed model + raw DER).
    pub cert: Certificate,
    /// Ground-truth metadata.
    pub meta: CertMeta,
}

/// A [`CorpusEntry`] that has not been decoded yet: the certificate's raw
/// DER borrowed from wherever it already lives (a segment read buffer, a
/// memory-mapped corpus), plus its owned metadata. This is the currency of
/// the zero-copy survey path — the DER is parsed into a
/// [`unicert_x509::CertView`] at lint time instead of being copied into an
/// owned [`Certificate`] up front.
#[derive(Debug, Clone)]
pub struct RawEntry<'a> {
    /// The certificate, exactly as encoded.
    pub der: &'a [u8],
    /// Ground-truth metadata.
    pub meta: CertMeta,
}

/// Streaming corpus generator.
pub struct CorpusGenerator {
    config: CorpusConfig,
    rng: SmallRng,
    population: Vec<IssuerProfile>,
    share_total: f64,
    keys: HashMap<&'static str, SimKey>,
    produced: usize,
    pending_precert: Option<CorpusEntry>,
}

impl CorpusGenerator {
    /// Create a generator for the given configuration.
    pub fn new(config: CorpusConfig) -> CorpusGenerator {
        let population = issuers::population();
        let share_total = population.iter().map(|p| p.share).sum();
        CorpusGenerator {
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            population,
            share_total,
            keys: HashMap::new(),
            produced: 0,
            pending_precert: None,
        }
    }

    /// Generate the whole corpus into a vector (prefer iterating for large
    /// sizes).
    pub fn collect_all(config: CorpusConfig) -> Vec<CorpusEntry> {
        CorpusGenerator::new(config).collect()
    }

    fn pick_issuer(&mut self) -> IssuerProfile {
        let mut pick = self.rng.gen_range(0.0..self.share_total);
        for p in &self.population {
            if pick < p.share {
                return p.clone();
            }
            pick -= p.share;
        }
        self.population.last().expect("population non-empty").clone() // analysis:allow(expect) issuer population is a static non-empty table
    }

    fn issuer_key(&mut self, org: &'static str) -> SimKey {
        self.keys
            .entry(org)
            .or_insert_with(|| SimKey::from_seed(org))
            .clone()
    }

    fn issuer_dn(profile: &IssuerProfile) -> unicert_x509::DistinguishedName {
        let ca_cn = format!("{} Unicert CA", profile.org_name);
        unicert_x509::DistinguishedName::from_attributes(&[
            (known::country_name(), StringKind::Printable, profile.region),
            (known::organization_name(), StringKind::Utf8, profile.org_name),
            (known::common_name(), StringKind::Utf8, ca_cn.as_str()),
        ])
    }

    fn next_entry(&mut self) -> CorpusEntry {
        let profile = self.pick_issuer();
        let year = trend::sample_year(&mut self.rng, profile.active.0, profile.active.1);
        let issued = trend::sample_date(&mut self.rng, year);

        // Decide noncompliance. The Fig. 2 decline factor is normalized by
        // the issuer's expected factor over its active years, so each
        // issuer's *overall* rate still matches its Table 2 value while the
        // yearly trend slopes downward.
        let norm = expected_nc_factor(profile.active.0, profile.active.1);
        let nc_rate = (profile.nc_rate * trend::nc_year_factor(year) / norm).min(0.985);
        let is_nc = self.rng.gen_bool(nc_rate);

        // Content.
        let idn_host = profile.policy == IssuancePolicy::IdnOnly
            || (profile.script != "latin" && self.rng.gen_bool(0.7))
            || self.rng.gen_bool(0.3);
        let host = if idn_host {
            subjects::idn_hostname(&mut self.rng, profile.script)
        } else {
            subjects::ascii_hostname(&mut self.rng)
        };
        // Certificates with ASCII hostnames must carry non-ASCII subject
        // text to be Unicerts at all (§2.3); IDN-hosted ones may use any org.
        let org = if idn_host {
            subjects::org_name(&mut self.rng, profile.script)
        } else {
            subjects::non_ascii_org(&mut self.rng, profile.script)
        };

        // Defect choice.
        let (defect, latent) = if is_nc {
            let table = match profile.policy {
                IssuancePolicy::IdnOnly => defects::DNS_ONLY_WEIGHTS,
                IssuancePolicy::FullSubject => defects::GENERAL_WEIGHTS,
            };
            (Some(defects::sample(&mut self.rng, table)), false)
        } else if self.config.latent_defects {
            self.latent_defect(&profile, issued)
        } else {
            (None, false)
        };

        // Validity class.
        let class = if defect.is_some() && !latent {
            CertClass::Noncompliant
        } else if idn_host {
            CertClass::IdnCert
        } else {
            CertClass::OtherUnicert
        };
        let validity_days = trend::sample_validity_days(&mut self.rng, class);

        // Build.
        let mut serial = [0u8; 10];
        self.rng.fill(&mut serial);
        serial[0] |= 0x01; // never zero
        let mut builder = CertificateBuilder::new()
            .serial(&serial)
            .issuer(Self::issuer_dn(&profile))
            .validity_days(issued, validity_days)
            .add_dns_san(&host)
            .add_extension(authority_info_access(&[AccessDescription {
                method: known::ad_ca_issuers(),
                location: GeneralName::uri(&format!(
                    "http://ca.{}.example/issuer.crt",
                    profile.org_name.to_lowercase().replace([' ', ',', '.', '\''], "-")
                )),
            }]));

        match profile.policy {
            IssuancePolicy::IdnOnly => {
                // DV automation: CN mirrors the SAN, no other subject info.
                builder = builder.subject_cn(&host);
            }
            IssuancePolicy::FullSubject => {
                // Defects that inject their own C/O/CN own those attributes;
                // the base must not duplicate them.
                if !defect.is_some_and(Defect::provides_country) {
                    builder = builder.subject_attr(
                        known::country_name(),
                        StringKind::Printable,
                        profile.region,
                    );
                }
                if !defect.is_some_and(Defect::provides_org) {
                    builder = builder.subject_org(org);
                }
                if !defect.is_some_and(Defect::provides_cn) {
                    builder = builder.subject_cn(&host);
                }
            }
        }

        if let Some(d) = defect {
            builder = defects::apply(d, builder, org, &host, &mut self.rng);
        }

        let key = self.issuer_key(profile.org_name);
        let cert = builder.build_signed(&key);
        let is_idn_cert = cert
            .tbs
            .san_dns_names()
            .iter()
            .any(|h| subjects::is_idn(h));

        CorpusEntry {
            cert,
            meta: CertMeta {
                issuer_org: profile.org_name.to_string(),
                trust: profile.trust,
                issued,
                validity_days,
                is_idn_cert,
                injected: defect,
                latent,
                is_precert: false,
            },
        }
    }

    /// Pick a latent defect: one whose *only* violated lint has an
    /// effective date after the issuance date. Rates are tuned so that
    /// disabling date gating inflates total findings by roughly the
    /// paper's 7× (the footnote-4 ablation).
    fn latent_defect(&mut self, profile: &IssuerProfile, issued: DateTime) -> (Option<Defect>, bool) {
        if profile.policy == IssuancePolicy::IdnOnly {
            // Automated DV issuers have no free-form subject fields to
            // carry latent text defects.
            return (None, false);
        }
        // Calibrated against the footnote-4 ablation target (≈7× inflation).
        let rate = match issued.year {
            ..=2017 => 0.30,
            2018..=2023 => 0.17,
            _ => 0.0,
        };
        if rate == 0.0 || !self.rng.gen_bool(rate) {
            return (None, false);
        }
        let registry = crate::lint_registry();
        let latent_table: Vec<(Defect, u32)> = defects::LATENT_WEIGHTS
            .iter()
            .copied()
            .filter(|(d, _)| {
                registry
                    .get(d.expected_lint())
                    .map(|l| issued < l.effective_date())
                    .unwrap_or(false)
            })
            .collect();
        if latent_table.is_empty() {
            return (None, false);
        }
        (Some(defects::sample(&mut self.rng, &latent_table)), true)
    }
}

/// Cached handle for the `corpus.generate_ns` histogram (DESIGN.md §8) —
/// one registry lookup for the process lifetime, not one per entry.
fn generate_histogram() -> &'static std::sync::Arc<unicert_telemetry::Histogram> {
    static HANDLE: std::sync::OnceLock<std::sync::Arc<unicert_telemetry::Histogram>> =
        std::sync::OnceLock::new();
    HANDLE.get_or_init(|| unicert_telemetry::global().histogram("corpus.generate_ns", ""))
}

impl Iterator for CorpusGenerator {
    type Item = CorpusEntry;

    fn next(&mut self) -> Option<CorpusEntry> {
        if let Some(pre) = self.pending_precert.take() {
            return Some(pre);
        }
        if self.produced >= self.config.size {
            return None;
        }
        self.produced += 1;
        // Generation covers build + sign + DER encode/parse round-trip —
        // the "DER parse" leg of the pipeline breakdown. Timing is a pure
        // observation: the RNG stream and the entry are untouched by it.
        let started = unicert_telemetry::metrics_enabled().then(std::time::Instant::now);
        let entry = self.next_entry();
        if self.config.precert_fraction > 0.0 && self.rng.gen_bool(self.config.precert_fraction) {
            self.pending_precert = Some(make_precert_twin(&entry));
        }
        if let Some(started) = started {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            generate_histogram().record(nanos);
        }
        Some(entry)
    }
}

/// The issuance-weighted average decline factor over an active range —
/// the normalizer that keeps per-issuer overall rates at their Table 2
/// values.
fn expected_nc_factor(lo: i32, hi: i32) -> f64 {
    let lo = lo.max(trend::FIRST_YEAR);
    let hi = hi.min(trend::LAST_YEAR);
    let mut weight_sum = 0.0;
    let mut acc = 0.0;
    for y in lo..=hi {
        let w = trend::year_weight(y);
        weight_sum += w;
        acc += w * trend::nc_year_factor(y);
    }
    if weight_sum <= 0.0 {
        1.0
    } else {
        acc / weight_sum
    }
}

/// Build the CT-poisoned precertificate twin of an entry (§4.1: filtered
/// out of analysis by the poison extension).
fn make_precert_twin(entry: &CorpusEntry) -> CorpusEntry {
    let mut tbs = entry.cert.tbs.clone();
    tbs.extensions.insert(0, unicert_x509::extensions::ct_poison());
    let raw_tbs = tbs.to_der();
    let key = SimKey::from_seed(&entry.meta.issuer_org);
    let signature = key.sign(&raw_tbs);
    let cert = Certificate {
        tbs,
        signature_algorithm: entry.cert.signature_algorithm.clone(),
        signature: unicert_asn1::BitString::from_bytes(&signature),
        raw_tbs,
        raw: Vec::new(),
    };
    let raw = cert.to_der();
    CorpusEntry {
        cert: Certificate { raw, ..cert },
        meta: CertMeta { is_precert: true, ..entry.meta.clone() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicert_lint::{RunOptions, Severity};

    fn small_corpus(size: usize, seed: u64) -> Vec<CorpusEntry> {
        CorpusGenerator::collect_all(CorpusConfig { size, seed, ..Default::default() })
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_corpus(50, 7);
        let b = small_corpus(50, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cert.raw, y.cert.raw);
        }
        let c = small_corpus(50, 8);
        assert!(a.iter().zip(&c).any(|(x, y)| x.cert.raw != y.cert.raw));
    }

    #[test]
    fn all_entries_are_unicerts() {
        for e in small_corpus(300, 1) {
            let subject_unicode = e
                .cert
                .tbs
                .subject
                .attributes()
                .chain(e.cert.tbs.issuer.attributes())
                .any(|a| {
                    a.value
                        .decode_wire()
                        .map(|t| unicert_unicode::classify::has_non_printable_ascii(&t))
                        .unwrap_or(true)
                });
            let idn = e.meta.is_idn_cert;
            assert!(subject_unicode || idn, "not a Unicert: {:?}", e.cert.tbs.subject);
        }
    }

    #[test]
    fn signatures_verify_with_issuer_keys() {
        for e in small_corpus(100, 2) {
            let key = SimKey::from_seed(&e.meta.issuer_org);
            assert!(key.verify(&e.cert.raw_tbs, &e.cert.signature.bytes), "{}", e.meta.issuer_org);
        }
    }

    #[test]
    fn injected_defects_are_detected_and_clean_certs_pass() {
        let reg = crate::lint_registry();
        let mut nc_found = 0;
        let mut clean_violations = 0;
        for e in small_corpus(800, 3) {
            let report = reg.run(&e.cert, RunOptions::default());
            match (&e.meta.injected, e.meta.latent) {
                (Some(d), false) => {
                    assert!(
                        report.findings.iter().any(|f| f.lint == d.expected_lint()),
                        "{d:?} not detected: {:?}",
                        report.findings
                    );
                    nc_found += 1;
                }
                (Some(_), true) => {
                    // Latent: invisible when gated...
                    assert!(report.findings.is_empty(), "latent visible: {:?}", report.findings);
                    // ...but visible ungated.
                    let ungated = reg.run(&e.cert, RunOptions::ungated());
                    assert!(!ungated.findings.is_empty());
                }
                (None, _) => {
                    if !report.findings.is_empty() {
                        clean_violations += 1;
                    }
                }
            }
        }
        assert!(nc_found > 0, "no NC certs in an 800-cert sample");
        assert_eq!(clean_violations, 0, "clean certs must lint clean");
    }

    #[test]
    fn overall_nc_rate_near_paper() {
        let reg = crate::lint_registry();
        let corpus = small_corpus(20_000, 42);
        let nc = corpus
            .iter()
            .filter(|e| reg.run(&e.cert, RunOptions::default()).is_noncompliant())
            .count();
        let rate = nc as f64 / corpus.len() as f64;
        // Paper: 0.72%. Allow a band.
        assert!((0.003..0.02).contains(&rate), "nc rate {rate}");
    }

    #[test]
    fn precert_twins_carry_poison() {
        let corpus = CorpusGenerator::collect_all(CorpusConfig {
            size: 200,
            seed: 9,
            precert_fraction: 0.5,
            latent_defects: false,
        });
        let pre = corpus.iter().filter(|e| e.meta.is_precert).count();
        assert!(pre > 30, "{pre}");
        for e in &corpus {
            assert_eq!(e.meta.is_precert, e.cert.tbs.is_precertificate());
        }
    }

    #[test]
    fn severity_mix_includes_warnings_and_errors() {
        let reg = crate::lint_registry();
        let mut warnings = 0;
        let mut errors = 0;
        for e in small_corpus(5_000, 11) {
            let report = reg.run(&e.cert, RunOptions::default());
            for f in report.findings {
                match f.severity {
                    Severity::Warning => warnings += 1,
                    Severity::Error => errors += 1,
                }
            }
        }
        assert!(warnings > 0);
        assert!(errors > 0);
    }
}
