//! Subject-value variant strategies (Table 3): the six ways CT logs show
//! identity-equivalent Subjects with mismatched DNs, which §6.2 turns into
//! traffic-obfuscation probes.

use rand::Rng;

/// The six variant strategies of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VariantStrategy {
    /// `Samco Autotechnik GmbH` ↔ `SAMCO Autotechnik GmbH`.
    CaseConversion,
    /// `RWE Energie, s.r.o.` ↔ `RWE Energie, a.s.`.
    AbbreviationVariation,
    /// `PEDDY[U+00A0]SHIELD` ↔ `Peddy Shield`.
    NonPrintableInsertion,
    /// `株式会社[U+0020]中国銀行` ↔ `株式会社[U+3000]中国銀行`.
    WhitespaceVariant,
    /// `Vegas.XXX®™` ↔ `Vegas.XXX™®`; `-` ↔ `–`.
    ResemblingSubstitution,
    /// `St[U+FFFD]ri AG` (TeletexString) ↔ `Störi AG` (UTF8String).
    IllegalCharReplacement,
}

impl VariantStrategy {
    /// All six, in Table 3 order.
    pub const ALL: [VariantStrategy; 6] = [
        VariantStrategy::CaseConversion,
        VariantStrategy::AbbreviationVariation,
        VariantStrategy::NonPrintableInsertion,
        VariantStrategy::WhitespaceVariant,
        VariantStrategy::ResemblingSubstitution,
        VariantStrategy::IllegalCharReplacement,
    ];

    /// Label as printed in Table 3.
    pub fn label(self) -> &'static str {
        match self {
            VariantStrategy::CaseConversion => "Character case conversion",
            VariantStrategy::AbbreviationVariation => "Abbreviation variations",
            VariantStrategy::NonPrintableInsertion => "Addition of non-printable characters",
            VariantStrategy::WhitespaceVariant => "Use of different whitespace characters",
            VariantStrategy::ResemblingSubstitution => "Substitution of resembling characters",
            VariantStrategy::IllegalCharReplacement => "Replacement of illegal characters",
        }
    }

    /// Produce a variant of `base` under this strategy. The result is
    /// intended to *look* equivalent to a human or fuzzy matcher while
    /// differing byte-for-byte.
    pub fn apply(self, base: &str, rng: &mut impl Rng) -> String {
        match self {
            VariantStrategy::CaseConversion => {
                let (first, second) = if rng.gen_bool(0.5) {
                    (base.to_uppercase(), base.to_lowercase())
                } else {
                    (base.to_lowercase(), base.to_uppercase())
                };
                if first != base {
                    first
                } else if second != base {
                    second
                } else {
                    // Fully uncased value (e.g. CJK-only): no case variant
                    // exists, so fall back to the ideographic-space variant
                    // CT logs show for such names.
                    VariantStrategy::WhitespaceVariant.apply(base, rng)
                }
            }
            VariantStrategy::AbbreviationVariation => {
                for (from, to) in [
                    (", s.r.o.", ", a.s."),
                    (" GmbH", " Ltd."),
                    (", Inc.", " Incorporated"),
                    (" S.A.", " SA"),
                    (" Ltd.", " Limited"),
                ] {
                    if base.contains(from) {
                        return base.replace(from, to);
                    }
                }
                format!("{base} Ltd.")
            }
            VariantStrategy::NonPrintableInsertion => {
                let mut out = String::new();
                let insert_at = base.chars().count() / 2;
                for (i, c) in base.chars().enumerate() {
                    if i == insert_at {
                        out.push('\u{A0}');
                    }
                    out.push(c);
                }
                out
            }
            VariantStrategy::WhitespaceVariant => {
                if base.contains(' ') {
                    let repl = crate::pick(rng, &['\u{3000}', '\u{2009}', '\u{2002}']);
                    base.replacen(' ', &repl.to_string(), 1)
                } else {
                    format!("{base}\u{3000}")
                }
            }
            VariantStrategy::ResemblingSubstitution => {
                let subs = [('-', '\u{2013}'), ('\'', '\u{2019}'), ('.', '\u{2024}'), ('o', '\u{43E}')];
                for (from, to) in subs {
                    if base.contains(from) {
                        return base.replacen(from, &to.to_string(), 1);
                    }
                }
                format!("{base}\u{2122}")
            }
            VariantStrategy::IllegalCharReplacement => {
                // Replace the first non-ASCII character with U+FFFD, as a
                // mis-transcoding Teletex pipeline would.
                match base.chars().position(|c| !c.is_ascii()) {
                    Some(i) => base
                        .chars()
                        .enumerate()
                        .map(|(j, c)| if j == i { '\u{FFFD}' } else { c })
                        .collect(),
                    None => base.replacen('a', "\u{FFFD}", 1),
                }
            }
        }
    }
}

/// A generated variant pair.
#[derive(Debug, Clone)]
pub struct VariantPair {
    /// The strategy used.
    pub strategy: VariantStrategy,
    /// The base value.
    pub base: String,
    /// The variant.
    pub variant: String,
}

/// Generate `n` variant pairs per strategy over a pool of base values.
pub fn generate_pairs(rng: &mut impl Rng, bases: &[&str], n: usize) -> Vec<VariantPair> {
    let mut out = Vec::new();
    for strategy in VariantStrategy::ALL {
        for _ in 0..n {
            let base = crate::pick(rng, bases);
            let variant = strategy.apply(base, rng);
            out.push(VariantPair { strategy, base: base.to_string(), variant });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn variants_differ_from_base() {
        let mut rng = SmallRng::seed_from_u64(6);
        let bases = ["Samco Autotechnik GmbH", "Störi AG", "株式会社 中国銀行", "EDP - Energias"];
        for pair in generate_pairs(&mut rng, &bases, 5) {
            assert_ne!(pair.base, pair.variant, "{:?}", pair.strategy);
        }
    }

    #[test]
    fn case_variants_casefold_equal() {
        let mut rng = SmallRng::seed_from_u64(7);
        let v = VariantStrategy::CaseConversion.apply("Samco Autotechnik GmbH", &mut rng);
        assert_eq!(v.to_lowercase(), "samco autotechnik gmbh");
    }

    #[test]
    fn paper_examples_reproduce() {
        let mut rng = SmallRng::seed_from_u64(8);
        // Peddy Shield + NBSP.
        let v = VariantStrategy::NonPrintableInsertion.apply("Peddy Shield", &mut rng);
        assert!(v.contains('\u{A0}'));
        // 株式会社 中国銀行 with ideographic space.
        let v = VariantStrategy::WhitespaceVariant.apply("株式会社 中国銀行", &mut rng);
        assert!(!v.contains(' ') || v.contains('\u{3000}') || v.contains('\u{2009}') || v.contains('\u{2002}'));
        // Störi AG → St�ri AG.
        let v = VariantStrategy::IllegalCharReplacement.apply("Störi AG", &mut rng);
        assert_eq!(v, "St\u{FFFD}ri AG");
    }

    #[test]
    fn strategies_cover_table_3() {
        assert_eq!(VariantStrategy::ALL.len(), 6);
        let labels: Vec<_> = VariantStrategy::ALL.iter().map(|s| s.label()).collect();
        assert!(labels.contains(&"Character case conversion"));
        assert!(labels.contains(&"Replacement of illegal characters"));
    }
}
