//! Trust-store construction for the synthetic CA population: self-signed
//! CA certificates (one per issuer organization) with their simulated
//! keys, enabling the §5.1 chain-reconstruction methodology end to end.

use crate::issuers::{population, IssuerProfile};
use unicert_asn1::oid::known;
use unicert_asn1::{DateTime, StringKind};
use unicert_x509::chain::{self, TrustStore};
use unicert_x509::{Certificate, DistinguishedName, SimKey};

/// The issuer DN the corpus generator signs leaves under (must match
/// `CorpusGenerator::issuer_dn`).
pub fn issuer_dn(profile: &IssuerProfile) -> DistinguishedName {
    let ca_cn = format!("{} Unicert CA", profile.org_name);
    DistinguishedName::from_attributes(&[
        (known::country_name(), StringKind::Printable, profile.region),
        (known::organization_name(), StringKind::Utf8, profile.org_name),
        (known::common_name(), StringKind::Utf8, ca_cn.as_str()),
    ])
}

/// The self-signed CA certificate for one issuer.
pub fn ca_certificate(profile: &IssuerProfile) -> (Certificate, SimKey) {
    let key = SimKey::from_seed(profile.org_name);
    let cert = chain::self_signed_ca(
        issuer_dn(profile),
        &key,
        DateTime {
            year: profile.active.0.max(2004),
            month: 1,
            day: 1,
            hour: 0,
            minute: 0,
            second: 0,
        },
        // CA certs outlive their leaves comfortably.
        30 * 365,
    );
    (cert, key)
}

/// A trust store covering the whole issuer population.
pub fn build_trust_store() -> TrustStore {
    let mut store = TrustStore::new();
    for profile in population() {
        let (cert, key) = ca_certificate(&profile);
        store.add_ca(cert, key);
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, CorpusGenerator};

    #[test]
    fn store_covers_population() {
        let store = build_trust_store();
        assert_eq!(store.len(), population().len());
    }

    #[test]
    fn every_corpus_leaf_chains_and_verifies() {
        let store = build_trust_store();
        for entry in CorpusGenerator::new(CorpusConfig {
            size: 400,
            seed: 17,
            precert_fraction: 0.0,
            latent_defects: false,
        }) {
            let at = entry.cert.tbs.validity.not_before.plus_days(1);
            store
                .verify_leaf(&entry.cert, &at)
                .unwrap_or_else(|e| panic!("{}: {e:?}", entry.meta.issuer_org));
            let chain = store.build_chain(&entry.cert).unwrap();
            assert_eq!(chain.len(), 2);
            // The CA end of the chain is self-signed.
            assert_eq!(chain[1].tbs.issuer, chain[1].tbs.subject);
        }
    }

    #[test]
    fn tampered_leaf_fails_chain_verification() {
        let store = build_trust_store();
        let entry = CorpusGenerator::new(CorpusConfig {
            size: 1,
            seed: 17,
            precert_fraction: 0.0,
            latent_defects: false,
        })
        .next()
        .unwrap();
        let mut der = entry.cert.raw.clone();
        // Flip a byte inside the TBS (the serial region is near the front).
        der[10] ^= 0x01;
        if let Ok(tampered) = unicert_x509::Certificate::parse_der(&der) {
            let at = tampered.tbs.validity.not_before.plus_days(1);
            assert!(store.verify_leaf(&tampered, &at).is_err());
        }
    }
}
