//! The issuer population model, calibrated to §4.2 and Table 2.
//!
//! Volume shares reproduce the oligopoly ("Let's Encrypt" 25.1M of 34.8M
//! Unicerts, COMODO 4.8M, cPanel 1.3M — 89.4% of issuance from three
//! organizations) and the per-issuer noncompliance rates of Table 2
//! (Česká pošta 96.39%, Symantec 51.47%, …, Let's Encrypt 0.06%).

/// Trust status, as rendered in Table 2 (●/◐/○).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrustStatus {
    /// Publicly trusted (●).
    Public,
    /// Trusted in specific regions or scenarios (◐).
    Regional,
    /// Not trusted (○).
    Untrusted,
}

/// What kind of content an issuer puts in Unicerts, constraining which
/// defects it can produce (§4.3.2: automated DV issuers like Let's Encrypt
/// permit only DNSNames, so their noncompliance is all IDN-related).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssuancePolicy {
    /// Only IDN DNSNames; no customizable subject fields.
    IdnOnly,
    /// Full subject customization (multilingual O/CN/L/…).
    FullSubject,
}

/// One issuer organization.
#[derive(Debug, Clone)]
pub struct IssuerProfile {
    /// IssuerOrganizationName.
    pub org_name: &'static str,
    /// ISO region code as in Table 2.
    pub region: &'static str,
    /// Trust status.
    pub trust: TrustStatus,
    /// Share of total Unicert issuance (normalized over the table).
    pub share: f64,
    /// Fraction of this issuer's Unicerts that are noncompliant
    /// (Table 2's "Noncompliant" percentage).
    pub nc_rate: f64,
    /// Issuance policy.
    pub policy: IssuancePolicy,
    /// First and last year of activity (inclusive), bounding the Fig. 2
    /// trend contribution.
    pub active: (i32, i32),
    /// The subject-script pool this issuer serves (indexes into
    /// `subjects::SCRIPT_POOLS`), reproducing the Fig. 4 issuer×field
    /// pattern of region-specific scripts.
    pub script: &'static str,
}

/// The issuer population. Shares are relative weights (they need not sum
/// to 1; the generator normalizes).
pub fn population() -> Vec<IssuerProfile> {
    use IssuancePolicy::*;
    use TrustStatus::*;
    vec![
        // The top-3 oligopoly (89.4% of issuance).
        IssuerProfile { org_name: "Let's Encrypt", region: "US", trust: Public, share: 0.721, nc_rate: 0.0006, policy: IdnOnly, active: (2015, 2025), script: "latin" },
        IssuerProfile { org_name: "COMODO CA Limited", region: "GB", trust: Public, share: 0.138, nc_rate: 0.0025, policy: FullSubject, active: (2013, 2018), script: "latin" },
        IssuerProfile { org_name: "cPanel, Inc.", region: "US", trust: Public, share: 0.037, nc_rate: 0.0008, policy: IdnOnly, active: (2016, 2025), script: "latin" },
        // Mid-size trusted issuers.
        IssuerProfile { org_name: "DigiCert Inc", region: "US", trust: Public, share: 0.0146, nc_rate: 0.034, policy: FullSubject, active: (2013, 2025), script: "latin" },
        IssuerProfile { org_name: "ZeroSSL", region: "AT", trust: Public, share: 0.0127, nc_rate: 0.0253, policy: IdnOnly, active: (2020, 2025), script: "latin" },
        IssuerProfile { org_name: "GEANT Vereniging", region: "NL", trust: Public, share: 0.0062, nc_rate: 0.004, policy: FullSubject, active: (2015, 2025), script: "latin" },
        IssuerProfile { org_name: "Cloudflare, Inc.", region: "US", trust: Public, share: 0.006, nc_rate: 0.0004, policy: IdnOnly, active: (2014, 2025), script: "latin" },
        IssuerProfile { org_name: "Amazon", region: "US", trust: Public, share: 0.006, nc_rate: 0.0004, policy: IdnOnly, active: (2015, 2025), script: "latin" },
        // Table 2's high-noncompliance issuers.
        IssuerProfile { org_name: "Česká pošta, s.p.", region: "CZ", trust: Untrusted, share: 0.00068, nc_rate: 0.9639, policy: FullSubject, active: (2013, 2020), script: "czech" },
        IssuerProfile { org_name: "Symantec Corporation", region: "US", trust: Public, share: 0.00101, nc_rate: 0.5147, policy: FullSubject, active: (2013, 2018), script: "latin" },
        IssuerProfile { org_name: "Dreamcommerce S.A.", region: "PL", trust: Regional, share: 0.00111, nc_rate: 0.4483, policy: FullSubject, active: (2014, 2022), script: "polish" },
        IssuerProfile { org_name: "StartCom Ltd.", region: "IL", trust: Public, share: 0.00056, nc_rate: 0.7297, policy: FullSubject, active: (2013, 2017), script: "latin" },
        IssuerProfile { org_name: "Government of Korea", region: "KR", trust: Untrusted, share: 0.00034, nc_rate: 0.8733, policy: FullSubject, active: (2013, 2019), script: "korean" },
        IssuerProfile { org_name: "VeriSign, Inc.", region: "US", trust: Public, share: 0.00037, nc_rate: 0.5912, policy: FullSubject, active: (2013, 2015), script: "latin" },
        // Regional issuers with localized scripts (Fig. 4's long tail).
        IssuerProfile { org_name: "DOMENY.PL sp. z o.o.", region: "PL", trust: Regional, share: 0.0014, nc_rate: 0.012, policy: FullSubject, active: (2014, 2023), script: "polish" },
        IssuerProfile { org_name: "IPS CA", region: "ES", trust: Untrusted, share: 0.0002, nc_rate: 0.41, policy: FullSubject, active: (2013, 2016), script: "latin" },
        IssuerProfile { org_name: "Thawte Consulting", region: "ZA", trust: Public, share: 0.0003, nc_rate: 0.33, policy: FullSubject, active: (2013, 2017), script: "latin" },
        IssuerProfile { org_name: "SECOM Trust Systems", region: "JP", trust: Public, share: 0.0018, nc_rate: 0.02, policy: FullSubject, active: (2013, 2025), script: "japanese" },
        IssuerProfile { org_name: "Beijing CA", region: "CN", trust: Regional, share: 0.0012, nc_rate: 0.06, policy: FullSubject, active: (2014, 2025), script: "chinese" },
        IssuerProfile { org_name: "TurkTrust", region: "TR", trust: Regional, share: 0.0008, nc_rate: 0.05, policy: FullSubject, active: (2013, 2022), script: "turkish" },
        IssuerProfile { org_name: "Russian Federal CA", region: "RU", trust: Untrusted, share: 0.0009, nc_rate: 0.09, policy: FullSubject, active: (2015, 2025), script: "cyrillic" },
        IssuerProfile { org_name: "Sectigo Limited", region: "GB", trust: Public, share: 0.02, nc_rate: 0.002, policy: FullSubject, active: (2018, 2025), script: "latin" },
        IssuerProfile { org_name: "GlobalSign nv-sa", region: "BE", trust: Public, share: 0.008, nc_rate: 0.003, policy: FullSubject, active: (2013, 2025), script: "latin" },
        IssuerProfile { org_name: "GoDaddy.com, Inc.", region: "US", trust: Public, share: 0.007, nc_rate: 0.002, policy: FullSubject, active: (2013, 2025), script: "latin" },
        IssuerProfile { org_name: "Telekom Security", region: "DE", trust: Public, share: 0.003, nc_rate: 0.008, policy: FullSubject, active: (2013, 2025), script: "german" },
        // Aggregates standing in for the long tail of 698 organizations
        // (§4.3: 65.3% of noncompliant Unicerts came from publicly trusted
        // CAs and 21.1% from limited-trust providers — most of that mass
        // lives in Table 2's "Other" row, 103K NC certs at 0.29%).
        IssuerProfile { org_name: "Other trusted CAs (aggregate)", region: "EU", trust: Public, share: 0.060, nc_rate: 0.028, policy: FullSubject, active: (2013, 2025), script: "german" },
        IssuerProfile { org_name: "Regional CAs (aggregate)", region: "AP", trust: Regional, share: 0.008, nc_rate: 0.11, policy: FullSubject, active: (2013, 2025), script: "japanese" },
    ]
}

/// Is the issuer a "trusted" issuer for the §4.2 trusted-share statistic
/// (public or regional trust at issuance time)?
pub fn counts_as_trusted(trust: TrustStatus) -> bool {
    trust == TrustStatus::Public
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oligopoly_shape() {
        let pop = population();
        let total: f64 = pop.iter().map(|p| p.share).sum();
        let top3: f64 = pop.iter().take(3).map(|p| p.share).sum();
        // Paper: 89.4%. The long-tail aggregates (which stand for hundreds
        // of distinct organizations) dilute the normalized number slightly.
        assert!(top3 / total > 0.80, "top3 share {}", top3 / total);
        // Let's Encrypt dominates.
        assert!(pop[0].share / total > 0.65);
    }

    #[test]
    fn table_2_rates_present() {
        let pop = population();
        let get = |name: &str| pop.iter().find(|p| p.org_name == name).unwrap();
        assert!((get("Česká pošta, s.p.").nc_rate - 0.9639).abs() < 1e-9);
        assert!((get("Let's Encrypt").nc_rate - 0.0006).abs() < 1e-9);
        assert!(get("Government of Korea").nc_rate > 0.8);
    }

    #[test]
    fn idn_only_issuers_marked() {
        let pop = population();
        for name in ["Let's Encrypt", "Cloudflare, Inc.", "Amazon"] {
            let p = pop.iter().find(|p| p.org_name == name).unwrap();
            assert_eq!(p.policy, IssuancePolicy::IdnOnly, "{name}");
        }
    }
}
