//! Chunked corpus iteration — the shard substrate of the parallel survey
//! pipeline.
//!
//! The survey engine partitions a corpus stream into deterministic,
//! index-stamped chunks. Chunk boundaries depend only on `chunk_size` and
//! the order of the underlying stream, never on timing or thread count, so
//! a sharded consumer that merges per-chunk results *in chunk order*
//! reproduces the single-pass result exactly (see DESIGN.md §7).

use crate::generator::{CorpusConfig, CorpusEntry, CorpusGenerator};

/// One shard of a corpus stream: `index` is its 0-based position in the
/// stream, `entries` the consecutive run of corpus entries it covers.
#[derive(Debug, Clone)]
pub struct CorpusChunk {
    /// 0-based position of this chunk in the stream.
    pub index: usize,
    /// The chunk's entries, in stream order.
    pub entries: Vec<CorpusEntry>,
}

/// Iterator adapter grouping a corpus stream into [`CorpusChunk`]s.
///
/// Every chunk except possibly the last holds exactly `chunk_size` entries.
#[derive(Debug)]
pub struct Chunks<I> {
    inner: I,
    chunk_size: usize,
    next_index: usize,
}

impl<I: Iterator<Item = CorpusEntry>> Chunks<I> {
    /// Group `inner` into chunks of `chunk_size` (clamped to at least 1).
    pub fn new(inner: I, chunk_size: usize) -> Chunks<I> {
        Chunks { inner, chunk_size: chunk_size.max(1), next_index: 0 }
    }
}

impl<I: Iterator<Item = CorpusEntry>> Iterator for Chunks<I> {
    type Item = CorpusChunk;

    fn next(&mut self) -> Option<CorpusChunk> {
        let mut entries = Vec::with_capacity(self.chunk_size);
        for entry in self.inner.by_ref() {
            entries.push(entry);
            if entries.len() == self.chunk_size {
                break;
            }
        }
        if entries.is_empty() {
            return None;
        }
        let index = self.next_index;
        self.next_index += 1;
        Some(CorpusChunk { index, entries })
    }
}

/// Extension trait putting `.chunked(n)` on every corpus stream.
pub trait IntoChunks: Iterator<Item = CorpusEntry> + Sized {
    /// Group this stream into index-stamped chunks of `chunk_size`.
    fn chunked(self, chunk_size: usize) -> Chunks<Self> {
        Chunks::new(self, chunk_size)
    }
}

impl<I: Iterator<Item = CorpusEntry> + Sized> IntoChunks for I {}

impl CorpusGenerator {
    /// Generate the whole corpus as index-stamped chunks — the cheap-shard
    /// entry point used by the parallel survey pipeline.
    pub fn chunks(config: CorpusConfig, chunk_size: usize) -> Chunks<CorpusGenerator> {
        Chunks::new(CorpusGenerator::new(config), chunk_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(size: usize) -> CorpusConfig {
        CorpusConfig { size, seed: 5, precert_fraction: 0.25, ..Default::default() }
    }

    #[test]
    fn chunks_cover_the_stream_in_order() {
        let whole: Vec<_> = CorpusGenerator::new(config(500)).collect();
        let chunks: Vec<_> = CorpusGenerator::chunks(config(500), 64).collect();
        assert!(chunks.len() > 1);
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        let reassembled: Vec<_> = chunks.into_iter().flat_map(|c| c.entries).collect();
        assert_eq!(whole.len(), reassembled.len());
        for (a, b) in whole.iter().zip(&reassembled) {
            assert_eq!(a.cert.raw, b.cert.raw);
        }
    }

    #[test]
    fn chunk_sizes_are_uniform_except_last() {
        let chunks: Vec<_> = CorpusGenerator::chunks(config(300), 50).collect();
        for c in &chunks[..chunks.len() - 1] {
            assert_eq!(c.entries.len(), 50);
        }
        assert!(chunks.last().is_some_and(|c| !c.entries.is_empty() && c.entries.len() <= 50));
    }

    #[test]
    fn zero_chunk_size_is_clamped() {
        let chunks: Vec<_> = CorpusGenerator::chunks(config(3), 0).collect();
        assert!(chunks.iter().all(|c| c.entries.len() == 1));
    }
}
