//! CLI entry point: run the static-analysis passes over the repository.
//!
//! ```text
//! unicert-analysis [--root <path>] [--pass <name>]... [--format tsv|json]
//!                  [--out <file|->] [--tsv <file|->]
//! ```
//!
//! Passes: `catalog`, `source`, `determinism`, `alloc`, `recursion`,
//! `layering` (default: all). Human diagnostics go to stderr; the
//! machine-readable report (TSV by default, SARIF-lite JSON with
//! `--format json`) goes to `--out` (default stdout). `--tsv <f>` is the
//! legacy spelling of `--format tsv --out <f>`. Exit code 0 when every
//! invariant holds, 1 on violations, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;
use unicert_analysis::engine::Pass;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut out_target = String::from("-");
    let mut format = String::from("tsv");
    let mut passes: Vec<Pass> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--tsv" => match args.next() {
                Some(p) => {
                    format = "tsv".to_string();
                    out_target = p;
                }
                None => return usage("--tsv needs a file path or '-'"),
            },
            "--out" => match args.next() {
                Some(p) => out_target = p,
                None => return usage("--out needs a file path or '-'"),
            },
            "--format" => match args.next().as_deref() {
                Some("tsv") => format = "tsv".to_string(),
                Some("json") => format = "json".to_string(),
                _ => return usage("--format must be 'tsv' or 'json'"),
            },
            "--pass" => match args.next().as_deref().and_then(Pass::from_name) {
                Some(p) => passes.push(p),
                None => {
                    return usage(
                        "--pass must be one of catalog|source|determinism|alloc|recursion|layering",
                    )
                }
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    if passes.is_empty() {
        passes.extend(Pass::ALL);
    }

    let root = root.unwrap_or_else(unicert_analysis::default_repo_root);
    let violations = unicert_analysis::engine::run_passes(&root, &passes);

    let rendered = match format.as_str() {
        "json" => unicert_analysis::report::json_report(&violations),
        _ => unicert_analysis::tsv_report(&violations),
    };
    if out_target == "-" {
        print!("{rendered}");
    } else if let Err(e) = std::fs::write(&out_target, &rendered) {
        eprintln!("unicert-analysis: cannot write {out_target}: {e}");
        return ExitCode::from(2);
    }
    eprint!("{}", unicert_analysis::human_report(&violations));

    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

const USAGE: &str = "usage: unicert-analysis [--root <path>] [--pass <name>]... \
[--format tsv|json] [--out <file|->] [--tsv <file|->]\n\
passes: catalog source determinism alloc recursion layering (default: all)";

fn usage(msg: &str) -> ExitCode {
    eprintln!("unicert-analysis: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}
