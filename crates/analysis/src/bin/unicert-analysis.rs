//! CLI entry point: run both static-analysis passes over the repository.
//!
//! ```text
//! unicert-analysis [--root <path>] [--tsv <file|->] [--pass catalog|source]
//! ```
//!
//! Human diagnostics go to stderr; the TSV report goes to `--tsv` (default
//! stdout). Exit code 0 when every invariant holds, 1 on violations, 2 on
//! usage errors.

use std::path::PathBuf;
use std::process::ExitCode;
use unicert_analysis::{audit, catalog, workspace_crate_roots};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut tsv_target = String::from("-");
    let mut pass_filter: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--tsv" => match args.next() {
                Some(p) => tsv_target = p,
                None => return usage("--tsv needs a file path or '-'"),
            },
            "--pass" => match args.next() {
                Some(p) if p == "catalog" || p == "source" => pass_filter = Some(p),
                _ => return usage("--pass must be 'catalog' or 'source'"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: unicert-analysis [--root <path>] [--tsv <file|->] [--pass catalog|source]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let root = root.unwrap_or_else(unicert_analysis::default_repo_root);
    let mut violations = Vec::new();
    if pass_filter.as_deref() != Some("source") {
        violations.extend(catalog::run());
    }
    if pass_filter.as_deref() != Some("catalog") {
        violations.extend(audit::run(&root));
        violations.extend(audit::check_unsafe_attrs(&root, &workspace_crate_roots(&root)));
    }

    let tsv = unicert_analysis::tsv_report(&violations);
    if tsv_target == "-" {
        print!("{tsv}");
    } else if let Err(e) = std::fs::write(&tsv_target, &tsv) {
        eprintln!("unicert-analysis: cannot write {tsv_target}: {e}");
        return ExitCode::from(2);
    }
    eprint!("{}", unicert_analysis::human_report(&violations));

    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("unicert-analysis: {msg}");
    eprintln!("usage: unicert-analysis [--root <path>] [--tsv <file|->] [--pass catalog|source]");
    ExitCode::from(2)
}
