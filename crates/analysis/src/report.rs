//! Machine-readable findings reports.
//!
//! The JSON report follows a SARIF-lite shape — `tool` / `results` with
//! `ruleId`, `level`, `message.text`, and `physicalLocation` — so CI can
//! upload it as an artifact and downstream tooling can diff runs without
//! parsing TSV. Violation order is the engine's deterministic pass/file
//! order, so two runs over the same tree produce byte-identical reports.

use crate::Violation;

/// Render violations as a SARIF-lite JSON report.
pub fn json_report(violations: &[Violation]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"tool\": { \"name\": \"unicert-analysis\", \"version\": \"");
    out.push_str(env!("CARGO_PKG_VERSION"));
    out.push_str("\" },\n");

    // Summary: total + per-pass counts (deterministic order).
    let mut passes: Vec<&str> = violations.iter().map(|v| v.pass).collect();
    passes.sort_unstable();
    passes.dedup();
    out.push_str("  \"summary\": { \"violations\": ");
    out.push_str(&violations.len().to_string());
    out.push_str(", \"by_pass\": {");
    for (i, pass) in passes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let count = violations.iter().filter(|v| v.pass == *pass).count();
        out.push_str(&format!(" \"{}\": {}", json_escape(pass), count));
    }
    out.push_str(" } },\n");

    out.push_str("  \"results\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    { \"ruleId\": \"");
        out.push_str(&json_escape(&format!("{}/{}", v.pass, v.rule)));
        out.push_str("\", \"level\": \"error\", \"message\": { \"text\": \"");
        out.push_str(&json_escape(&v.message));
        out.push_str("\" }, \"locations\": [ { \"physicalLocation\": ");
        let (uri, line) = split_location(&v.location);
        out.push_str("{ \"artifactLocation\": { \"uri\": \"");
        out.push_str(&json_escape(uri));
        out.push_str("\" }");
        if let Some(line) = line {
            out.push_str(&format!(", \"region\": {{ \"startLine\": {line} }}"));
        }
        out.push_str(" } } ] }");
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Split a `path:line` location; catalog locations (lint names) have no
/// numeric suffix and map to a bare artifact URI.
fn split_location(location: &str) -> (&str, Option<usize>) {
    if let Some((head, tail)) = location.rsplit_once(':') {
        if let Ok(line) = tail.parse::<usize>() {
            return (head, Some(line));
        }
    }
    (location, None)
}

/// Minimal JSON string escaping.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_and_escaping() {
        let violations = vec![Violation {
            pass: "determinism",
            rule: "clock",
            location: "crates/core/src/survey.rs:139".to_string(),
            message: "uses \"Instant::now\"".to_string(),
        }];
        let json = json_report(&violations);
        assert!(json.contains("\"ruleId\": \"determinism/clock\""));
        assert!(json.contains("\"uri\": \"crates/core/src/survey.rs\""));
        assert!(json.contains("\"startLine\": 139"));
        assert!(json.contains("uses \\\"Instant::now\\\""));
        assert!(json.contains("\"violations\": 1"));
    }

    #[test]
    fn empty_report_is_valid() {
        let json = json_report(&[]);
        assert!(json.contains("\"violations\": 0"));
        assert!(json.contains("\"results\": []"));
    }

    #[test]
    fn catalog_locations_have_no_region() {
        let violations = vec![Violation {
            pass: "catalog",
            rule: "total_count",
            location: "registry".to_string(),
            message: "drift".to_string(),
        }];
        let json = json_report(&violations);
        assert!(json.contains("\"uri\": \"registry\""));
        assert!(!json.contains("startLine"));
    }
}
