//! Pass 1 — the catalog meta-linter.
//!
//! The paper's lint catalog *is* the artifact: Table 1's counts, Table 11's
//! names, the severity/source/effective-date metadata. This pass
//! introspects the live registry through `unicert_lint`'s public API
//! ([`Registry::iter`] + the `Lint` metadata accessors) and verifies every
//! published invariant statically, so catalog drift fails the build instead
//! of silently corrupting downstream tables.

use crate::{Violation, PASS_CATALOG};
use std::collections::BTreeMap;
use unicert_asn1::DateTime;
use unicert_lint::{default_registry, NoncomplianceType, Registry, Severity, Source};

/// Table 1, transcribed: `(taxonomy, total, new)`.
pub const TABLE_1: [(NoncomplianceType, usize, usize); 6] = [
    (NoncomplianceType::InvalidCharacter, 22, 10),
    (NoncomplianceType::BadNormalization, 4, 3),
    (NoncomplianceType::IllegalFormat, 17, 0),
    (NoncomplianceType::InvalidEncoding, 48, 37),
    (NoncomplianceType::InvalidStructure, 2, 0),
    (NoncomplianceType::DiscouragedField, 2, 0),
];

/// Total lints and how many are newly derived (Table 1's bottom line).
pub const TOTAL_LINTS: usize = 95;
/// The paper's count of newly derived lints.
pub const NEW_LINTS: usize = 50;

/// Every lint named in Table 11 (the paper's per-lint finding counts).
pub const TABLE_11_NAMES: [&str; 25] = [
    "w_rfc_ext_cp_explicit_text_not_utf8",
    "w_cab_subject_common_name_not_in_san",
    "e_rfc_dns_idn_a2u_unpermitted_unichar",
    "e_subject_organization_not_printable_or_utf8",
    "e_subject_common_name_not_printable_or_utf8",
    "e_subject_locality_not_printable_or_utf8",
    "e_rfc_subject_dn_not_printable_characters",
    "e_subject_ou_not_printable_or_utf8",
    "e_subject_jurisdiction_locality_not_printable_or_utf8",
    "e_rfc_ext_cp_explicit_text_too_long",
    "e_subject_jurisdiction_state_not_printable_or_utf8",
    "e_rfc_ext_cp_explicit_text_ia5",
    "e_subject_jurisdiction_country_not_printable",
    "e_subject_state_not_printable_or_utf8",
    "e_rfc_subject_printable_string_badalpha",
    "w_community_subject_dn_trailing_whitespace",
    "e_subject_postal_code_not_printable_or_utf8",
    "e_subject_street_not_printable_or_utf8",
    "w_cab_subject_contain_extra_common_name",
    "e_subject_dn_serial_number_not_printable",
    "w_community_subject_dn_leading_whitespace",
    "e_rfc_subject_country_not_printable",
    "e_rfc_dns_idn_malformed_unicode",
    "e_cab_dns_bad_character_in_label",
    "e_ext_san_dns_contain_unpermitted_unichar",
];

/// Publication date of each source document — the earliest date a lint
/// citing it may become effective.
fn publication_date(source: Source) -> DateTime {
    let d = |y, m, day| {
        DateTime::date(y, m, day)
            .unwrap_or(DateTime { year: y, month: 1, day: 1, hour: 0, minute: 0, second: 0 })
    };
    match source {
        Source::Rfc5280 => d(2008, 5, 1),
        Source::Rfc6818 => d(2013, 1, 1),
        Source::Rfc8399 => d(2018, 5, 1),
        Source::Rfc9549 => d(2024, 3, 1), // RFC 9549 is dated March 2024
        Source::Rfc9598 => d(2024, 5, 1), // RFC 9598 is dated May 2024
        Source::Rfc1034 => d(1987, 11, 1),
        Source::Rfc5890 => d(2010, 8, 1),
        Source::Idna2008 => d(2010, 8, 1),
        Source::CabfBr => d(2011, 11, 22), // BR v1.0 adoption
        Source::Community => d(2012, 1, 1), // community-linter heritage
    }
}

/// Citation substrings accepted for each source. Empty list = any
/// non-empty citation (community heritage rules cite their origin freely).
fn citation_tokens(source: Source) -> &'static [&'static str] {
    match source {
        Source::Rfc5280 => &["RFC 5280"],
        Source::Rfc6818 => &["RFC 6818"],
        Source::Rfc8399 => &["RFC 8399"],
        Source::Rfc9549 => &["RFC 9549"],
        Source::Rfc9598 => &["RFC 9598"],
        Source::Rfc1034 => &["RFC 1034"],
        Source::Rfc5890 => &["RFC 5890", "RFC 5891", "RFC 5892", "RFC 3492"],
        Source::Idna2008 => &["RFC 5890", "RFC 5891", "RFC 5892", "RFC 5893", "IDNA"],
        Source::CabfBr => &["CABF", "BR §", "Baseline Requirements"],
        Source::Community => &[],
    }
}

/// Today in UTC, from the system clock (civil-from-days, Hinnant's
/// algorithm) — used only for the "no future effective dates" check.
pub fn today() -> DateTime {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    DateTime::date(y as i32, m as u8, d as u8)
        .unwrap_or(DateTime { year: 2026, month: 1, day: 1, hour: 0, minute: 0, second: 0 })
}

/// Run every catalog invariant against the default registry.
pub fn run() -> Vec<Violation> {
    run_on(&default_registry())
}

/// Run every catalog invariant against a given registry (tests inject
/// deliberately broken registries through this entry point).
pub fn run_on(registry: &Registry) -> Vec<Violation> {
    let mut violations = Vec::new();
    let v = |rule: &'static str, location: &str, message: String| Violation {
        pass: PASS_CATALOG,
        rule,
        location: location.to_string(),
        message,
    };

    // --- Counts: 95 total, 50 new (Table 1 bottom line). ---
    let total = registry.iter().count();
    let new_total = registry.iter().filter(|l| l.is_new()).count();
    if total != TOTAL_LINTS {
        violations.push(v(
            "total_count",
            "registry",
            format!("registry has {total} lints, paper catalog has {TOTAL_LINTS}"),
        ));
    }
    if new_total != NEW_LINTS {
        violations.push(v(
            "new_count",
            "registry",
            format!("registry marks {new_total} lints new, paper derives {NEW_LINTS}"),
        ));
    }

    // --- Per-taxonomy counts (Table 1 rows). ---
    let mut counts: BTreeMap<NoncomplianceType, (usize, usize)> = BTreeMap::new();
    for lint in registry.iter() {
        let e = counts.entry(lint.taxonomy()).or_insert((0, 0));
        e.0 += 1;
        if lint.is_new() {
            e.1 += 1;
        }
    }
    for (nc, want_all, want_new) in TABLE_1 {
        let (got_all, got_new) = counts.get(&nc).copied().unwrap_or((0, 0));
        if got_all != want_all || got_new != want_new {
            violations.push(v(
                "taxonomy_counts",
                nc.label(),
                format!(
                    "{}: registry has {got_all} lints ({got_new} new), Table 1 says {want_all} ({want_new} new)",
                    nc.label()
                ),
            ));
        }
    }

    // --- Names: unique, lowercase snake_case, severity-coded prefix. ---
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for lint in registry.iter() {
        *seen.entry(lint.name()).or_insert(0) += 1;
    }
    for (name, n) in seen {
        if n > 1 {
            violations.push(v("name_unique", name, format!("lint name registered {n} times")));
        }
    }
    for lint in registry.iter() {
        let name = lint.name();
        let snake = !name.is_empty()
            && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            && name.starts_with(|c: char| c.is_ascii_lowercase());
        if !snake {
            violations.push(v(
                "name_format",
                name,
                "lint names must be lowercase snake_case".to_string(),
            ));
        }
        let expected_prefix = match lint.severity() {
            Severity::Error => "e_",
            Severity::Warning => "w_",
        };
        if !name.starts_with(expected_prefix) {
            violations.push(v(
                "name_prefix",
                name,
                format!(
                    "severity {:?} requires the `{expected_prefix}` prefix (zlint convention)",
                    lint.severity()
                ),
            ));
        }
    }

    // --- Table 11 presence. ---
    for name in TABLE_11_NAMES {
        if !registry.iter().any(|l| l.name() == name) {
            violations.push(v(
                "table_11_presence",
                name,
                "lint named in Table 11 is missing from the registry".to_string(),
            ));
        }
    }

    // --- Citations: non-empty and consistent with the declared source. ---
    for lint in registry.iter() {
        let citation = lint.citation();
        if citation.trim().is_empty() {
            violations.push(v(
                "citation_nonempty",
                lint.name(),
                "lint has an empty citation".to_string(),
            ));
            continue;
        }
        let tokens = citation_tokens(lint.source());
        if !tokens.is_empty() && !tokens.iter().any(|t| citation.contains(t)) {
            violations.push(v(
                "citation_source_match",
                lint.name(),
                format!(
                    "citation {citation:?} names none of {tokens:?} for source {}",
                    lint.source().label()
                ),
            ));
        }
    }

    // --- Effective dates: well-formed, ≥ publication, not in the future. ---
    let now = today();
    for lint in registry.iter() {
        let eff = lint.effective_date();
        let round_trip = DateTime::from_generalized(eff.to_generalized_string().as_bytes());
        if round_trip != Ok(eff) {
            violations.push(v(
                "effective_date_valid",
                lint.name(),
                format!("effective date {eff:?} does not survive a DER round-trip"),
            ));
        }
        let published = publication_date(lint.source());
        if eff < published {
            violations.push(v(
                "effective_date_before_publication",
                lint.name(),
                format!(
                    "effective {} predates {}'s publication ({})",
                    eff.to_generalized_string(),
                    lint.source().label(),
                    published.to_generalized_string()
                ),
            ));
        }
        if eff > now {
            violations.push(v(
                "effective_date_future",
                lint.name(),
                format!("effective {} is in the future", eff.to_generalized_string()),
            ));
        }
    }

    // --- Severity ↔ requirement-language sanity. ---
    for lint in registry.iter() {
        let words: Vec<String> = lint
            .description()
            .split(|c: char| !c.is_ascii_alphabetic())
            .map(|w| w.to_ascii_lowercase())
            .collect();
        let has_must = words.iter().any(|w| w == "must");
        let has_should = words.iter().any(|w| w == "should");
        match (has_must, has_should) {
            (true, false) if lint.severity() != Severity::Error => {
                violations.push(v(
                    "must_severity",
                    lint.name(),
                    "description states a MUST requirement but severity is Warning".to_string(),
                ));
            }
            (false, true) if lint.severity() != Severity::Warning => {
                violations.push(v(
                    "should_severity",
                    lint.name(),
                    "description states a SHOULD requirement but severity is Error".to_string(),
                ));
            }
            _ => {}
        }
    }

    violations
}
