//! A small, dependency-free lexical pass over Rust source.
//!
//! The panic-safety audit must not fire inside comments, string literals,
//! or `#[cfg(test)]` modules, and must be able to read trailing
//! `// analysis:allow(...)` annotations. A full parser is overkill; this
//! module does one char-level sweep that classifies every byte as code,
//! comment, or literal, preserving line structure.

/// One source line after lexical classification.
#[derive(Debug, Clone)]
pub struct LexedLine {
    /// 1-based line number.
    pub number: usize,
    /// The line's code content with comments removed and the *interiors*
    /// of string/char literals blanked to spaces (delimiters retained, so
    /// column positions are stable and `"` still marks a literal edge).
    pub code: String,
    /// Text of the trailing `//` comment, if any (without the `//`).
    pub line_comment: Option<String>,
    /// Is this line inside a `#[cfg(test)]`-gated item?
    pub in_test_code: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Lex a whole file into classified lines.
pub fn lex(source: &str) -> Vec<LexedLine> {
    let mut lines = Vec::new();
    let mut state = State::Code;

    for (idx, raw_line) in source.lines().enumerate() {
        let mut code = String::with_capacity(raw_line.len());
        let mut comment: Option<String> = None;
        let chars: Vec<char> = raw_line.chars().collect();
        let mut i = 0;

        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        comment = Some(chars[i + 2..].iter().collect());
                        i = chars.len();
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    'r' if matches!(next, Some('"' | '#'))
                        && raw_string_hashes(&chars, i).is_some() =>
                    {
                        // Defensive: the is_some() guard above means the
                        // unwrap_or below cannot actually miss.
                        let hashes = raw_string_hashes(&chars, i).unwrap_or(0);
                        state = State::RawStr(hashes);
                        code.push('"');
                        i += 2 + hashes as usize;
                        continue;
                    }
                    '"' => {
                        state = State::Str;
                        code.push('"');
                    }
                    '\'' => {
                        // Char literal vs lifetime: a lifetime is `'ident`
                        // not followed by a closing quote.
                        if is_char_literal(&chars, i) {
                            state = State::Char;
                        }
                        code.push('\'');
                    }
                    _ => code.push(c),
                },
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth > 1 {
                            State::BlockComment(depth - 1)
                        } else {
                            State::Code
                        };
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    code.push(' ');
                }
                State::Str => match c {
                    '\\' => {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = State::Code;
                        code.push('"');
                    }
                    _ => code.push(' '),
                },
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        state = State::Code;
                        code.push('"');
                        i += 1 + hashes as usize;
                        continue;
                    }
                    code.push(' ');
                }
                State::Char => match c {
                    '\\' => {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                    '\'' => {
                        state = State::Code;
                        code.push('\'');
                    }
                    _ => code.push(' '),
                },
            }
            i += 1;
        }

        // Char literals cannot span lines; plain and raw strings can, so
        // those states persist into the next line.
        if state == State::Char {
            state = State::Code;
        }

        lines.push(LexedLine {
            number: idx + 1,
            code,
            line_comment: comment,
            in_test_code: false,
        });
    }

    mark_test_regions(&mut lines);
    lines
}

/// `r`, `r#`, `r##`… introducing a raw string at `chars[i]`: number of `#`s.
fn raw_string_hashes(chars: &[char], i: usize) -> Option<u32> {
    debug_assert_eq!(chars[i], 'r');
    let mut j = i + 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Does the `"` at `chars[i]` end a raw string with `hashes` trailing `#`s?
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguish `'a'` / `'\n'` from the lifetime `'a` at `chars[i] == '\''`.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(&c) => {
            if chars.get(i + 2) == Some(&'\'') {
                true
            } else {
                // Multi-char sequences like 'static are lifetimes.
                !(c.is_alphanumeric() || c == '_')
            }
        }
        None => false,
    }
}

/// Flag every line belonging to a `#[cfg(test)]`-gated item, by tracking
/// the brace range of the item that follows the attribute.
fn mark_test_regions(lines: &mut [LexedLine]) {
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            // Find the opening brace of the gated item, then its close.
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                for c in lines[j].code.clone().chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                lines[j].in_test_code = true;
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = r#"
let a = "unwrap() in string"; // unwrap() in comment
let b = x.unwrap(); /* block
still comment .unwrap() */ let c = 1;
"#;
        let lines = lex(src);
        assert!(!lines[1].code.contains("unwrap"));
        assert_eq!(lines[1].line_comment.as_deref(), Some(" unwrap() in comment"));
        assert!(lines[2].code.contains(".unwrap()"));
        assert!(!lines[3].code.contains("unwrap"));
        assert!(lines[3].code.contains("let c = 1;"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_real() {}\n";
        let lines = lex(src);
        assert!(!lines[0].in_test_code);
        assert!(lines[1].in_test_code);
        assert!(lines[3].in_test_code);
        assert!(!lines[5].in_test_code);
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let s = r#\"a \"quoted\" unwrap()\"#; let c = '\\''; let l: &'static str = s;\n";
        let lines = lex(src);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("&'static str"));
    }
}
