//! Pass 4 — the allocation-bound pass.
//!
//! PR 4 guaranteed that the ASN.1 reader never allocates past its
//! `ParseBudget`; this pass extends that guarantee's *shape* to every
//! crate: any `with_capacity`/`reserve`/`vec![…; n]`/`resize` whose size
//! expression derives from an unproven identifier — rather than a literal,
//! a `const`, the `.len()`/`.capacity()` of data already in memory, or an
//! expression visibly clamped by a budget/`min`/`clamp` bound — is flagged.
//! Attacker-declared lengths (DER length octets, counts parsed out of
//! input) must be clamped before they size an allocation.

use super::{balanced_paren_arg, is_ident_char, push};
use crate::config::AnalysisConfig;
use crate::model::Workspace;
use crate::{Finding, PASS_ALLOC};

/// Allocation sized by an unproven (potentially parsed-input) expression.
pub const RULE_UNBOUNDED_ALLOC: &str = "unbounded_alloc";

/// Substrings that prove an expression is clamped/budgeted.
const CLAMP_MARKERS: [&str; 6] = [".min(", "remaining", "budget", "Budget", ".clamp(", "MAX"];

/// Idents that never carry attacker-controlled magnitude on their own.
const NEUTRAL_IDENTS: [&str; 20] = [
    "as", "usize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128", "f32",
    "f64", "self", "Self", "true", "false", "std", "core",
];

/// Run the allocation-bound pass over every crate's library + bin sources.
pub fn run(ws: &Workspace, _cfg: &AnalysisConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for krate in ws.crates.iter().filter(|c| c.group == "crates") {
        for file in &krate.files {
            for line in &file.lines {
                if line.in_test_code {
                    continue;
                }
                scan_line(&line.code, &file.rel_path, line.number, &mut findings);
            }
        }
    }
    findings
}

fn scan_line(code: &str, file: &str, line: usize, out: &mut Vec<Finding>) {
    for callee in ["with_capacity", "reserve_exact", "reserve", "resize"] {
        let mut start = 0;
        while let Some(found) = code[start..].find(callee) {
            let at = start + found;
            let before_ok = at == 0
                || !code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(is_ident_char);
            let open = at + callee.len();
            start = open;
            if !before_ok || code.as_bytes().get(open) != Some(&b'(') {
                continue;
            }
            let Some(args) = balanced_paren_arg(code, open) else {
                continue;
            };
            // `resize(new_len, fill)` — only the first argument sizes.
            let size_expr = match callee {
                "resize" => top_level_first_arg(&args),
                _ => args.clone(),
            };
            if let Some(culprit) = unbounded_ident(&size_expr) {
                push(
                    out,
                    PASS_ALLOC,
                    RULE_UNBOUNDED_ALLOC,
                    file,
                    line,
                    format!(
                        "`{callee}({})` sizes an allocation from `{culprit}` with no visible \
                         ParseBudget/min/clamp bound — clamp parsed-input sizes first",
                        size_expr.trim()
                    ),
                );
            }
        }
    }
    // `vec![elem; n]` — the repeat count after the top-level `;`.
    let mut start = 0;
    while let Some(found) = code[start..].find("vec!") {
        let at = start + found;
        start = at + 4;
        let rest = &code[at + 4..];
        let (open_char, close_char) = match rest.chars().next() {
            Some('[') => ('[', ']'),
            Some('(') => ('(', ')'),
            _ => continue,
        };
        let mut depth = 0i32;
        let mut semi = None;
        let mut end = None;
        for (i, c) in rest.char_indices() {
            if c == open_char || c == '[' || c == '(' {
                depth += 1;
            } else if c == close_char || c == ']' || c == ')' {
                depth -= 1;
                if depth == 0 {
                    end = Some(i);
                    break;
                }
            } else if c == ';' && depth == 1 {
                semi = Some(i);
            }
        }
        if let (Some(semi), Some(end)) = (semi, end) {
            let count_expr = &rest[semi + 1..end];
            if let Some(culprit) = unbounded_ident(count_expr) {
                push(
                    out,
                    PASS_ALLOC,
                    RULE_UNBOUNDED_ALLOC,
                    file,
                    line,
                    format!(
                        "`vec![…; {}]` repeat count derives from `{culprit}` with no visible \
                         ParseBudget/min/clamp bound — clamp parsed-input sizes first",
                        count_expr.trim()
                    ),
                );
            }
        }
    }
}

/// First top-level (comma-split) argument of an argument list.
fn top_level_first_arg(args: &str) -> String {
    let mut depth = 0i32;
    for (i, c) in args.char_indices() {
        match c {
            '(' | '[' | '<' => depth += 1,
            ')' | ']' | '>' => depth -= 1,
            ',' if depth == 0 => return args[..i].to_string(),
            _ => {}
        }
    }
    args.to_string()
}

/// The first identifier in `expr` that is *not* provably bounded, if any.
///
/// Bounded means: a clamp marker appears anywhere in the expression; or the
/// identifier is a cast/primitive keyword, an ALL_CAPS const, a method name
/// (preceded by `.`), or the receiver of `.len()`/`.capacity()`/`.count()`
/// (sizes of data already in memory cannot exceed what was already read).
pub fn unbounded_ident(expr: &str) -> Option<String> {
    if CLAMP_MARKERS.iter().any(|m| expr.contains(m)) {
        return None;
    }
    let chars: Vec<char> = expr.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if !(chars[i].is_alphabetic() || chars[i] == '_') {
            // Skip numbers (and their suffixes) wholesale.
            if chars[i].is_ascii_digit() {
                while i < chars.len() && (is_ident_char(chars[i]) || chars[i] == '.') {
                    i += 1;
                }
                continue;
            }
            i += 1;
            continue;
        }
        let start = i;
        while i < chars.len() && is_ident_char(chars[i]) {
            i += 1;
        }
        let ident: String = chars[start..i].iter().collect();
        // Method / field position: preceded by `.` — the receiver decides.
        let preceded_by_dot = expr[..byte_offset(expr, start)]
            .trim_end()
            .ends_with('.');
        if preceded_by_dot {
            continue;
        }
        if NEUTRAL_IDENTS.contains(&ident.as_str()) {
            continue;
        }
        if ident
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        {
            continue; // const
        }
        // Receiver of an in-memory-size call? Walk the field-access chain:
        // `krate.files.len()` is as bounded as `files.len()`.
        let mut after = &expr[byte_offset(expr, i)..];
        // Path segment: `mem::size_of` style — the tail decides.
        let mut is_size_receiver = after.starts_with("::");
        while !is_size_receiver {
            if [".len()", ".capacity()", ".count()"]
                .iter()
                .any(|m| after.starts_with(m))
            {
                is_size_receiver = true;
                break;
            }
            let Some(rest) = after.strip_prefix('.') else {
                break;
            };
            let seg: usize = rest
                .chars()
                .take_while(|c| is_ident_char(*c))
                .map(char::len_utf8)
                .sum();
            // Only plain `.field` hops: a mid-chain call yields an
            // unknown value, so stop and flag.
            if seg == 0 || rest[seg..].starts_with('(') {
                break;
            }
            after = &rest[seg..];
        }
        if is_size_receiver {
            continue;
        }
        return Some(ident);
    }
    None
}

/// Byte offset of char index `ci` in `s`.
fn byte_offset(s: &str, ci: usize) -> usize {
    s.char_indices()
        .nth(ci)
        .map(|(b, _)| b)
        .unwrap_or(s.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workspace;

    fn findings(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_sources(&[("asn1", "crates/asn1/src/reader.rs", src)]);
        run(&ws, &AnalysisConfig::default())
    }

    #[test]
    fn len_derived_capacity_is_bounded() {
        assert!(findings("let v = Vec::with_capacity(der.len() + 8);\n").is_empty());
        assert!(findings("let s = String::with_capacity(text.len() * 3 / 4);\n").is_empty());
        // Field chains ending in a size call are equally bounded…
        assert!(findings("let v = vec![0u8; krate.files.len()];\n").is_empty());
        // …but a mid-chain method call yields an unknown value.
        let f = findings("let v = vec![0u8; hdr.declared().0];\n");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn const_and_literal_are_bounded() {
        assert!(findings("let v = Vec::with_capacity(SHARD_COUNT);\n").is_empty());
        assert!(findings("let v = Vec::with_capacity(95);\n").is_empty());
    }

    #[test]
    fn parsed_length_is_flagged() {
        let f = findings("let v = Vec::with_capacity(declared_len);\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_UNBOUNDED_ALLOC);
    }

    #[test]
    fn clamped_length_is_bounded() {
        assert!(findings("let v = Vec::with_capacity(declared_len.min(reader.remaining()));\n")
            .is_empty());
        assert!(findings("let v = Vec::with_capacity(n.min(1024));\n").is_empty());
    }

    #[test]
    fn vec_macro_repeat_count() {
        let f = findings("let v = vec![0u8; n];\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(findings("let v = vec![0u8; 16];\n").is_empty());
        assert!(findings("let v = vec![0u8; buf.len()];\n").is_empty());
    }

    #[test]
    fn resize_first_arg_only() {
        let f = findings("buf.resize(new_size, 0xff);\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(findings("buf.resize(buf.len() + 4, fill_byte);\n").is_empty());
    }

    #[test]
    fn reserve_is_covered() {
        let f = findings("out.reserve(count);\n");
        assert_eq!(f.len(), 1, "{f:?}");
    }
}
