//! Pass 5 — the unbounded-recursion pass.
//!
//! Hostile DER nests: a certificate is a tree, and every recursive descent
//! over attacker bytes needs a depth or budget parameter or it is a stack
//! bomb (PR 4's `nesting_bomb` mutation class exists precisely to probe
//! this). This pass builds the per-crate call graph for the parser
//! substrates (`asn1`, `x509`) and the mutation engine (`chaos`), finds
//! strongly-connected components (direct and mutual recursion), and flags
//! every cycle in which *no* participant carries a recognizable bound — a
//! `depth`/`budget`/`limit`/`fuel` parameter, a `Reader` (which threads
//! `ParseBudget` and its own depth counter), or a body reference to a
//! depth/budget field or `MAX_DEPTH`-style constant.
//!
//! Call edges use the model's [`CallKind`] classification so same-named
//! methods on different types don't weld into phantom cycles: bare calls
//! resolve to same-file definitions (or a crate-unique one); `self.f(…)`/
//! `Self::f(…)` resolve within the file; `Q::f(…)` resolves crate-wide only
//! when `Q` is a type or module *defined in this crate* (or `crate` itself);
//! `recv.f(…)` on a non-`self` receiver resolves nowhere — a foreign type's
//! method is not this crate's recursion.

use super::push;
use crate::config::AnalysisConfig;
use crate::model::{CallKind, Workspace};
use crate::{Finding, PASS_RECURSION};
use std::collections::{BTreeMap, BTreeSet};

/// Recursion cycle with no depth/budget bound.
pub const RULE_UNBOUNDED_RECURSION: &str = "unbounded_recursion";

/// Substrings in a participant's params or body that prove the cycle is
/// resource-bounded.
const BOUND_MARKERS: [&str; 7] = [
    "depth", "budget", "Budget", "fuel", "limit", "remaining", "Reader",
];

/// Run the recursion pass over the configured crates.
pub fn run(ws: &Workspace, cfg: &AnalysisConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for krate in ws
        .crates
        .iter()
        .filter(|c| cfg.recursion_crates.contains(&c.name.as_str()))
    {
        // Flat fn table for this crate, indexed crate-wide and per file.
        let mut fns: Vec<(usize, usize)> = Vec::new(); // (file idx, fn idx)
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut per_file_names: Vec<BTreeMap<&str, Vec<usize>>> =
            vec![BTreeMap::new(); krate.files.len()];
        for (fi, file) in krate.files.iter().enumerate() {
            for (gi, item) in file.fns.iter().enumerate() {
                let id = fns.len();
                fns.push((fi, gi));
                by_name.entry(item.name.as_str()).or_default().push(id);
                per_file_names[fi]
                    .entry(item.name.as_str())
                    .or_default()
                    .push(id);
            }
        }
        // Qualifier name → files that could host its items: files defining
        // the type/module, plus the file *named after* it (Rust's
        // `mod helpers;` puts the items in `helpers.rs`).
        let mut qualifier_files: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
        for (fi, file) in krate.files.iter().enumerate() {
            for t in &file.type_defs {
                qualifier_files.entry(t.as_str()).or_default().insert(fi);
            }
            if let Some(stem) = file
                .rel_path
                .rsplit('/')
                .next()
                .and_then(|n| n.strip_suffix(".rs"))
            {
                qualifier_files.entry(stem).or_default().insert(fi);
            }
        }

        let edges: Vec<Vec<usize>> = fns
            .iter()
            .map(|&(fi, gi)| {
                let mut out: Vec<usize> = Vec::new();
                for call in &krate.files[fi].fns[gi].calls {
                    let name = call.name.as_str();
                    match call.kind {
                        // `recv.f(…)`: receiver type unknown — no edge.
                        CallKind::Method => {}
                        // `self.f(…)` / `Self::f(…)`: same impl, same file.
                        CallKind::SelfMethod => {
                            if let Some(ids) = per_file_names[fi].get(name) {
                                out.extend_from_slice(ids);
                            }
                        }
                        // Bare `f(…)`: same-file definitions, or the single
                        // crate-wide definition when the name is unique.
                        CallKind::Plain => {
                            if let Some(ids) = per_file_names[fi].get(name) {
                                out.extend_from_slice(ids);
                            } else if let Some(ids) =
                                by_name.get(name).filter(|ids| ids.len() == 1)
                            {
                                out.extend_from_slice(ids);
                            }
                        }
                        // `Q::f(…)`: only when `Q` is defined in this crate,
                        // and only to definitions in `Q`'s own file(s) — a
                        // crate-wide net welds same-named constructors on
                        // different types into phantom cycles.
                        CallKind::Qualified => {
                            let q = call.qualifier.as_deref();
                            if q == Some("crate") {
                                if let Some(ids) = by_name.get(name) {
                                    out.extend_from_slice(ids);
                                }
                            } else if let Some(host_files) =
                                q.and_then(|q| qualifier_files.get(q))
                            {
                                if let Some(ids) = by_name.get(name) {
                                    out.extend(
                                        ids.iter()
                                            .filter(|&&id| host_files.contains(&fns[id].0))
                                            .copied(),
                                    );
                                }
                            }
                        }
                    }
                }
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();

        for scc in tarjan_sccs(&edges) {
            let cyclic = scc.len() > 1
                || (scc.len() == 1 && edges[scc[0]].contains(&scc[0]));
            if !cyclic {
                continue;
            }
            let bounded = scc.iter().any(|&id| {
                let (fi, gi) = fns[id];
                let item = &krate.files[fi].fns[gi];
                BOUND_MARKERS
                    .iter()
                    .any(|m| item.params.contains(m) || item.text.contains(m))
            });
            if bounded {
                continue;
            }
            let names: Vec<&str> = scc
                .iter()
                .map(|&id| {
                    let (fi, gi) = fns[id];
                    krate.files[fi].fns[gi].name.as_str()
                })
                .collect();
            for &id in &scc {
                let (fi, gi) = fns[id];
                let item = &krate.files[fi].fns[gi];
                push(
                    &mut findings,
                    PASS_RECURSION,
                    RULE_UNBOUNDED_RECURSION,
                    &krate.files[fi].rel_path,
                    item.sig_line,
                    format!(
                        "`{}` participates in recursion cycle {{{}}} with no depth/budget \
                         parameter — hostile nesting can exhaust the stack",
                        item.name,
                        names.join(" -> ")
                    ),
                );
            }
        }
    }
    findings
}

/// Iterative Tarjan SCC over an adjacency list; returns components with
/// nodes in ascending order, components ordered by their smallest node.
fn tarjan_sccs(edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut index = vec![usize::MAX; edges.len()];
    let mut low = vec![0usize; edges.len()];
    let mut on_stack = vec![false; edges.len()];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frames: (node, next child position).
    for root in 0..edges.len() {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = edges[v].get(*child) {
                *child += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
                continue;
            }
            // v is finished.
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                low[parent] = low[parent].min(low[v]);
            }
            if low[v] == index[v] {
                let mut comp = Vec::new();
                while let Some(w) = stack.pop() {
                    on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                comp.sort_unstable();
                sccs.push(comp);
            }
        }
    }
    sccs.sort_by_key(|c| c.first().copied().unwrap_or(usize::MAX));
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workspace;

    fn findings(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_sources(&[("asn1", "crates/asn1/src/der.rs", src)]);
        run(&ws, &AnalysisConfig::default())
    }

    #[test]
    fn direct_recursion_without_bound_fires() {
        let f = findings("fn descend(input: &[u8]) {\n    descend(input);\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_UNBOUNDED_RECURSION);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn depth_parameter_bounds_it() {
        assert!(findings("fn descend(input: &[u8], depth: usize) {\n    descend(input, depth + 1);\n}\n").is_empty());
    }

    #[test]
    fn reader_parameter_bounds_it() {
        assert!(findings("fn descend(r: &mut Reader<'_>) {\n    descend(r);\n}\n").is_empty());
    }

    #[test]
    fn mutual_recursion_is_detected() {
        let f = findings("fn a(x: &[u8]) { b(x); }\nfn b(x: &[u8]) { a(x); }\n");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("a -> b"));
    }

    #[test]
    fn mutual_recursion_bounded_by_one_member() {
        let f = findings("fn a(x: &[u8]) { b(x); }\nfn b(x: &[u8]) { if x.len() < limit_check() { a(x); } }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn non_recursive_code_is_clean() {
        assert!(findings("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n").is_empty());
    }

    #[test]
    fn foreign_method_with_same_name_is_not_an_edge() {
        // `w.write_time(…)` dispatches on `w`'s type, which this crate
        // cannot see — a free fn of the same name is not recursion.
        let f = findings("fn write_time(w: &mut W, t: u64) {\n    w.write_time(t);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn foreign_qualified_path_is_not_an_edge() {
        // `fmt::Display::fmt` is std's trait, not this crate's `fmt`.
        let f = findings("fn fmt(x: &T, f: &mut F) {\n    fmt::Display::fmt(x, f);\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn crate_local_qualified_path_is_an_edge() {
        // `helpers::b` resolves into `helpers.rs` (mod-named file);
        // `crate::a` resolves crate-wide.
        let ws = Workspace::from_sources(&[
            ("asn1", "crates/asn1/src/a.rs", "pub fn a(x: u8) { helpers::b(x); }\n"),
            ("asn1", "crates/asn1/src/helpers.rs", "pub fn b(x: u8) { crate::a(x); }\n"),
        ]);
        let f = run(&ws, &AnalysisConfig::default());
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("a -> b"), "{f:?}");
    }

    #[test]
    fn same_named_constructors_on_different_types_do_not_weld() {
        // `B::new` lives in b.rs; calling it from a.rs must not create an
        // edge to a.rs's own unrelated `new`.
        let ws = Workspace::from_sources(&[
            (
                "asn1",
                "crates/asn1/src/a.rs",
                "pub struct A;\nimpl A { pub fn new() -> A { B::new(); A } }\n",
            ),
            (
                "asn1",
                "crates/asn1/src/b.rs",
                "pub struct B;\nimpl B { pub fn new() -> B { A::new(); B } }\n",
            ),
        ]);
        // a.rs's A::new → b.rs's B::new → a.rs's A::new *is* a real mutual
        // cycle here; but each qualified call resolves only into the
        // qualifier's file, so the SCC names exactly these two.
        let f = run(&ws, &AnalysisConfig::default());
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn self_method_recursion_is_detected() {
        let f = findings(
            "impl Node {\n    fn walk(&self) {\n        self.walk();\n    }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn plain_call_to_unique_cross_file_def_is_an_edge() {
        let ws = Workspace::from_sources(&[
            ("asn1", "crates/asn1/src/a.rs", "pub fn ping(x: u8) { pong(x); }\n"),
            ("asn1", "crates/asn1/src/b.rs", "pub fn pong(x: u8) { ping(x); }\n"),
        ]);
        let f = run(&ws, &AnalysisConfig::default());
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn out_of_scope_crates_are_skipped() {
        let ws = Workspace::from_sources(&[(
            "monitors",
            "crates/monitors/src/lib.rs",
            "fn descend(x: &[u8]) { descend(x); }\n",
        )]);
        assert!(run(&ws, &AnalysisConfig::default()).is_empty());
    }
}
