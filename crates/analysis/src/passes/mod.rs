//! The invariant passes that run over the [`crate::model`] source model.
//!
//! Each pass is a pure function `(&Workspace, &AnalysisConfig) -> Vec<Finding>`
//! producing *raw* findings; `// analysis:allow(rule) reason` suppression
//! and unused-allow detection happen centrally in [`crate::engine`], so a
//! single annotation grammar covers every pass.

pub mod alloc;
pub mod determinism;
pub mod layering;
pub mod recursion;

use crate::Finding;

/// Identifier characters, shared by the line-scanning helpers below.
pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// The identifier ending immediately before byte offset `at` in `code`
/// (skipping whitespace), if any.
pub(crate) fn ident_ending_before(code: &str, at: usize) -> Option<String> {
    let head = &code[..at];
    let trimmed = head.trim_end();
    let end = trimmed.len();
    let start = trimmed
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident_char(*c))
        .last()
        .map(|(i, _)| i)
        .unwrap_or(end);
    if start == end {
        None
    } else {
        Some(trimmed[start..end].to_string())
    }
}

/// Extract a balanced-paren argument list starting right after an opening
/// `(` at byte offset `open` in `code`; returns the interior text.
pub(crate) fn balanced_paren_arg(code: &str, open: usize) -> Option<String> {
    let bytes = code.as_bytes();
    debug_assert_eq!(bytes.get(open), Some(&b'('));
    let mut depth = 0i32;
    for (i, c) in code[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(code[open + 1..open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Push a finding, keeping construction sites terse.
pub(crate) fn push(
    out: &mut Vec<Finding>,
    pass: &'static str,
    rule: &'static str,
    file: &str,
    line: usize,
    message: String,
) {
    out.push(Finding {
        pass,
        rule,
        file: file.to_string(),
        line,
        message,
    });
}
