//! Pass 6 — the crate-layering pass.
//!
//! The workspace's crates form a deliberate DAG
//! (unicode→idna→asn1→x509→lint→core→bench, telemetry and chaos as
//! leaves). A refactor that quietly inverts a layer — lint reaching into
//! core, a substrate importing telemetry it shouldn't — would compile fine
//! and only hurt later. This pass checks both *declared* dependencies (the
//! `[dependencies]` section of each Cargo.toml) and *used* dependencies
//! (`use unicert_x`/qualified paths in non-test code) against the allowed
//! table in [`AnalysisConfig::allowed_deps`]. Dev-dependencies are exempt:
//! dev cycles are legal in cargo and used deliberately by the proptests.

use super::push;
use crate::config::AnalysisConfig;
use crate::model::Workspace;
use crate::{Finding, PASS_LAYERING};

/// A declared or used dependency outside the allowed DAG.
pub const RULE_LAYER_VIOLATION: &str = "layer_violation";

/// Run the layering pass over every crate (shims included).
pub fn run(ws: &Workspace, cfg: &AnalysisConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for krate in &ws.crates {
        let Some(allowed) = cfg.allowed_deps.get(krate.name.as_str()) else {
            push(
                &mut findings,
                PASS_LAYERING,
                RULE_LAYER_VIOLATION,
                &krate.manifest_rel,
                1,
                format!(
                    "crate `{}` is not in the layering configuration — add it to \
                     AnalysisConfig::allowed_deps with its allowed dependencies",
                    krate.name
                ),
            );
            continue;
        };
        for dep in &krate.deps {
            if !allowed.contains(&dep.name.as_str()) {
                push(
                    &mut findings,
                    PASS_LAYERING,
                    RULE_LAYER_VIOLATION,
                    &krate.manifest_rel,
                    dep.line,
                    format!(
                        "`{}` may not depend on `{}` — allowed layer deps: [{}]",
                        krate.name,
                        dep.name,
                        allowed.join(", ")
                    ),
                );
            }
        }
        for file in &krate.files {
            for use_ref in &file.uses {
                if use_ref.krate == krate.name {
                    continue;
                }
                if !allowed.contains(&use_ref.krate.as_str()) {
                    push(
                        &mut findings,
                        PASS_LAYERING,
                        RULE_LAYER_VIOLATION,
                        &file.rel_path,
                        use_ref.line,
                        format!(
                            "`{}` references crate `{}` outside its allowed layer deps [{}]",
                            krate.name,
                            use_ref.krate,
                            allowed.join(", ")
                        ),
                    );
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{analyze_source, CrateInfo, ManifestDep, Workspace};

    fn ws_with(name: &str, deps: &[&str], src: &str) -> Workspace {
        Workspace {
            crates: vec![CrateInfo {
                name: name.to_string(),
                group: "crates".to_string(),
                manifest_rel: format!("crates/{name}/Cargo.toml"),
                deps: deps
                    .iter()
                    .enumerate()
                    .map(|(i, d)| ManifestDep {
                        name: (*d).to_string(),
                        line: i + 1,
                    })
                    .collect(),
                files: vec![analyze_source(
                    name,
                    &format!("crates/{name}/src/lib.rs"),
                    src,
                )],
            }],
        }
    }

    #[test]
    fn allowed_deps_pass() {
        let ws = ws_with("idna", &["unicode"], "use unicert_unicode::nfc;\n");
        assert!(run(&ws, &AnalysisConfig::default()).is_empty());
    }

    #[test]
    fn inverted_layer_in_manifest_fires() {
        let ws = ws_with("unicode", &["lint"], "");
        let f = run(&ws, &AnalysisConfig::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_LAYER_VIOLATION);
        assert!(f[0].file.ends_with("Cargo.toml"));
    }

    #[test]
    fn undeclared_use_fires_at_source_line() {
        let ws = ws_with("idna", &["unicode"], "fn f() { unicert_core::survey::run(); }\n");
        let f = run(&ws, &AnalysisConfig::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
        assert!(f[0].file.ends_with("lib.rs"));
    }

    #[test]
    fn test_code_uses_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use unicert_chaos::Mutator;\n}\n";
        let ws = ws_with("asn1", &[], src);
        assert!(run(&ws, &AnalysisConfig::default()).is_empty());
    }

    #[test]
    fn unknown_crate_is_reported() {
        let ws = ws_with("sidecar", &[], "");
        let f = run(&ws, &AnalysisConfig::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("layering configuration"));
    }
}
