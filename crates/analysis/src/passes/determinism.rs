//! Pass 3 — the determinism pass.
//!
//! Survey reports must be byte-identical across runs, thread counts, and
//! machines (PR 2's merge contract). That only holds if no code on the
//! report-construction path consults a clock, iterates an unordered
//! `HashMap`/`HashSet`, depends on the thread id or thread count, or
//! accumulates floats (whose sums are order-sensitive). This pass computes
//! the set of functions reachable from `SurveyReport` construction or
//! `merge` over the model's call graph and flags those four construct
//! families inside it.
//!
//! Reachability is a deliberate overapproximation: a call edge resolves to
//! every same-file definition of the callee's simple name, plus cross-file
//! definitions when the name is rare (≤ [`MAX_CROSS_FILE_DEFS`] definitions
//! workspace-wide); ubiquitous names (`new`, `len`, …) are treated as
//! opaque. Code the call graph cannot see into — the 95 lint `check`
//! functions invoked through fn pointers — is force-scanned via
//! [`crate::config::AnalysisConfig::determinism_always_scan`].

use super::{ident_ending_before, is_ident_char, push};
use crate::config::AnalysisConfig;
use crate::model::{SourceFile, Workspace};
use crate::{Finding, PASS_DETERMINISM};
use std::collections::{BTreeMap, BTreeSet};

/// Unordered-map iteration in report-reachable code.
pub const RULE_MAP_ITER: &str = "map_iter";
/// Clock reads (`Instant::now`/`SystemTime::now`) in report-reachable code.
pub const RULE_CLOCK: &str = "clock";
/// Thread-id/thread-count dependence in report-reachable code.
pub const RULE_THREAD: &str = "thread_dependence";
/// Float accumulation in report-reachable code.
pub const RULE_FLOAT: &str = "float_accum";

/// A simple name resolves cross-file only when defined at most this many
/// times workspace-wide.
const MAX_CROSS_FILE_DEFS: usize = 3;

/// Methods whose receiver being a `HashMap`/`HashSet` makes iteration
/// order — and therefore any derived output — nondeterministic.
const ITER_METHODS: [&str; 7] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
];

/// Run the determinism pass.
pub fn run(ws: &Workspace, cfg: &AnalysisConfig) -> Vec<Finding> {
    // Flatten the in-scope files (library code of non-exempt crates).
    let files: Vec<&SourceFile> = ws
        .crates
        .iter()
        .filter(|c| c.group == "crates" && !cfg.determinism_exempt_crates.contains(&c.name.as_str()))
        .flat_map(|c| c.files.iter())
        .filter(|f| !f.is_bin)
        .collect();

    // Global fn table: flat id → (file idx, fn idx); name → flat ids.
    let mut flat: Vec<(usize, usize)> = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut per_file_names: Vec<BTreeMap<&str, Vec<usize>>> = vec![BTreeMap::new(); files.len()];
    for (fi, file) in files.iter().enumerate() {
        for (gi, item) in file.fns.iter().enumerate() {
            let id = flat.len();
            flat.push((fi, gi));
            by_name.entry(item.name.as_str()).or_default().push(id);
            per_file_names[fi]
                .entry(item.name.as_str())
                .or_default()
                .push(id);
        }
    }

    // Seeds: any fn whose signature+body mentions SurveyReport (its
    // constructors, its merge, and everything holding one).
    let mut reachable: BTreeSet<usize> = BTreeSet::new();
    let mut queue: Vec<usize> = Vec::new();
    for (id, &(fi, gi)) in flat.iter().enumerate() {
        if files[fi].fns[gi].text.contains("SurveyReport") {
            reachable.insert(id);
            queue.push(id);
        }
    }

    // BFS over call edges.
    while let Some(id) = queue.pop() {
        let (fi, gi) = flat[id];
        for call in &files[fi].fns[gi].calls {
            let mut targets: Vec<usize> = Vec::new();
            if let Some(same_file) = per_file_names[fi].get(call.name.as_str()) {
                targets.extend_from_slice(same_file);
            }
            if let Some(all) = by_name.get(call.name.as_str()) {
                if all.len() <= MAX_CROSS_FILE_DEFS {
                    targets.extend_from_slice(all);
                }
            }
            for t in targets {
                if reachable.insert(t) {
                    queue.push(t);
                }
            }
        }
    }

    // Line scan set: reachable fn body ranges, plus force-scanned files.
    let mut findings = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        let force = cfg
            .determinism_always_scan
            .iter()
            .any(|frag| file.rel_path.contains(frag));
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        if force {
            ranges.push((1, usize::MAX));
        } else {
            for (gi, item) in file.fns.iter().enumerate() {
                let id = flat
                    .iter()
                    .position(|&(a, b)| a == fi && b == gi)
                    .unwrap_or(usize::MAX);
                if reachable.contains(&id) {
                    ranges.push((item.sig_line, item.body_end));
                }
            }
        }
        if ranges.is_empty() {
            continue;
        }
        scan_file(file, &ranges, &mut findings);
    }
    findings
}

/// Does `line` fall inside any of the (inclusive) ranges?
fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
    ranges.iter().any(|&(lo, hi)| line >= lo && line <= hi)
}

fn scan_file(file: &SourceFile, ranges: &[(usize, usize)], out: &mut Vec<Finding>) {
    let map_idents = collect_map_idents(file);
    let float_idents = collect_float_idents(file);
    for line in &file.lines {
        if line.in_test_code || !in_ranges(ranges, line.number) {
            continue;
        }
        let code = &line.code;

        for needle in ["Instant::now(", "SystemTime::now("] {
            if code.contains(needle) {
                push(
                    out,
                    PASS_DETERMINISM,
                    RULE_CLOCK,
                    &file.rel_path,
                    line.number,
                    format!(
                        "`{}()` on the report path — reports must be clock-free",
                        &needle[..needle.len() - 1]
                    ),
                );
            }
        }
        for (needle, what) in [
            ("available_parallelism", "thread-count"),
            ("thread::current", "thread-id"),
            ("ThreadId", "thread-id"),
        ] {
            if code.contains(needle) {
                push(
                    out,
                    PASS_DETERMINISM,
                    RULE_THREAD,
                    &file.rel_path,
                    line.number,
                    format!("{what} dependence (`{needle}`) on the report path"),
                );
            }
        }
        scan_map_iteration(code, &map_idents, &file.rel_path, line.number, out);
        scan_float_accum(code, &float_idents, &file.rel_path, line.number, out);
    }
}

/// Identifiers declared (or typed) as `HashMap`/`HashSet` anywhere in the
/// file: `name: HashMap<...>` fields/params, `let name = HashMap::new()`,
/// and `let name: HashSet<...>` locals.
fn collect_map_idents(file: &SourceFile) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for line in &file.lines {
        if line.in_test_code {
            continue;
        }
        let code = &line.code;
        for ty in ["HashMap", "HashSet"] {
            let mut start = 0;
            while let Some(found) = code[start..].find(ty) {
                let at = start + found;
                let before = code[..at].trim_end();
                // `name: HashMap<` or `name: RefCell<HashMap<...>>` etc. —
                // walk back over a chain of wrapper generics to the `:`.
                if let Some(name) = binding_name_before(before) {
                    idents.insert(name);
                }
                // `let name = HashMap::new()` / `= HashMap::with_capacity`.
                if before.ends_with('=') {
                    if let Some(name) = ident_ending_before(
                        before,
                        before.len() - 1,
                    ) {
                        idents.insert(name);
                    }
                }
                start = at + ty.len();
            }
        }
    }
    idents
}

/// For text ending in a (possibly wrapped) type position like
/// `labels: RefCell<` or `cas: `, recover the bound name before the `:`.
fn binding_name_before(before: &str) -> Option<String> {
    // Strip trailing wrapper-type openings: idents, `<`, `:` pairs.
    let mut s = before;
    loop {
        let t = s.trim_end();
        if let Some(rest) = t.strip_suffix('<') {
            // drop the wrapper type name too
            let trimmed = rest.trim_end();
            let cut = trimmed
                .rfind(|c: char| !is_ident_char(c))
                .map(|i| i + 1)
                .unwrap_or(0);
            s = &trimmed[..cut];
            continue;
        }
        if let Some(rest) = t.strip_suffix(':') {
            // `::` is a path, not a binding.
            if rest.ends_with(':') {
                return None;
            }
            return ident_ending_before(rest, rest.len()).filter(|n| n != "mut" && n != "let");
        }
        return None;
    }
}

/// Flag iteration over map-typed identifiers.
fn scan_map_iteration(
    code: &str,
    map_idents: &BTreeSet<String>,
    file: &str,
    line: usize,
    out: &mut Vec<Finding>,
) {
    if map_idents.is_empty() {
        return;
    }
    for method in ITER_METHODS {
        let mut start = 0;
        while let Some(found) = code[start..].find(method) {
            let at = start + found;
            if let Some(receiver) = ident_ending_before(code, at) {
                if map_idents.contains(&receiver) {
                    push(
                        out,
                        PASS_DETERMINISM,
                        RULE_MAP_ITER,
                        file,
                        line,
                        format!(
                            "iteration over unordered map/set `{receiver}` ({}) — order is \
                             nondeterministic; use BTreeMap/BTreeSet or sort first",
                            method.trim_end_matches('(')
                        ),
                    );
                }
            }
            start = at + method.len();
        }
    }
    // `for x in &map { ... }` without an explicit iter call.
    if let Some(for_at) = find_for_keyword(code) {
        if let Some(in_at) = code[for_at..].find(" in ").map(|i| for_at + i + 4) {
            let tail = &code[in_at..];
            let expr: String = tail
                .chars()
                .take_while(|c| *c != '{')
                .collect::<String>()
                .trim()
                .trim_start_matches('&')
                .trim_start_matches("mut ")
                .to_string();
            if map_idents.contains(expr.as_str()) {
                push(
                    out,
                    PASS_DETERMINISM,
                    RULE_MAP_ITER,
                    file,
                    line,
                    format!(
                        "`for … in {expr}` iterates an unordered map/set — order is \
                         nondeterministic; use BTreeMap/BTreeSet or sort first"
                    ),
                );
            }
        }
    }
}

/// Offset of a standalone `for` keyword, if present.
fn find_for_keyword(code: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(found) = code[start..].find("for") {
        let at = start + found;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(is_ident_char);
        let after_ok = code[at + 3..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 3;
    }
    None
}

/// Identifiers bound to float values: `let x = 0.0`, `x: f64`, `x: f32`.
fn collect_float_idents(file: &SourceFile) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for line in &file.lines {
        if line.in_test_code {
            continue;
        }
        let code = &line.code;
        for ty in [": f64", ": f32"] {
            let mut start = 0;
            while let Some(found) = code[start..].find(ty) {
                let at = start + found;
                if let Some(name) = ident_ending_before(code, at) {
                    idents.insert(name);
                }
                start = at + ty.len();
            }
        }
        // `let [mut] name = <float literal>`
        if let Some(rest) = code.trim_start().strip_prefix("let ") {
            let rest = rest.trim_start().trim_start_matches("mut ");
            if let Some((name_part, value)) = rest.split_once('=') {
                let name: String = name_part
                    .trim()
                    .chars()
                    .take_while(|c| is_ident_char(*c))
                    .collect();
                let v = value.trim().trim_end_matches(';');
                let is_float_literal = v
                    .split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '_'))
                    .next()
                    .is_some_and(|head| {
                        head.contains('.')
                            && head.chars().next().is_some_and(|c| c.is_ascii_digit())
                    });
                if !name.is_empty() && (is_float_literal || v.ends_with("f64") || v.ends_with("f32"))
                {
                    idents.insert(name);
                }
            }
        }
    }
    idents
}

/// Flag `x += …` on float-typed identifiers and float `.sum()` calls.
fn scan_float_accum(
    code: &str,
    float_idents: &BTreeSet<String>,
    file: &str,
    line: usize,
    out: &mut Vec<Finding>,
) {
    for op in ["+=", "*="] {
        let mut start = 0;
        while let Some(found) = code[start..].find(op) {
            let at = start + found;
            if let Some(lhs) = ident_ending_before(code, at) {
                if float_idents.contains(&lhs) {
                    push(
                        out,
                        PASS_DETERMINISM,
                        RULE_FLOAT,
                        file,
                        line,
                        format!(
                            "float accumulation `{lhs} {op}` on the report path — float sums \
                             are evaluation-order-sensitive; use integer units or fixed-point"
                        ),
                    );
                }
            }
            start = at + op.len();
        }
    }
    for needle in [".sum::<f64>()", ".sum::<f32>()"] {
        if code.contains(needle) {
            push(
                out,
                PASS_DETERMINISM,
                RULE_FLOAT,
                file,
                line,
                format!("float `{needle}` on the report path — order-sensitive"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::from_sources(&[("core", "crates/core/src/survey.rs", src)])
    }

    #[test]
    fn clock_in_reachable_fn_fires() {
        let src = "fn build() -> SurveyReport {\n    let t = Instant::now();\n    SurveyReport::default()\n}\n";
        let f = run(&ws(src), &AnalysisConfig::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_CLOCK);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn clock_in_unreachable_fn_is_ignored() {
        let src = "fn unrelated() {\n    let t = Instant::now();\n}\n";
        let f = run(&ws(src), &AnalysisConfig::default());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn transitive_callee_is_reachable() {
        let src = "fn build() -> SurveyReport {\n    helper();\n    SurveyReport::default()\n}\nfn helper() {\n    let t = SystemTime::now();\n}\n";
        let f = run(&ws(src), &AnalysisConfig::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn map_iteration_fires() {
        let src = "fn merge(other: SurveyReport) {\n    let counts: HashMap<String, u64> = HashMap::new();\n    for k in counts.keys() { drop(k); }\n}\n";
        let f = run(&ws(src), &AnalysisConfig::default());
        assert!(f.iter().any(|f| f.rule == RULE_MAP_ITER && f.line == 3), "{f:?}");
    }

    #[test]
    fn telemetry_is_exempt() {
        let src = "fn snapshot(r: &SurveyReport) {\n    let t = Instant::now();\n}\n";
        let ws = Workspace::from_sources(&[("telemetry", "crates/telemetry/src/lib.rs", src)]);
        let f = run(&ws, &AnalysisConfig::default());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn thread_count_and_float_accum_fire() {
        let src = "fn build() -> SurveyReport {\n    let n = std::thread::available_parallelism();\n    let mut acc = 0.0;\n    acc += 1.5;\n    SurveyReport::default()\n}\n";
        let f = run(&ws(src), &AnalysisConfig::default());
        assert!(f.iter().any(|f| f.rule == RULE_THREAD && f.line == 2), "{f:?}");
        assert!(f.iter().any(|f| f.rule == RULE_FLOAT && f.line == 4), "{f:?}");
    }

    #[test]
    fn always_scan_paths_need_no_reachability() {
        let src = "fn check(ctx: &LintContext) {\n    let t = Instant::now();\n}\n";
        let ws = Workspace::from_sources(&[("lint", "crates/lint/src/catalog/t1.rs", src)]);
        let f = run(&ws, &AnalysisConfig::default());
        assert_eq!(f.len(), 1, "{f:?}");
    }
}
