//! `unicert-analysis` — the S12 static-analysis subsystem.
//!
//! Two passes turn the repo's prose promises into enforced invariants:
//!
//! 1. **Catalog meta-linter** ([`catalog`]): the live 95-lint registry must
//!    match every published property of the paper's catalog — Table 1
//!    counts, Table 11 names, naming/severity conventions, citation and
//!    effective-date consistency.
//! 2. **Panic-safety source audit** ([`audit`]): the DER/X.509/IDNA/Unicode
//!    substrates promise zero panics on untrusted input (DESIGN.md §2);
//!    the audit lexes their sources and flags `unwrap`/`expect`,
//!    panic-family macros, non-literal slice indexing, and unchecked
//!    length arithmetic in reader hot paths. Vetted sites carry
//!    `// analysis:allow(<rule>) reason` annotations, which must name the
//!    firing rule and give a non-empty reason.
//!
//! Both passes produce [`Violation`]s, rendered as a TSV report
//! ([`tsv_report`]) and human `file:line` diagnostics ([`human_report`]).
//! `tests/static_analysis.rs` runs them under `cargo test`, and the
//! `unicert-analysis` binary runs them in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod catalog;
pub mod lexer;

use std::path::{Path, PathBuf};

/// Pass label for catalog meta-lint violations.
pub const PASS_CATALOG: &str = "catalog";
/// Pass label for source-audit violations.
pub const PASS_SOURCE: &str = "source";

/// One static-analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which pass produced it (`catalog` or `source`).
    pub pass: &'static str,
    /// Machine-readable rule name (stable; used in `analysis:allow`).
    pub rule: &'static str,
    /// `file:line` for source findings, lint name or `registry` for
    /// catalog findings.
    pub location: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Locate the workspace root: walk up from `crates/analysis` (compile-time
/// manifest dir) until a directory containing `Cargo.toml` + `crates/`.
pub fn default_repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut dir = manifest.as_path();
    while let Some(parent) = dir.parent() {
        if parent.join("Cargo.toml").is_file() && parent.join("crates").is_dir() {
            return parent.to_path_buf();
        }
        dir = parent;
    }
    manifest
}

/// The `src/lib.rs` of every workspace crate (including shims), for the
/// `unsafe_attr_missing` check.
pub fn workspace_crate_roots(repo_root: &Path) -> Vec<PathBuf> {
    let mut roots = Vec::new();
    for group in ["crates", "shims"] {
        let dir = repo_root.join(group);
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let lib = entry.path().join("src").join("lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    roots.sort();
    roots
}

/// Run both passes and the crate-root hygiene check.
pub fn run_all(repo_root: &Path) -> Vec<Violation> {
    let mut violations = catalog::run();
    violations.extend(audit::run(repo_root));
    violations.extend(audit::check_unsafe_attrs(
        repo_root,
        &workspace_crate_roots(repo_root),
    ));
    violations
}

/// Render violations as TSV: `pass<TAB>rule<TAB>location<TAB>message`.
pub fn tsv_report(violations: &[Violation]) -> String {
    let mut out = String::from("pass\trule\tlocation\tmessage\n");
    for v in violations {
        let clean = |s: &str| s.replace(['\t', '\n'], " ");
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\n",
            v.pass,
            v.rule,
            clean(&v.location),
            clean(&v.message)
        ));
    }
    out
}

/// Render violations as human diagnostics, one per line.
pub fn human_report(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str(&format!(
            "error[{}::{}]: {}: {}\n",
            v.pass, v.rule, v.location, v.message
        ));
    }
    if violations.is_empty() {
        out.push_str("unicert-analysis: all invariants hold\n");
    } else {
        out.push_str(&format!(
            "unicert-analysis: {} violation(s)\n",
            violations.len()
        ));
    }
    out
}
