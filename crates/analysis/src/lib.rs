//! `unicert-analysis` — the S12 static-analysis subsystem.
//!
//! A rule engine of six passes turns the repo's prose promises into
//! enforced invariants:
//!
//! 1. **Catalog meta-linter** ([`catalog`]): the live 95-lint registry must
//!    match every published property of the paper's catalog — Table 1
//!    counts, Table 11 names, naming/severity conventions, citation and
//!    effective-date consistency.
//! 2. **Panic-safety source audit** ([`audit`]): the DER/X.509/IDNA/Unicode
//!    substrates promise zero panics on untrusted input (DESIGN.md §2);
//!    the audit lexes their sources and flags `unwrap`/`expect`,
//!    panic-family macros, non-literal slice indexing, and unchecked
//!    length arithmetic in reader hot paths.
//! 3. **Determinism pass** ([`passes::determinism`]): survey reports are
//!    byte-identical across runs and thread counts (PR 2), so nothing on
//!    the report path may read clocks, iterate unordered maps, depend on
//!    thread identity/count, or accumulate floats.
//! 4. **Allocation-bound pass** ([`passes::alloc`]): no allocation may be
//!    sized by a parsed-input value without a visible `ParseBudget`/
//!    `min`/`clamp` bound (PR 4's reader guarantee, workspace-wide).
//! 5. **Unbounded-recursion pass** ([`passes::recursion`]): recursion in
//!    the parser substrates must carry a depth or budget parameter.
//! 6. **Crate-layering pass** ([`passes::layering`]): manifests and `use`
//!    graphs must respect the unicode→idna→asn1→x509→lint→core→bench DAG.
//!
//! All passes share the [`model`] source model (token stream, `fn` items,
//! `use` graph) and the `// analysis:allow(<rule>) reason` escape hatch,
//! resolved centrally by [`engine`] — annotations must name the firing
//! rule, give a non-empty reason, and go stale loudly (`unused_allow`).
//! Violations render as TSV ([`tsv_report`]), human `file:line`
//! diagnostics ([`human_report`]), and a SARIF-lite JSON report
//! ([`report::json_report`]) uploaded as a CI artifact.
//! `tests/static_analysis.rs` runs everything under `cargo test`, and the
//! `unicert-analysis` binary runs it in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod catalog;
pub mod config;
pub mod engine;
pub mod lexer;
pub mod model;
pub mod passes;
pub mod report;

use std::path::{Path, PathBuf};

/// Pass label for catalog meta-lint violations.
pub const PASS_CATALOG: &str = "catalog";
/// Pass label for source-audit violations.
pub const PASS_SOURCE: &str = "source";
/// Pass label for determinism violations (report path must be clock-free,
/// order-stable, and thread-independent).
pub const PASS_DETERMINISM: &str = "determinism";
/// Pass label for allocation-bound violations.
pub const PASS_ALLOC: &str = "alloc";
/// Pass label for unbounded-recursion violations.
pub const PASS_RECURSION: &str = "recursion";
/// Pass label for crate-layering violations.
pub const PASS_LAYERING: &str = "layering";

/// One static-analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which pass produced it (`catalog`, `source`, `determinism`,
    /// `alloc`, `recursion`, or `layering`).
    pub pass: &'static str,
    /// Machine-readable rule name (stable; used in `analysis:allow`).
    pub rule: &'static str,
    /// `file:line` for source findings, lint name or `registry` for
    /// catalog findings.
    pub location: String,
    /// Human-readable explanation.
    pub message: String,
}

/// One raw source-pass finding, pre-annotation-resolution: the engine
/// matches these against `// analysis:allow(rule) reason` annotations and
/// converts the survivors into [`Violation`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which pass produced it.
    pub pass: &'static str,
    /// Machine-readable rule name.
    pub rule: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line (0 for file-level findings).
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// Locate the workspace root: walk up from `crates/analysis` (compile-time
/// manifest dir) until a directory containing `Cargo.toml` + `crates/`.
pub fn default_repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut dir = manifest.as_path();
    while let Some(parent) = dir.parent() {
        if parent.join("Cargo.toml").is_file() && parent.join("crates").is_dir() {
            return parent.to_path_buf();
        }
        dir = parent;
    }
    manifest
}

/// The `src/lib.rs` of every workspace crate (including shims), for the
/// `unsafe_attr_missing` check.
pub fn workspace_crate_roots(repo_root: &Path) -> Vec<PathBuf> {
    let mut roots = Vec::new();
    for group in ["crates", "shims"] {
        let dir = repo_root.join(group);
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let lib = entry.path().join("src").join("lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    roots.sort();
    roots
}

/// Run every pass — catalog, audit, determinism, allocation-bound,
/// recursion, layering — plus the crate-root hygiene check, with
/// annotations resolved centrally across all passes.
pub fn run_all(repo_root: &Path) -> Vec<Violation> {
    engine::run_full(repo_root)
}

/// Render violations as TSV: `pass<TAB>rule<TAB>location<TAB>message`.
pub fn tsv_report(violations: &[Violation]) -> String {
    let mut out = String::from("pass\trule\tlocation\tmessage\n");
    for v in violations {
        let clean = |s: &str| s.replace(['\t', '\n'], " ");
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\n",
            v.pass,
            v.rule,
            clean(&v.location),
            clean(&v.message)
        ));
    }
    out
}

/// Render violations as human diagnostics, one per line.
pub fn human_report(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str(&format!(
            "error[{}::{}]: {}: {}\n",
            v.pass, v.rule, v.location, v.message
        ));
    }
    if violations.is_empty() {
        out.push_str("unicert-analysis: all invariants hold\n");
    } else {
        out.push_str(&format!(
            "unicert-analysis: {} violation(s)\n",
            violations.len()
        ));
    }
    out
}
