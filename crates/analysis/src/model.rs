//! The shared lightweight Rust source model the analyzer passes run over.
//!
//! The panic-safety audit only needed classified *lines*; the determinism,
//! allocation-bound, recursion, and layering passes need structure: which
//! `fn` items exist, what they call, which crates a file references, and
//! what each crate's manifest declares. This module upgrades the lexer's
//! line classification into a token stream with brace nesting, resolves
//! `fn` items (name, signature, body extent, outgoing calls) and crate
//! references (`use unicert_x`, qualified `unicert_x::` paths, shim crates),
//! and loads the whole workspace — manifests included — behind one
//! deterministic, sorted directory walk.

use crate::lexer::{lex, LexedLine};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One code token (comments and literal interiors already blanked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text: an identifier/number run or a single punctuation char.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// Brace-nesting depth *before* this token is applied.
    pub depth: u32,
    /// Token came from a `#[cfg(test)]`-gated region.
    pub in_test_code: bool,
}

impl Token {
    /// Is this an identifier (or keyword) token?
    pub fn is_ident(&self) -> bool {
        self.text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
    }
}

/// Tokenize classified lines into an ident/punct stream with brace depth.
///
/// Tokens from `#[cfg(test)]` regions are kept (their braces matter for
/// nesting) but carry `in_test_code` so consumers can skip them.
pub fn tokenize(lines: &[LexedLine]) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut depth: u32 = 0;
    for line in lines {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token {
                    text: chars[start..i].iter().collect(),
                    line: line.number,
                    depth,
                    in_test_code: line.in_test_code,
                });
                continue;
            }
            // `{` records the depth *outside* it and `}` the depth after
            // closing, so a matching pair carries the same depth value.
            if c == '}' {
                depth = depth.saturating_sub(1);
            }
            let tok_depth = depth;
            if c == '{' {
                depth += 1;
            }
            tokens.push(Token {
                text: c.to_string(),
                line: line.number,
                depth: tok_depth,
                in_test_code: line.in_test_code,
            });
            i += 1;
        }
    }
    tokens
}

/// How a call site names its callee — the precision recursion analysis
/// needs to avoid conflating same-named methods on different types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// Bare `f(…)`.
    Plain,
    /// `self.f(…)`, `Self::f(…)`, or `self::f(…)` — same-impl dispatch.
    SelfMethod,
    /// `recv.f(…)` on a non-`self` receiver; the callee's type is unknown.
    Method,
    /// `Qualifier::f(…)` — the qualifier is the path segment before `f`.
    Qualified,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallRef {
    /// Callee simple name.
    pub name: String,
    /// How the callee was named.
    pub kind: CallKind,
    /// For [`CallKind::Qualified`], the immediate path qualifier.
    pub qualifier: Option<String>,
}

/// One resolved `fn` item: signature, body extent, and outgoing calls.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's simple name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 1-based line where the body's `{` opens (equals `sig_line` for
    /// single-line items); `None` for bodyless trait-method declarations.
    pub body_start: Option<usize>,
    /// 1-based line of the body's closing `}`.
    pub body_end: usize,
    /// Raw parameter-list text between the signature parens.
    pub params: String,
    /// Everything the body calls (`f(`, `x.f(`, `p::f(`), macros and
    /// control-flow keywords excluded, in source order.
    pub calls: Vec<CallRef>,
    /// Concatenated code text of signature + body lines (test lines
    /// excluded), used for cheap containment queries.
    pub text: String,
}

/// One crate reference found in a source file (a `use unicert_x` item or a
/// qualified `unicert_x::`/shim-crate path), deduplicated per file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseRef {
    /// Referenced crate's short name (`asn1`, `lint`, `rand`, …).
    pub krate: String,
    /// First 1-based line referencing it.
    pub line: usize,
}

/// One analyzed source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Short name of the owning crate (`asn1`, not `unicert-asn1`).
    pub krate: String,
    /// Repo-relative path (`crates/asn1/src/reader.rs`).
    pub rel_path: String,
    /// Is this a `src/bin/` driver rather than library code?
    pub is_bin: bool,
    /// Lexically classified lines.
    pub lines: Vec<LexedLine>,
    /// Resolved `fn` items (test-gated items excluded).
    pub fns: Vec<FnItem>,
    /// Crate references from non-test code.
    pub uses: Vec<UseRef>,
    /// Names of types/modules defined in this file (sorted, deduplicated).
    pub type_defs: Vec<String>,
}

/// One dependency entry from a manifest's `[dependencies]` section.
#[derive(Debug, Clone)]
pub struct ManifestDep {
    /// Short crate name (`asn1` for `unicert-asn1`, `rand` for `rand`).
    pub name: String,
    /// 1-based line in the Cargo.toml.
    pub line: usize,
}

/// One workspace crate: manifest plus analyzed sources.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Short name (`asn1`).
    pub name: String,
    /// `"crates"` or `"shims"`.
    pub group: String,
    /// Repo-relative manifest path.
    pub manifest_rel: String,
    /// `[dependencies]` entries (dev-dependencies are deliberately not
    /// collected: dev-dep cycles are legal in cargo and out of scope for
    /// layering).
    pub deps: Vec<ManifestDep>,
    /// Analyzed `.rs` files under `src/`, in sorted path order.
    pub files: Vec<SourceFile>,
}

/// The analyzed workspace: every crate under `crates/` and `shims/`.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Crates in sorted (group, name) order.
    pub crates: Vec<CrateInfo>,
}

impl Workspace {
    /// Load and analyze the workspace rooted at `root`.
    ///
    /// Every directory listing is sorted before use, so file — and
    /// therefore finding — order is identical across filesystems.
    pub fn load(root: &Path) -> Workspace {
        let mut crates = Vec::new();
        for group in ["crates", "shims"] {
            for crate_dir in sorted_subdirs(&root.join(group)) {
                let name = crate_dir
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let manifest_path = crate_dir.join("Cargo.toml");
                if !manifest_path.is_file() {
                    continue;
                }
                let manifest_rel = rel_display(root, &manifest_path);
                let manifest_text = std::fs::read_to_string(&manifest_path).unwrap_or_default();
                let deps = parse_manifest_deps(&manifest_text);

                let mut files = Vec::new();
                let mut rs_files = Vec::new();
                collect_rs_files_sorted(&crate_dir.join("src"), &mut rs_files);
                for path in rs_files {
                    let rel = rel_display(root, &path);
                    let Ok(text) = std::fs::read_to_string(&path) else {
                        continue;
                    };
                    files.push(analyze_source(&name, &rel, &text));
                }
                crates.push(CrateInfo {
                    name,
                    group: group.to_string(),
                    manifest_rel,
                    deps,
                    files,
                });
            }
        }
        Workspace { crates }
    }

    /// Build an in-memory workspace from `(crate, rel_path, source)` tuples
    /// — the test harness for pass fixtures.
    pub fn from_sources(sources: &[(&str, &str, &str)]) -> Workspace {
        let mut by_crate: BTreeMap<String, Vec<SourceFile>> = BTreeMap::new();
        for (krate, rel, text) in sources {
            by_crate
                .entry((*krate).to_string())
                .or_default()
                .push(analyze_source(krate, rel, text));
        }
        Workspace {
            crates: by_crate
                .into_iter()
                .map(|(name, files)| CrateInfo {
                    name,
                    group: "crates".to_string(),
                    manifest_rel: String::new(),
                    deps: Vec::new(),
                    files,
                })
                .collect(),
        }
    }

    /// All source files across crates, in deterministic order.
    pub fn files(&self) -> impl Iterator<Item = &SourceFile> {
        self.crates.iter().flat_map(|c| c.files.iter())
    }
}

/// Analyze one file's text into the model.
pub fn analyze_source(krate: &str, rel_path: &str, text: &str) -> SourceFile {
    let lines = lex(text);
    let tokens = tokenize(&lines);
    let fns = resolve_fns(&lines, &tokens);
    let uses = resolve_uses(&lines);
    let type_defs = collect_type_defs(&tokens);
    SourceFile {
        krate: krate.to_string(),
        rel_path: rel_path.to_string(),
        is_bin: rel_path.contains("/src/bin/") || rel_path.ends_with("/main.rs"),
        lines,
        fns,
        uses,
        type_defs,
    }
}

/// Sorted immediate subdirectories of `dir`.
fn sorted_subdirs(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    out.sort();
    out
}

/// Recursively collect `.rs` files, sorting each directory level so the
/// walk order — not just a post-hoc sort — is filesystem-independent.
pub fn collect_rs_files_sorted(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files_sorted(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel_display(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

/// Keywords that look like calls (`if (...)`, `match (...)`) but are not.
const NON_CALL_KEYWORDS: [&str; 24] = [
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "let", "fn", "impl",
    "pub", "use", "mod", "where", "move", "ref", "mut", "dyn", "crate", "super", "break",
    "continue",
];

/// Resolve `fn` items from the token stream.
fn resolve_fns(lines: &[LexedLine], tokens: &[Token]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "fn" || tokens[i].in_test_code {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1).filter(|t| t.is_ident()) else {
            i += 1;
            continue;
        };
        let sig_line = tokens[i].line;
        let name = name_tok.text.clone();
        // Skip generics between name and the parameter parens.
        let mut j = i + 2;
        if tokens.get(j).is_some_and(|t| t.text == "<") {
            let mut angle = 1i32;
            j += 1;
            while j < tokens.len() && angle > 0 {
                match tokens[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        if tokens.get(j).is_none_or(|t| t.text != "(") {
            i += 1;
            continue;
        }
        // Capture the parameter list.
        let mut paren = 1i32;
        let mut params = String::new();
        j += 1;
        while j < tokens.len() && paren > 0 {
            match tokens[j].text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                _ => {}
            }
            if paren > 0 {
                params.push_str(&tokens[j].text);
                params.push(' ');
            }
            j += 1;
        }
        // Scan forward to the body `{` (through return type / where
        // clause) or a `;` ending a bodyless declaration.
        let mut body_start = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "{" => {
                    body_start = Some(tokens[j].line);
                    break;
                }
                ";" => break,
                _ => j += 1,
            }
        }
        let Some(body_start_line) = body_start else {
            fns.push(FnItem {
                name,
                sig_line,
                body_start: None,
                body_end: sig_line,
                params,
                calls: Vec::new(),
                text: String::new(),
            });
            i = j.max(i + 1);
            continue;
        };
        // Body extent: match braces from the opening `{` at tokens[j].
        let open_depth = tokens[j].depth;
        let body_tok_start = j + 1;
        let mut k = j + 1;
        while k < tokens.len() {
            if tokens[k].text == "}" && tokens[k].depth == open_depth {
                break;
            }
            k += 1;
        }
        let body_end = tokens.get(k).map(|t| t.line).unwrap_or(sig_line);
        let calls = extract_calls(&tokens[body_tok_start..k]);
        let text = lines
            .iter()
            .filter(|l| l.number >= sig_line && l.number <= body_end && !l.in_test_code)
            .map(|l| l.code.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        fns.push(FnItem {
            name,
            sig_line,
            body_start: Some(body_start_line),
            body_end,
            params,
            calls,
            text,
        });
        // Continue scanning *inside* the body too, so nested fns are found.
        i += 2;
    }
    fns
}

/// Extract call sites from a body token slice.
fn extract_calls(body: &[Token]) -> Vec<CallRef> {
    let mut calls = Vec::new();
    for (idx, tok) in body.iter().enumerate() {
        if !tok.is_ident() || tok.in_test_code {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&tok.text.as_str()) {
            continue;
        }
        if tok.text.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        // Preceded by `fn` means this is a nested definition, not a call.
        if idx > 0 && body[idx - 1].text == "fn" {
            continue;
        }
        // `name(` — or `name::<T>(` turbofish.
        let mut j = idx + 1;
        if body.get(j).is_some_and(|t| t.text == ":")
            && body.get(j + 1).is_some_and(|t| t.text == ":")
            && body.get(j + 2).is_some_and(|t| t.text == "<")
        {
            let mut angle = 1i32;
            j += 3;
            while j < body.len() && angle > 0 {
                match body[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        if body.get(j).is_some_and(|t| t.text == "(") {
            // `name!(` macro invocations never reach here: `!` intervenes.
            calls.push(classify_call(body, idx, tok.text.clone()));
        }
    }
    calls
}

/// Classify how the call at `body[idx]` names its callee, from the tokens
/// immediately preceding the name.
fn classify_call(body: &[Token], idx: usize, name: String) -> CallRef {
    // `recv.name(` — method call; `self.name(` is same-impl dispatch.
    if idx >= 1 && body[idx - 1].text == "." {
        let kind = if idx >= 2 && body[idx - 2].text == "self" {
            CallKind::SelfMethod
        } else {
            CallKind::Method
        };
        return CallRef {
            name,
            kind,
            qualifier: None,
        };
    }
    // `Qualifier::name(` — the segment right before the final `::` decides.
    if idx >= 2 && body[idx - 1].text == ":" && body[idx - 2].text == ":" {
        let q = body
            .get(idx.wrapping_sub(3))
            .filter(|t| t.is_ident())
            .map(|t| t.text.clone());
        return match q.as_deref() {
            Some("self") | Some("Self") => CallRef {
                name,
                kind: CallKind::SelfMethod,
                qualifier: None,
            },
            // `<T as Trait>::f(` leaves no ident qualifier: stays Qualified
            // with `None`, which resolvers treat as unknowable.
            _ => CallRef {
                name,
                kind: CallKind::Qualified,
                qualifier: q,
            },
        };
    }
    CallRef {
        name,
        kind: CallKind::Plain,
        qualifier: None,
    }
}

/// Collect the names of types and modules *defined* in this file
/// (`struct`/`enum`/`trait`/`union`/`mod`/`type` items and `impl` targets),
/// so qualified calls can be told apart from std/foreign-crate paths.
fn collect_type_defs(tokens: &[Token]) -> Vec<String> {
    let mut defs: Vec<String> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].in_test_code {
            i += 1;
            continue;
        }
        match tokens[i].text.as_str() {
            "struct" | "enum" | "trait" | "union" | "mod" | "type" => {
                if let Some(n) = tokens.get(i + 1).filter(|t| t.is_ident()) {
                    defs.push(n.text.clone());
                }
            }
            "impl" => {
                // `impl<…> Type {` or `impl Trait for Type {`: the
                // implemented-on type is after `for` when present, else the
                // first ident past the generics — never the trait path.
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.text == "<") {
                    let mut angle = 1i32;
                    j += 1;
                    while j < tokens.len() && angle > 0 {
                        match tokens[j].text.as_str() {
                            "<" => angle += 1,
                            ">" => angle -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                }
                let mut first_ident = None;
                let mut for_ident = None;
                while j < tokens.len() && tokens[j].text != "{" && tokens[j].text != ";" {
                    if tokens[j].text == "for" {
                        for_ident = tokens
                            .get(j + 1)
                            .filter(|t| t.is_ident())
                            .map(|t| t.text.clone());
                    } else if first_ident.is_none() && tokens[j].is_ident() {
                        first_ident = Some(tokens[j].text.clone());
                    }
                    j += 1;
                }
                if let Some(n) = for_ident.or(first_ident) {
                    defs.push(n);
                }
            }
            _ => {}
        }
        i += 1;
    }
    defs.sort();
    defs.dedup();
    defs
}

/// Shim crates referenced by bare name rather than an `unicert_` prefix.
const EXTERNAL_CRATES: [&str; 3] = ["rand", "proptest", "criterion"];

/// Resolve crate references from non-test code lines: `unicert_x::` paths,
/// `use unicert_x...` items, and the shim crates. One `UseRef` per
/// referenced crate per file, anchored at its first occurrence.
fn resolve_uses(lines: &[LexedLine]) -> Vec<UseRef> {
    let mut first: BTreeMap<String, usize> = BTreeMap::new();
    for line in lines {
        if line.in_test_code {
            continue;
        }
        let code = &line.code;
        // `unicert_<name>` occurrences (use items and qualified paths).
        let mut start = 0;
        while let Some(found) = code[start..].find("unicert_") {
            let at = start + found;
            let boundary = at == 0
                || !code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let rest = &code[at + "unicert_".len()..];
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if boundary && !name.is_empty() {
                first.entry(name).or_insert(line.number);
            }
            start = at + "unicert_".len();
        }
        // Shim crates: `use rand...` or a qualified `rand::` path.
        for ext in EXTERNAL_CRATES {
            let trimmed = code.trim_start();
            let used = trimmed.strip_prefix("use ").is_some_and(|r| {
                let r = r.trim_start();
                r.starts_with(&format!("{ext}::")) || r == format!("{ext};")
            });
            let qualified = find_path_ref(code, ext);
            if used || qualified {
                first.entry(ext.to_string()).or_insert(line.number);
            }
        }
    }
    first
        .into_iter()
        .map(|(krate, line)| UseRef { krate, line })
        .collect()
}

/// Is there a standalone `name::` path reference in this code line?
fn find_path_ref(code: &str, name: &str) -> bool {
    let mut start = 0;
    while let Some(found) = code[start..].find(name) {
        let at = start + found;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == ':');
        let after = &code[at + name.len()..];
        if before_ok && after.starts_with("::") {
            return true;
        }
        start = at + name.len();
    }
    false
}

/// Parse a manifest's `[dependencies]` entries (unicert + shim crates).
pub fn parse_manifest_deps(text: &str) -> Vec<ManifestDep> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `unicert-asn1.workspace = true` / `rand = { path = ... }`
        let key: String = line
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        if key.is_empty() {
            continue;
        }
        let name = key.strip_prefix("unicert-").unwrap_or(&key).to_string();
        deps.push(ManifestDep {
            name,
            line: idx + 1,
        });
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_tracks_brace_depth() {
        let lines = lex("fn a() { if x { y(); } }\n");
        let tokens = tokenize(&lines);
        let y = tokens.iter().find(|t| t.text == "y").unwrap();
        assert_eq!(y.depth, 2);
        let a = tokens.iter().find(|t| t.text == "a").unwrap();
        assert_eq!(a.depth, 0);
    }

    fn call_names(f: &FnItem) -> Vec<&str> {
        f.calls.iter().map(|c| c.name.as_str()).collect()
    }

    #[test]
    fn fn_items_resolve_with_calls() {
        let src = "fn outer(x: usize) -> usize {\n    helper(x);\n    x.method_call();\n    mod_path::leaf(x)\n}\nfn helper(_x: usize) {}\n";
        let file = analyze_source("t", "crates/t/src/lib.rs", src);
        assert_eq!(file.fns.len(), 2);
        let outer = &file.fns[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.sig_line, 1);
        assert_eq!(outer.body_end, 5);
        assert_eq!(call_names(outer), vec!["helper", "method_call", "leaf"]);
        assert_eq!(outer.calls[0].kind, CallKind::Plain);
        assert_eq!(outer.calls[1].kind, CallKind::Method);
        assert_eq!(outer.calls[2].kind, CallKind::Qualified);
        assert_eq!(outer.calls[2].qualifier.as_deref(), Some("mod_path"));
    }

    #[test]
    fn self_calls_classify_as_self_method() {
        let src = "impl W {\n    fn a(&self) { self.b(); Self::c(); self.field.other(); }\n}\n";
        let file = analyze_source("t", "crates/t/src/lib.rs", src);
        let a = &file.fns[0];
        assert_eq!(a.calls[0].kind, CallKind::SelfMethod);
        assert_eq!(a.calls[1].kind, CallKind::SelfMethod);
        assert_eq!(a.calls[2].kind, CallKind::Method, "{:?}", a.calls[2]);
    }

    #[test]
    fn type_defs_collect_items_and_impl_targets() {
        let src = "pub struct Reader;\npub mod known { }\nimpl fmt::Display for Tag { }\nimpl<'a> Reader { fn f(&self) {} }\ntrait Decode { }\n";
        let file = analyze_source("t", "crates/t/src/lib.rs", src);
        assert_eq!(file.type_defs, vec!["Decode", "Reader", "Tag", "known"]);
        assert!(
            !file.type_defs.contains(&"Display".to_string()),
            "trait path of an impl must not register as a local type"
        );
    }

    #[test]
    fn generic_fns_and_turbofish_calls() {
        let src = "fn g<T: Clone>(v: Vec<T>) -> usize {\n    v.iter().count::<>();\n    parse::<u32>(\"1\")\n}\n";
        let file = analyze_source("t", "crates/t/src/lib.rs", src);
        assert_eq!(file.fns[0].name, "g");
        assert!(call_names(&file.fns[0]).contains(&"parse"));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let src = "fn f() {\n    if (a)(b) {}\n    println!(\"x\");\n    for i in (0..4) {}\n}\n";
        let file = analyze_source("t", "crates/t/src/lib.rs", src);
        let names = call_names(&file.fns[0]);
        assert!(!names.contains(&"println"));
        assert!(!names.iter().any(|c| *c == "if" || *c == "for" || *c == "in"));
    }

    #[test]
    fn test_gated_fns_are_excluded() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn gated() {}\n}\n";
        let file = analyze_source("t", "crates/t/src/lib.rs", src);
        let names: Vec<&str> = file.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn use_refs_cover_unicert_and_shims() {
        let src = "use unicert_asn1::Reader;\nuse rand::Rng;\nfn f() { unicert_x509::parse(); }\n#[cfg(test)]\nmod t { use unicert_chaos::Mutator; }\n";
        let file = analyze_source("t", "crates/t/src/lib.rs", src);
        let names: Vec<&str> = file.uses.iter().map(|u| u.krate.as_str()).collect();
        assert_eq!(names, vec!["asn1", "rand", "x509"]);
    }

    #[test]
    fn manifest_deps_skip_dev_dependencies() {
        let toml = "[package]\nname = \"x\"\n\n[dependencies]\nunicert-asn1.workspace = true\nrand = { path = \"../rand\" }\n\n[dev-dependencies]\nproptest.workspace = true\n";
        let deps = parse_manifest_deps(toml);
        let names: Vec<&str> = deps.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["asn1", "rand"]);
    }

    #[test]
    fn bodyless_trait_methods_resolve() {
        let src = "trait T {\n    fn required(&self) -> usize;\n    fn provided(&self) -> usize { self.required() }\n}\n";
        let file = analyze_source("t", "crates/t/src/lib.rs", src);
        assert_eq!(file.fns.len(), 2);
        assert_eq!(file.fns[0].body_start, None);
        assert_eq!(call_names(&file.fns[1]), vec!["required"]);
        assert_eq!(file.fns[1].calls[0].kind, CallKind::SelfMethod);
    }
}
