//! Pass 2 — the panic-safety source audit.
//!
//! Walks the untrusted-input substrate crates and flags constructs that
//! can panic on hostile bytes: `unwrap`/`expect`, panic-family macros,
//! slice indexing with non-literal indexes, and unchecked `+`/`*` on
//! length-typed values in reader hot paths. Everything a human has vetted
//! carries a trailing `// analysis:allow(<rule>) reason` annotation; the
//! audit enforces that the annotation names the right rule *and* gives a
//! non-empty reason.

use crate::lexer::{lex, LexedLine};
use crate::model::Workspace;
use crate::{Finding, Violation, PASS_SOURCE};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The crates whose `src/` trees the audit walks: the four untrusted-input
/// substrates plus `telemetry`, which runs inline on every pipeline worker
/// and must never be the thing that takes the survey down, and `store`,
/// which parses hostile on-disk state back into the survey.
pub const AUDITED_CRATES: [&str; 10] =
    ["asn1", "x509", "idna", "unicode", "telemetry", "core", "lint", "corpus", "chaos", "store"];

/// Files whose length arithmetic is additionally audited (`len_arith`).
/// These are the DER reader hot paths every untrusted byte flows through —
/// the budgeted reader, tag/length decoding, the lazy TLV cursor, and the
/// zero-copy certificate view built on top of them.
pub const LEN_ARITH_FILES: [&str; 4] = [
    "asn1/src/reader.rs",
    "asn1/src/tag.rs",
    "asn1/src/cursor.rs",
    "x509/src/view.rs",
];

/// Identifier fragments that mark a value as length-typed.
const LENGTH_IDENT_PARTS: [&str; 8] =
    ["len", "length", "size", "offset", "pos", "idx", "index", "count"];

/// One audit rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `.unwrap()` / `.unwrap_err()`.
    Unwrap,
    /// `.expect(` / `.expect_err(`.
    Expect,
    /// `panic!`, `unreachable!`, `todo!`, `unimplemented!`.
    PanicMacro,
    /// Slice/array indexing with a non-literal index expression.
    SliceIndex,
    /// Unchecked `+` / `*` on length-typed values in reader hot paths.
    LenArith,
    /// `// analysis:allow` present but carrying no reason.
    AllowMissingReason,
    /// `// analysis:allow` naming a rule that did not fire on the line.
    UnusedAllow,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    UnsafeAttrMissing,
}

impl Rule {
    /// Rule name as written in `analysis:allow(...)` and TSV reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::Expect => "expect",
            Rule::PanicMacro => "panic_macro",
            Rule::SliceIndex => "slice_index",
            Rule::LenArith => "len_arith",
            Rule::AllowMissingReason => "allow_missing_reason",
            Rule::UnusedAllow => "unused_allow",
            Rule::UnsafeAttrMissing => "unsafe_attr_missing",
        }
    }
}

/// A parsed `// analysis:allow(rule, rule2) reason` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule names the annotation suppresses.
    pub rules: Vec<String>,
    /// The human justification following the closing paren.
    pub reason: String,
}

/// Parse the annotation out of a line comment, if present.
pub fn parse_allow(comment: &str) -> Option<Result<Allow, String>> {
    let trimmed = comment.trim_start();
    let rest = trimmed.strip_prefix("analysis:allow")?;
    let rest = rest.trim_start();
    let Some(inner_and_tail) = rest.strip_prefix('(') else {
        return Some(Err("missing '(' after analysis:allow".to_string()));
    };
    let Some(close) = inner_and_tail.find(')') else {
        return Some(Err("unterminated analysis:allow(...)".to_string()));
    };
    let rules: Vec<String> = inner_and_tail[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Some(Err("analysis:allow names no rules".to_string()));
    }
    let reason = inner_and_tail[close + 1..].trim().to_string();
    Some(Ok(Allow { rules, reason }))
}

/// Audit every `.rs` file under the audited crates' `src/` trees,
/// resolving `analysis:allow` annotations locally (audit rules only).
///
/// This is the standalone entry point; the engine prefers [`run_model`],
/// which returns raw findings for central cross-pass resolution.
pub fn run(repo_root: &Path) -> Vec<Violation> {
    let ws = Workspace::load(repo_root);
    let findings = run_model(repo_root, &ws);
    let active: BTreeSet<&str> = crate::engine::Pass::Source
        .rules()
        .iter()
        .copied()
        .collect();
    crate::engine::resolve(&ws, findings, &active)
}

/// Raw audit findings over the audited crates' files in the workspace
/// model (no allow resolution — the engine does that centrally).
pub fn run_model(repo_root: &Path, ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for krate in AUDITED_CRATES {
        let Some(info) = ws
            .crates
            .iter()
            .find(|c| c.group == "crates" && c.name == krate)
        else {
            // A missing crate would make the audit pass vacuously — treat
            // a misnamed --root as a violation, not a clean bill.
            findings.push(Finding {
                pass: PASS_SOURCE,
                rule: "io_error",
                file: repo_root
                    .join("crates")
                    .join(krate)
                    .join("src")
                    .display()
                    .to_string(),
                line: 0,
                message: "no .rs files found; is --root pointing at the repo?".to_string(),
            });
            continue;
        };
        for file in &info.files {
            findings.extend(audit_lines(&file.rel_path, &file.lines));
        }
    }
    findings
}

/// Raw findings for one file's classified lines.
pub fn audit_lines(rel_path: &str, lines: &[LexedLine]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let len_arith_applies = LEN_ARITH_FILES.iter().any(|f| rel_path.ends_with(f));
    for line in lines {
        if line.in_test_code {
            continue;
        }
        let mut fired: Vec<(Rule, String)> = Vec::new();
        scan_calls(&line.code, &mut fired);
        scan_macros(&line.code, &mut fired);
        scan_slice_index(&line.code, &mut fired);
        if len_arith_applies {
            scan_len_arith(&line.code, &mut fired);
        }
        for (rule, detail) in fired {
            findings.push(Finding {
                pass: PASS_SOURCE,
                rule: rule.name(),
                file: rel_path.to_string(),
                line: line.number,
                message: detail,
            });
        }
    }
    findings
}

/// Audit one file's text, resolving annotations against the audit's own
/// rule set (exposed for unit tests and ad-hoc single-file checks).
pub fn audit_file(rel_path: &str, text: &str, violations: &mut Vec<Violation>) {
    let lines = lex(text);
    let findings = audit_lines(rel_path, &lines);
    let krate = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("file");
    let ws = Workspace::from_sources(&[(krate, rel_path, text)]);
    let active: BTreeSet<&str> = crate::engine::Pass::Source
        .rules()
        .iter()
        .copied()
        .collect();
    violations.extend(crate::engine::resolve(&ws, findings, &active));
}

/// `.unwrap()` / `.unwrap_err()` / `.expect(` / `.expect_err(`.
fn scan_calls(code: &str, fired: &mut Vec<(Rule, String)>) {
    for (needle, rule, msg) in [
        (".unwrap()", Rule::Unwrap, "unwrap() can panic on untrusted input"),
        (".unwrap_err()", Rule::Unwrap, "unwrap_err() can panic on untrusted input"),
        (".expect(", Rule::Expect, "expect() can panic on untrusted input"),
        (".expect_err(", Rule::Expect, "expect_err() can panic on untrusted input"),
    ] {
        for _ in code.matches(needle) {
            fired.push((rule, msg.to_string()));
        }
    }
}

/// Panic-family macros.
fn scan_macros(code: &str, fired: &mut Vec<(Rule, String)>) {
    for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
        let mut start = 0;
        while let Some(found) = code[start..].find(mac) {
            let at = start + found;
            // Reject matches inside longer identifiers (e.g. `dont_panic!`).
            let prev = code[..at].chars().next_back();
            let is_boundary = !prev.is_some_and(|c| c.is_alphanumeric() || c == '_');
            // `debug_assert!`-style bangs are assertions, not these macros,
            // and never match the needles; no further filtering needed.
            if is_boundary {
                fired.push((
                    Rule::PanicMacro,
                    format!("{mac} aborts on untrusted input paths"),
                ));
            }
            start = at + mac.len();
        }
    }
}

/// Is this bracketed expression an index operation (vs. attribute, array
/// literal, or type)? The char *immediately* before `[` decides: an index
/// `[` always abuts its expression (`buf[i]`), while type positions like
/// `&'a [u8]` or `: [u8; 4]` are separated by a space, `<`, or `:`.
fn is_index_context(before: Option<char>) -> bool {
    matches!(before, Some(c) if c.is_alphanumeric() || c == '_' || c == ')' || c == ']')
}

/// Literal indexes (`buf[0]`, `buf[..4]`, `buf[1..3]`) are bounds-known;
/// everything else is flagged.
fn index_is_literal(inner: &str) -> bool {
    let inner = inner.trim();
    if inner.is_empty() {
        return true;
    }
    let is_lit_num = |s: &str| {
        let s = s.trim().trim_start_matches('=');
        !s.is_empty() && s.chars().all(|c| c.is_ascii_digit() || c == '_')
    };
    match inner.split_once("..") {
        Some((lo, hi)) => {
            (lo.trim().is_empty() || is_lit_num(lo)) && (hi.trim().is_empty() || is_lit_num(hi))
        }
        None => is_lit_num(inner),
    }
}

/// Find `expr[non-literal]` index operations.
fn scan_slice_index(code: &str, fired: &mut Vec<(Rule, String)>) {
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '[' {
            let before = if i > 0 { Some(chars[i - 1]) } else { None };
            if is_index_context(before) {
                // Find the matching close bracket on this line.
                let mut depth = 1;
                let mut j = i + 1;
                while j < chars.len() && depth > 0 {
                    match chars[j] {
                        '[' => depth += 1,
                        ']' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let inner: String = chars[i + 1..j.saturating_sub(1)].iter().collect();
                if depth == 0 && !index_is_literal(&inner) {
                    fired.push((
                        Rule::SliceIndex,
                        format!("non-literal index `[{}]` can panic out of bounds", inner.trim()),
                    ));
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
}

/// Does this identifier look length-typed?
fn is_length_ident(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    LENGTH_IDENT_PARTS
        .iter()
        .any(|part| lower.split('_').any(|seg| seg == *part) || lower == *part)
}

/// Find unchecked `+` / `*` with a length-typed operand.
fn scan_len_arith(code: &str, fired: &mut Vec<(Rule, String)>) {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '+' && c != '*' {
            continue;
        }
        // `+=` means the left side accumulates; still addition.
        // Skip unary contexts for `*` (deref) and `+` in `+=`'s '=' char.
        let prev = chars[..i].iter().rev().find(|ch| !ch.is_whitespace()).copied();
        let prev_is_operand = matches!(prev, Some(p) if p.is_alphanumeric() || p == '_' || p == ')' || p == ']');
        if !prev_is_operand {
            continue;
        }
        // Reject `++`/`**` nonsense and `->`/`=>`-adjacent forms; grab the
        // operand identifiers on both sides.
        let left = ident_before(&chars, i);
        let mut k = i + 1;
        if chars.get(k) == Some(&'=') {
            k += 1; // `+=`
        }
        let right = ident_after(&chars, k);
        let lengthish = |s: &Option<String>| s.as_deref().is_some_and(is_length_ident);
        if lengthish(&left) || lengthish(&right) {
            fired.push((
                Rule::LenArith,
                format!(
                    "unchecked `{}` on length-typed value ({}) — use checked_*/saturating_*",
                    if chars.get(i + 1) == Some(&'=') {
                        format!("{c}=")
                    } else {
                        c.to_string()
                    },
                    left.or(right).unwrap_or_default()
                ),
            ));
        }
    }
}

/// The identifier ending immediately before position `i` (skipping spaces).
fn ident_before(chars: &[char], i: usize) -> Option<String> {
    let mut j = i;
    while j > 0 && chars[j - 1].is_whitespace() {
        j -= 1;
    }
    let end = j;
    while j > 0 && (chars[j - 1].is_alphanumeric() || chars[j - 1] == '_') {
        j -= 1;
    }
    if j == end {
        None
    } else {
        Some(chars[j..end].iter().collect())
    }
}

/// The identifier starting at/after position `i` (skipping spaces).
fn ident_after(chars: &[char], i: usize) -> Option<String> {
    let mut j = i;
    while j < chars.len() && chars[j].is_whitespace() {
        j += 1;
    }
    let start = j;
    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
        j += 1;
    }
    if j == start {
        None
    } else {
        Some(chars[start..j].iter().collect())
    }
}

/// Crate-root hygiene: every workspace crate must forbid `unsafe_code`.
pub fn check_unsafe_attrs(repo_root: &Path, crate_roots: &[PathBuf]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for root in crate_roots {
        let rel = root
            .strip_prefix(repo_root)
            .unwrap_or(root)
            .display()
            .to_string();
        let Ok(text) = std::fs::read_to_string(root) else {
            violations.push(Violation {
                pass: PASS_SOURCE,
                rule: "io_error",
                location: rel,
                message: "cannot read crate root".to_string(),
            });
            continue;
        };
        let lines = lex(&text);
        let has_attr = lines.iter().any(|l: &LexedLine| {
            let c = l.code.trim();
            c.starts_with("#![forbid(unsafe_code)]") || c.starts_with("#![deny(unsafe_code)]")
        });
        if !has_attr {
            violations.push(Violation {
                pass: PASS_SOURCE,
                rule: Rule::UnsafeAttrMissing.name(),
                location: format!("{rel}:1"),
                message: "crate root lacks #![forbid(unsafe_code)] (or deny + analysis:allow)"
                    .to_string(),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit_str(text: &str) -> Vec<Violation> {
        let mut v = Vec::new();
        audit_file("crates/asn1/src/reader.rs", text, &mut v);
        v
    }

    #[test]
    fn flags_panic_family() {
        let v = audit_str("fn f() { x.unwrap(); y.expect(\"no\"); panic!(\"x\"); }\n");
        let rules: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"unwrap"));
        assert!(rules.contains(&"expect"));
        assert!(rules.contains(&"panic_macro"));
    }

    #[test]
    fn ignores_comments_strings_and_tests() {
        let v = audit_str(
            "// x.unwrap()\nlet s = \"panic!\";\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let v = audit_str("let t = x.unwrap(); // analysis:allow(unwrap) checked len above\n");
        assert!(v.is_empty(), "{v:?}");
        let v = audit_str("let t = x.unwrap(); // analysis:allow(unwrap)\n");
        assert_eq!(v.len(), 2); // missing reason + the unsuppressed unwrap
        assert!(v.iter().any(|x| x.rule == "allow_missing_reason"));
    }

    #[test]
    fn unused_allow_is_reported() {
        let v = audit_str("let y = 1; // analysis:allow(unwrap) stale annotation\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unused_allow");
    }

    #[test]
    fn slice_index_literal_vs_dynamic() {
        assert!(audit_str("let a = buf[0]; let b = &buf[..4]; let c = buf[1..3];\n").is_empty());
        let v = audit_str("let a = buf[i];\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "slice_index");
        let v = audit_str("let a = &buf[..n];\n");
        assert_eq!(v[0].rule, "slice_index");
    }

    #[test]
    fn attributes_and_types_are_not_indexing() {
        let v = audit_str("#[derive(Debug)]\nstruct A { b: [u8; 4] }\nlet x: Vec<[u8; 2]> = vec![];\n");
        assert!(v.is_empty(), "{v:?}");
        // Slice types in references and return positions are not indexing.
        let v = audit_str("fn f<'a>(input: &'a [u8]) -> Result<&'a [u8]> { todo(input) }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn len_arith_only_in_hot_files() {
        let hot = audit_str("let end = pos + len;\n");
        assert!(hot.iter().any(|v| v.rule == "len_arith"), "{hot:?}");
        let mut cold = Vec::new();
        audit_file("crates/x509/src/name.rs", "let end = pos + len;\n", &mut cold);
        assert!(cold.is_empty(), "{cold:?}");
    }

    #[test]
    fn checked_arith_is_clean() {
        let v = audit_str("let end = pos.checked_add(len)?;\n");
        assert!(v.is_empty(), "{v:?}");
    }
}
