//! The rule engine: runs every source pass over one shared [`Workspace`]
//! model and resolves `// analysis:allow(rule) reason` annotations
//! centrally, so one grammar (and one unused-allow detector) covers the
//! audit and all four invariant passes.
//!
//! Resolution semantics:
//! - a finding on a line whose trailing annotation names its rule (with a
//!   non-empty reason) is suppressed;
//! - an annotation with no reason, or malformed, is itself a violation
//!   (`allow_missing_reason`) and suppresses nothing;
//! - an annotation naming a rule that is *active in this run* but did not
//!   fire on that line is a violation (`unused_allow`) — stale suppressions
//!   cannot accumulate;
//! - an annotation naming a rule the analyzer has never heard of is
//!   `unused_allow` too (typos must not silently disable nothing);
//! - rules belonging to passes that did not run are left alone, so a
//!   partial run (`--pass source`) never miscounts another pass's allows.

use crate::audit::{self, parse_allow};
use crate::config::AnalysisConfig;
use crate::model::Workspace;
use crate::passes::{alloc, determinism, layering, recursion};
use crate::{catalog, Finding, Violation, PASS_SOURCE};
use std::collections::BTreeSet;
use std::path::Path;

/// Every rule any source pass can emit (the allow-annotation namespace).
pub const ALL_SOURCE_RULES: [&str; 13] = [
    // audit
    "unwrap",
    "expect",
    "panic_macro",
    "slice_index",
    "len_arith",
    "unsafe_attr_missing",
    // determinism
    "map_iter",
    "clock",
    "thread_dependence",
    "float_accum",
    // allocation-bound
    "unbounded_alloc",
    // recursion
    "unbounded_recursion",
    // layering
    "layer_violation",
];

/// The source passes the engine can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pass {
    /// Catalog meta-linter (registry vs. paper).
    Catalog,
    /// Panic-safety source audit.
    Source,
    /// Determinism pass (report path must be clock/order-free).
    Determinism,
    /// Allocation-bound pass.
    Alloc,
    /// Unbounded-recursion pass.
    Recursion,
    /// Crate-layering pass.
    Layering,
}

impl Pass {
    /// All passes, in execution order.
    pub const ALL: [Pass; 6] = [
        Pass::Catalog,
        Pass::Source,
        Pass::Determinism,
        Pass::Alloc,
        Pass::Recursion,
        Pass::Layering,
    ];

    /// CLI name of the pass.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Catalog => "catalog",
            Pass::Source => "source",
            Pass::Determinism => "determinism",
            Pass::Alloc => "alloc",
            Pass::Recursion => "recursion",
            Pass::Layering => "layering",
        }
    }

    /// Parse a CLI pass name.
    pub fn from_name(name: &str) -> Option<Pass> {
        Pass::ALL.into_iter().find(|p| p.name() == name)
    }

    /// The rules this pass can emit (for unused-allow scoping).
    pub fn rules(self) -> &'static [&'static str] {
        match self {
            Pass::Catalog => &[],
            Pass::Source => &[
                "unwrap",
                "expect",
                "panic_macro",
                "slice_index",
                "len_arith",
                "unsafe_attr_missing",
            ],
            Pass::Determinism => &["map_iter", "clock", "thread_dependence", "float_accum"],
            Pass::Alloc => &["unbounded_alloc"],
            Pass::Recursion => &["unbounded_recursion"],
            Pass::Layering => &["layer_violation"],
        }
    }
}

/// Run the selected passes over `root` and resolve annotations.
pub fn run_passes(root: &Path, passes: &[Pass]) -> Vec<Violation> {
    let cfg = AnalysisConfig::default();
    let ws = Workspace::load(root);
    let mut violations = Vec::new();
    if passes.contains(&Pass::Catalog) {
        violations.extend(catalog::run());
    }

    let mut findings: Vec<Finding> = Vec::new();
    if passes.contains(&Pass::Source) {
        findings.extend(audit::run_model(root, &ws));
        violations.extend(audit::check_unsafe_attrs(
            root,
            &crate::workspace_crate_roots(root),
        ));
    }
    if passes.contains(&Pass::Determinism) {
        findings.extend(determinism::run(&ws, &cfg));
    }
    if passes.contains(&Pass::Alloc) {
        findings.extend(alloc::run(&ws, &cfg));
    }
    if passes.contains(&Pass::Recursion) {
        findings.extend(recursion::run(&ws, &cfg));
    }
    if passes.contains(&Pass::Layering) {
        findings.extend(layering::run(&ws, &cfg));
    }

    let active: BTreeSet<&str> = passes.iter().flat_map(|p| p.rules()).copied().collect();
    violations.extend(resolve(&ws, findings, &active));
    violations
}

/// Run everything (the tier-1 / CI entry point).
pub fn run_full(root: &Path) -> Vec<Violation> {
    run_passes(root, &Pass::ALL)
}

/// Resolve allow annotations against raw findings.
///
/// `active_rules` scopes unused-allow detection to the passes that ran.
pub fn resolve(ws: &Workspace, findings: Vec<Finding>, active_rules: &BTreeSet<&str>) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Index findings by (file, line).
    let fired = |file: &str, line: usize, rule: &str| {
        findings
            .iter()
            .any(|f| f.rule == rule && f.line == line && f.file == file)
    };

    // Walk every annotation in the workspace.
    let mut suppressed: BTreeSet<(String, usize, String)> = BTreeSet::new();
    for file in ws.files() {
        for line in &file.lines {
            if line.in_test_code {
                continue;
            }
            let Some(parsed) = line.line_comment.as_deref().and_then(parse_allow) else {
                continue;
            };
            let loc = format!("{}:{}", file.rel_path, line.number);
            match parsed {
                Err(msg) => violations.push(Violation {
                    pass: PASS_SOURCE,
                    rule: "allow_missing_reason",
                    location: loc,
                    message: format!("malformed analysis:allow annotation: {msg}"),
                }),
                Ok(allow) => {
                    if allow.reason.is_empty() {
                        violations.push(Violation {
                            pass: PASS_SOURCE,
                            rule: "allow_missing_reason",
                            location: loc,
                            message: format!(
                                "analysis:allow({}) has no reason — annotations must justify themselves",
                                allow.rules.join(", ")
                            ),
                        });
                        continue;
                    }
                    for rule in &allow.rules {
                        let known = ALL_SOURCE_RULES.contains(&rule.as_str());
                        if !known {
                            violations.push(Violation {
                                pass: PASS_SOURCE,
                                rule: "unused_allow",
                                location: loc.clone(),
                                message: format!(
                                    "analysis:allow({rule}) names an unknown rule — known rules: {}",
                                    ALL_SOURCE_RULES.join(", ")
                                ),
                            });
                            continue;
                        }
                        if fired(&file.rel_path, line.number, rule) {
                            suppressed.insert((
                                file.rel_path.clone(),
                                line.number,
                                rule.clone(),
                            ));
                        } else if active_rules.contains(rule.as_str()) {
                            violations.push(Violation {
                                pass: PASS_SOURCE,
                                rule: "unused_allow",
                                location: loc.clone(),
                                message: format!(
                                    "analysis:allow({rule}) names a rule that did not fire here — remove it"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    for f in findings {
        if suppressed.contains(&(f.file.clone(), f.line, f.rule.to_string())) {
            continue;
        }
        violations.push(Violation {
            pass: f.pass,
            rule: f.rule,
            location: format!("{}:{}", f.file, f.line),
            message: f.message,
        });
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workspace;

    #[test]
    fn cross_pass_allow_resolves() {
        // A determinism allow on a clock line: suppressed by the engine,
        // and NOT reported as unused by a source-only rule scope.
        let src = "fn build() -> SurveyReport {\n    let t = Instant::now(); // analysis:allow(clock) wall time never reaches report bytes\n    SurveyReport::default()\n}\n";
        let ws = Workspace::from_sources(&[("core", "crates/core/src/survey.rs", src)]);
        let cfg = AnalysisConfig::default();
        let findings = crate::passes::determinism::run(&ws, &cfg);
        assert_eq!(findings.len(), 1);
        let active: BTreeSet<&str> = Pass::Determinism.rules().iter().copied().collect();
        let v = resolve(&ws, findings, &active);
        assert!(v.is_empty(), "{v:?}");

        // Source-only scope: the clock allow is out of scope, not "unused".
        let active: BTreeSet<&str> = Pass::Source.rules().iter().copied().collect();
        let v = resolve(&ws, Vec::new(), &active);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unknown_rule_names_are_flagged() {
        let src = "fn f() {} // analysis:allow(hashmap_iteration) typo'd rule name\n";
        let ws = Workspace::from_sources(&[("core", "crates/core/src/x.rs", src)]);
        let active: BTreeSet<&str> = Pass::Source.rules().iter().copied().collect();
        let v = resolve(&ws, Vec::new(), &active);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "unused_allow");
        assert!(v[0].message.contains("unknown rule"));
    }

    #[test]
    fn stale_allow_in_active_scope_is_unused() {
        let src = "fn f() {} // analysis:allow(clock) nothing fires here\n";
        let ws = Workspace::from_sources(&[("core", "crates/core/src/x.rs", src)]);
        let active: BTreeSet<&str> = Pass::Determinism.rules().iter().copied().collect();
        let v = resolve(&ws, Vec::new(), &active);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "unused_allow");
    }
}
