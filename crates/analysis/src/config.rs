//! Static configuration for the analyzer passes.
//!
//! Everything policy-shaped lives here so the passes themselves stay pure
//! scanners: which crates each pass walks, which modules are exempt from
//! the determinism rules, and the one true crate-layering DAG.

use std::collections::BTreeMap;

/// Analyzer configuration consumed by the passes.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Crates whose code is exempt from the determinism pass. Telemetry is
    /// timing *by design* (its output never feeds report bytes), and the
    /// analyzer itself never runs inside the survey.
    pub determinism_exempt_crates: Vec<&'static str>,
    /// Path fragments always scanned by the determinism pass even when the
    /// call graph cannot see into them: the 95 lint `check` functions and
    /// the per-cert cache run *inside* report construction behind fn
    /// pointers, which the lightweight call graph cannot follow.
    pub determinism_always_scan: Vec<&'static str>,
    /// Crates walked by the unbounded-recursion pass: the DER/X.509
    /// substrates plus the mutation engine, where hostile nesting lives.
    pub recursion_crates: Vec<&'static str>,
    /// The allowed dependency DAG: crate short name → crates it may depend
    /// on (directly), from manifests and `use` statements alike. The chain
    /// is unicode→idna→asn1→x509→lint→core→bench with telemetry and chaos
    /// as leaves; dev-dependencies are exempt (cycles are legal in cargo).
    pub allowed_deps: BTreeMap<&'static str, Vec<&'static str>>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        let mut allowed: BTreeMap<&'static str, Vec<&'static str>> = BTreeMap::new();
        // Foundation layers (no unicert deps).
        allowed.insert("unicode", vec![]);
        allowed.insert("telemetry", vec![]);
        // The substrate chain.
        allowed.insert("idna", vec!["unicode"]);
        allowed.insert("asn1", vec!["unicode", "idna"]);
        allowed.insert("x509", vec!["asn1", "idna", "unicode"]);
        allowed.insert(
            "lint",
            vec!["x509", "asn1", "idna", "unicode", "telemetry"],
        );
        // Mid-layer consumers.
        allowed.insert(
            "corpus",
            vec!["lint", "x509", "asn1", "idna", "unicode", "telemetry", "rand"],
        );
        allowed.insert(
            "parsers",
            vec!["x509", "asn1", "unicode", "telemetry", "rand"],
        );
        allowed.insert("monitors", vec!["x509", "asn1", "idna", "unicode"]);
        allowed.insert(
            "threats",
            vec!["lint", "x509", "asn1", "idna", "unicode"],
        );
        allowed.insert("chaos", vec!["x509", "asn1", "rand"]);
        // Aggregation and drivers.
        allowed.insert(
            "core",
            vec![
                "lint", "x509", "asn1", "idna", "unicode", "telemetry", "corpus", "parsers",
                "monitors", "threats", "rand",
            ],
        );
        allowed.insert(
            "store",
            vec!["core", "lint", "x509", "asn1", "corpus", "telemetry"],
        );
        allowed.insert("bench", vec!["core", "chaos", "store", "telemetry", "rand"]);
        allowed.insert("analysis", vec!["asn1", "lint"]);
        // Shims are leaves; proptest builds on the rand shim.
        allowed.insert("rand", vec![]);
        allowed.insert("proptest", vec!["rand"]);
        allowed.insert("criterion", vec![]);

        AnalysisConfig {
            determinism_exempt_crates: vec!["telemetry", "analysis"],
            determinism_always_scan: vec![
                "lint/src/catalog/",
                "lint/src/context.rs",
                "lint/src/helpers.rs",
                "lint/src/profiles/",
            ],
            recursion_crates: vec!["asn1", "x509", "chaos"],
            allowed_deps: allowed,
        }
    }
}
