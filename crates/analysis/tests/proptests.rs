//! Property-based tests for the analyzer's lexer and line classification.
//!
//! The whole engine stands on the lexer's two promises: (1) line structure
//! is preserved (finding N on line L means source line L), and (2) comment
//! and string-literal interiors are blanked out of `code`, so no pass can
//! fire on text the compiler never executes.

use proptest::prelude::*;
use unicert_analysis::audit;
use unicert_analysis::lexer::lex;
use unicert_analysis::model::{analyze_source, tokenize};

proptest! {
    /// One `LexedLine` per input line, numbered 1..=n, whatever the input
    /// — quotes, braces, and half-open literals included.
    #[test]
    fn lexer_preserves_line_structure(
        lines in proptest::collection::vec("[ -~]{0,40}", 0..12)
    ) {
        let src = lines.join("\n");
        let lexed = lex(&src);
        prop_assert_eq!(lexed.len(), src.lines().count());
        for (i, l) in lexed.iter().enumerate() {
            prop_assert_eq!(l.number, i + 1);
        }
    }

    /// Panic-prone text inside a string literal is invisible to the code
    /// channel and produces no audit findings.
    #[test]
    fn string_interiors_produce_no_findings(payload in "[a-z0-9 ]{0,20}") {
        let src = format!("let msg = \"{payload}.unwrap() panic!(boom)\";\n");
        let lexed = lex(&src);
        prop_assert!(!lexed[0].code.contains("unwrap"), "{:?}", lexed[0]);
        prop_assert!(!lexed[0].code.contains("panic"), "{:?}", lexed[0]);
        let findings = audit::audit_lines("crates/asn1/src/reader.rs", &lexed);
        prop_assert!(findings.is_empty(), "{findings:?}");
    }

    /// The same holds for raw strings, where `\"` does not escape.
    #[test]
    fn raw_string_interiors_produce_no_findings(payload in "[a-z0-9 ]{0,20}") {
        let src = format!("let msg = r#\"{payload}.unwrap() buf[i]\"#;\n");
        let lexed = lex(&src);
        prop_assert!(!lexed[0].code.contains("unwrap"), "{:?}", lexed[0]);
        let findings = audit::audit_lines("crates/asn1/src/reader.rs", &lexed);
        prop_assert!(findings.is_empty(), "{findings:?}");
    }

    /// Comment text is routed to the comment channel, not `code`.
    #[test]
    fn comment_interiors_produce_no_findings(payload in "[a-z0-9 ]{0,20}") {
        let src = format!("helper(); // {payload} x.unwrap() buf[i]\n");
        let lexed = lex(&src);
        prop_assert!(!lexed[0].code.contains("unwrap"), "{:?}", lexed[0]);
        let findings = audit::audit_lines("crates/asn1/src/reader.rs", &lexed);
        prop_assert!(findings.is_empty(), "{findings:?}");
    }

    /// Tokenization round-trip: every token's line number points at a line
    /// whose code actually contains the token text, and analysis is
    /// deterministic (two runs agree exactly).
    #[test]
    fn tokens_anchor_to_their_lines(
        names in proptest::collection::vec("[a-z_][a-z0-9_]{0,8}", 1..6)
    ) {
        let src: String = names
            .iter()
            .map(|n| format!("fn {n}() {{ inner_{n}(); }}\n"))
            .collect();
        let lexed = lex(&src);
        let tokens = tokenize(&lexed);
        for tok in &tokens {
            let line = &lexed[tok.line - 1];
            prop_assert!(
                line.code.contains(tok.text.as_str()),
                "token {:?} not on line {}: {:?}",
                tok.text,
                tok.line,
                line.code
            );
        }
        let a = analyze_source("t", "crates/t/src/lib.rs", &src);
        let b = analyze_source("t", "crates/t/src/lib.rs", &src);
        prop_assert_eq!(a.fns.len(), b.fns.len());
        for (fa, fb) in a.fns.iter().zip(&b.fns) {
            prop_assert_eq!(&fa.name, &fb.name);
            prop_assert_eq!(&fa.calls, &fb.calls);
        }
    }
}
