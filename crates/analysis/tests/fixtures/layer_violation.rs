//! Seeded violation: `layer_violation` must fire on line 3 — `unicode` is
//! the bottom layer and may not depend on `x509`.
use unicert_x509::Certificate;
