//! Seeded violation: `len_arith` must fire on line 5 (the fixture is
//! addressed as a DER-reader hot path, where length arithmetic is audited).

pub fn f(pos: usize, len: usize) -> usize {
    pos + len
}
