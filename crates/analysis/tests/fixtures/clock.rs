//! Seeded violation: `clock` must fire on line 4.

pub fn build() -> SurveyReport {
    let started = Instant::now();
    drop(started);
    SurveyReport::default()
}
