//! Seeded violation: `unbounded_alloc` must fire on line 4.

pub fn read_value(declared_len: usize) -> Vec<u8> {
    Vec::with_capacity(declared_len)
}
