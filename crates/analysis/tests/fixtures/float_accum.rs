//! Seeded violation: `float_accum` must fire on line 6.

pub fn build(values: &[u64]) -> SurveyReport {
    let mut acc = 0.0;
    for v in values {
        acc += *v as f64;
    }
    SurveyReport::default()
}
