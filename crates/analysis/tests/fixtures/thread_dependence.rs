//! Seeded violation: `thread_dependence` must fire on line 4.

pub fn build() -> SurveyReport {
    let shards = std::thread::available_parallelism();
    drop(shards);
    SurveyReport::default()
}
