//! Seeded violation: `unbounded_recursion` must fire on line 4 (the
//! participant's signature line).

pub fn descend(input: &[u8]) {
    if let Some((_, rest)) = input.split_first() {
        descend(rest);
    }
}
