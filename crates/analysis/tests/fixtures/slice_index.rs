//! Seeded violation: `slice_index` must fire on line 4.

pub fn f(buf: &[u8], i: usize) -> u8 {
    buf[i]
}
