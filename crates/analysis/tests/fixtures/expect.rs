//! Seeded violation: `expect` must fire on line 4.

pub fn f(x: Option<u8>) -> u8 {
    x.expect("boom")
}
