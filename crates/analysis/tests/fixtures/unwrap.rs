//! Seeded violation: `unwrap` must fire on line 4.

pub fn f(x: Option<u8>) -> u8 {
    x.unwrap()
}
