//! Seeded violation: `map_iter` must fire on line 5.

pub fn build(counts: HashMap<String, u64>) -> SurveyReport {
    let mut out = SurveyReport::default();
    for k in counts.keys() {
        out.note(k);
    }
    out
}
