//! Seeded violation: `panic_macro` must fire on line 4.

pub fn f() -> u8 {
    panic!("nope")
}
