//! Seeded-violation fixtures: every rule in the engine's namespace fires
//! on its fixture at exactly the expected `file:line`, and an
//! `analysis:allow` annotation on that line suppresses it.
//!
//! Fixture sources live in `tests/fixtures/` as *data* — they are lexed
//! and analyzed, never compiled — so each can seed exactly one violation
//! without tripping the real workspace run (which only scans `src/`).

use std::collections::BTreeSet;
use std::path::Path;
use unicert_analysis::config::AnalysisConfig;
use unicert_analysis::engine::{self};
use unicert_analysis::model::Workspace;
use unicert_analysis::passes::{alloc, determinism, layering, recursion};
use unicert_analysis::{audit, Violation};

/// (fixture file, host crate, repo-relative path the fixture pretends to
/// live at, expected rule, expected line).
const FIXTURES: &[(&str, &str, &str, &str, usize)] = &[
    ("unwrap.rs", "asn1", "crates/asn1/src/fixture.rs", "unwrap", 4),
    ("expect.rs", "asn1", "crates/asn1/src/fixture.rs", "expect", 4),
    ("panic_macro.rs", "asn1", "crates/asn1/src/fixture.rs", "panic_macro", 4),
    ("slice_index.rs", "asn1", "crates/asn1/src/fixture.rs", "slice_index", 4),
    // len_arith only audits the DER-reader hot paths, so the fixture is
    // addressed as one of them.
    ("len_arith.rs", "asn1", "crates/asn1/src/reader.rs", "len_arith", 5),
    ("map_iter.rs", "core", "crates/core/src/fixture.rs", "map_iter", 5),
    ("clock.rs", "core", "crates/core/src/fixture.rs", "clock", 4),
    (
        "thread_dependence.rs",
        "core",
        "crates/core/src/fixture.rs",
        "thread_dependence",
        4,
    ),
    ("float_accum.rs", "core", "crates/core/src/fixture.rs", "float_accum", 6),
    (
        "unbounded_alloc.rs",
        "x509",
        "crates/x509/src/fixture.rs",
        "unbounded_alloc",
        4,
    ),
    (
        "unbounded_recursion.rs",
        "asn1",
        "crates/asn1/src/fixture.rs",
        "unbounded_recursion",
        4,
    ),
    (
        "layer_violation.rs",
        "unicode",
        "crates/unicode/src/fixture.rs",
        "layer_violation",
        3,
    ),
];

fn load_fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// Run every source pass (audit + the four invariant passes) over one
/// in-memory file and resolve annotations with the full rule namespace.
fn analyze(krate: &str, rel: &str, text: &str) -> Vec<Violation> {
    let ws = Workspace::from_sources(&[(krate, rel, text)]);
    let cfg = AnalysisConfig::default();
    let mut findings = Vec::new();
    if audit::AUDITED_CRATES.contains(&krate) {
        for file in ws.files() {
            findings.extend(audit::audit_lines(&file.rel_path, &file.lines));
        }
    }
    findings.extend(determinism::run(&ws, &cfg));
    findings.extend(alloc::run(&ws, &cfg));
    findings.extend(recursion::run(&ws, &cfg));
    findings.extend(layering::run(&ws, &cfg));
    let active: BTreeSet<&str> = engine::ALL_SOURCE_RULES.iter().copied().collect();
    engine::resolve(&ws, findings, &active)
}

#[test]
fn every_rule_fires_on_its_seeded_fixture() {
    for &(file, krate, rel, rule, line) in FIXTURES {
        let text = load_fixture(file);
        let violations = analyze(krate, rel, &text);
        assert_eq!(
            violations.len(),
            1,
            "fixture {file} must seed exactly one violation, got: {violations:?}"
        );
        assert_eq!(violations[0].rule, rule, "fixture {file}: {violations:?}");
        assert_eq!(
            violations[0].location,
            format!("{rel}:{line}"),
            "fixture {file}: {violations:?}"
        );
    }
}

#[test]
fn an_allow_annotation_suppresses_each_seeded_violation() {
    for &(file, krate, rel, rule, line) in FIXTURES {
        let text = load_fixture(file);
        // Append the allow to the exact line the rule fires on.
        let annotated: String = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i + 1 == line {
                    format!("{l} // analysis:allow({rule}) fixture demonstrates suppression\n")
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        let violations = analyze(krate, rel, &annotated);
        assert!(
            violations.is_empty(),
            "fixture {file} with allow({rule}) must be clean, got: {violations:?}"
        );
    }
}

#[test]
fn fixture_list_covers_every_source_rule() {
    // `unsafe_attr_missing` is a crate-root check (exercised in
    // tests/static_analysis.rs), not a line-level fixture.
    let covered: BTreeSet<&str> = FIXTURES.iter().map(|f| f.3).collect();
    for rule in engine::ALL_SOURCE_RULES {
        if rule == "unsafe_attr_missing" {
            continue;
        }
        assert!(covered.contains(rule), "no seeded fixture for rule {rule}");
    }
}
