//! Property-based tests for Punycode and IDNA label handling.

use proptest::prelude::*;
use unicert_idna::punycode;

proptest! {
    /// Punycode encode ∘ decode is the identity on arbitrary Unicode input.
    #[test]
    fn punycode_round_trip(s in "\\PC{0,30}") {
        if let Some(encoded) = punycode::encode(&s) {
            let decoded = punycode::decode(&encoded).unwrap();
            prop_assert_eq!(decoded, s);
        }
    }

    /// Encoded output is always ASCII.
    #[test]
    fn punycode_output_is_ascii(s in "\\PC{0,30}") {
        if let Some(encoded) = punycode::encode(&s) {
            prop_assert!(encoded.is_ascii());
        }
    }

    /// Decode never panics on arbitrary ASCII-ish input.
    #[test]
    fn punycode_decode_never_panics(s in "[a-z0-9-]{0,40}") {
        let _ = punycode::decode(&s);
    }

    /// a_to_u/u_to_a round trip for valid lowercase IDN labels.
    #[test]
    fn label_round_trip(s in "[a-z]{1,5}[\u{E0}-\u{F6}]{1,4}[a-z]{0,5}") {
        // lowercase Latin letters with Latin-1 lowercase accents: PVALID,
        // NFC-stable, never begins with a mark.
        let a = unicert_idna::u_to_a(&s).unwrap();
        prop_assert!(a.starts_with("xn--"));
        let u = unicert_idna::a_to_u(&a).unwrap();
        prop_assert_eq!(u, s);
    }

    /// classify_a_label never panics on arbitrary LDH-ish labels.
    #[test]
    fn classify_total(s in "xn--[a-z0-9-]{0,30}") {
        let _ = unicert_idna::label::classify_a_label(&s);
    }

    /// validate_dns_name never panics on arbitrary short strings.
    #[test]
    fn dns_validate_total(s in ".{0,60}") {
        let _ = unicert_idna::validate_dns_name(&s, Default::default());
        let _ = unicert_idna::domain::to_unicode(&s);
    }
}
