//! Property-based tests for Punycode and IDNA label handling.

use proptest::prelude::*;
use unicert_idna::punycode;

proptest! {
    /// Punycode encode ∘ decode is the identity on arbitrary Unicode input.
    #[test]
    fn punycode_round_trip(s in "\\PC{0,30}") {
        if let Some(encoded) = punycode::encode(&s) {
            let decoded = punycode::decode(&encoded).unwrap();
            prop_assert_eq!(decoded, s);
        }
    }

    /// Encoded output is always ASCII.
    #[test]
    fn punycode_output_is_ascii(s in "\\PC{0,30}") {
        if let Some(encoded) = punycode::encode(&s) {
            prop_assert!(encoded.is_ascii());
        }
    }

    /// Decode never panics on arbitrary ASCII-ish input.
    #[test]
    fn punycode_decode_never_panics(s in "[a-z0-9-]{0,40}") {
        let _ = punycode::decode(&s);
    }

    /// a_to_u/u_to_a round trip for valid lowercase IDN labels.
    #[test]
    fn label_round_trip(s in "[a-z]{1,5}[\u{E0}-\u{F6}]{1,4}[a-z]{0,5}") {
        // lowercase Latin letters with Latin-1 lowercase accents: PVALID,
        // NFC-stable, never begins with a mark.
        let a = unicert_idna::u_to_a(&s).unwrap();
        prop_assert!(a.starts_with("xn--"));
        let u = unicert_idna::a_to_u(&a).unwrap();
        prop_assert_eq!(u, s);
    }

    /// Decoding and re-encoding is stable: `encode` is a retraction of
    /// `decode`, so re-encoding a decoded string decodes back to it.
    #[test]
    fn punycode_decode_encode_stable(s in "[a-zA-Z0-9]{0,12}-?[a-z0-9]{1,12}") {
        if let Ok(decoded) = punycode::decode(&s) {
            if let Some(reencoded) = punycode::encode(&decoded) {
                prop_assert_eq!(punycode::decode(&reencoded).unwrap(), decoded);
            }
        }
    }

    /// classify_a_label never panics on arbitrary LDH-ish labels.
    #[test]
    fn classify_total(s in "xn--[a-z0-9-]{0,30}") {
        let _ = unicert_idna::label::classify_a_label(&s);
    }

    /// validate_dns_name never panics on arbitrary short strings.
    #[test]
    fn dns_validate_total(s in ".{0,60}") {
        let _ = unicert_idna::validate_dns_name(&s, Default::default());
        let _ = unicert_idna::domain::to_unicode(&s);
    }
}

/// The RFC 3492 §7.1 sample strings: `(unicode, punycode)` pairs from the
/// Punycode specification itself. Selection spans RTL scripts, CJK, Latin
/// with diacritics, mixed ASCII/non-ASCII, and the all-ASCII edge case.
const RFC3492_SAMPLES: &[(&str, &str)] = &[
    // (A) Arabic (Egyptian)
    ("\u{644}\u{64A}\u{647}\u{645}\u{627}\u{628}\u{62A}\u{643}\u{644}\u{645}\u{648}\u{634}\u{639}\u{631}\u{628}\u{64A}\u{61F}", "egbpdaj6bu4bxfgehfvwxn"),
    // (B) Chinese (simplified)
    ("\u{4ED6}\u{4EEC}\u{4E3A}\u{4EC0}\u{4E48}\u{4E0D}\u{8BF4}\u{4E2D}\u{6587}", "ihqwcrb4cv8a8dqg056pqjye"),
    // (D) Czech
    ("Pro\u{10D}prost\u{11B}nemluv\u{ED}\u{10D}esky", "Proprostnemluvesky-uyb24dma41a"),
    // (E) Hebrew
    ("\u{5DC}\u{5DE}\u{5D4}\u{5D4}\u{5DD}\u{5E4}\u{5E9}\u{5D5}\u{5D8}\u{5DC}\u{5D0}\u{5DE}\u{5D3}\u{5D1}\u{5E8}\u{5D9}\u{5DD}\u{5E2}\u{5D1}\u{5E8}\u{5D9}\u{5EA}", "4dbcagdahymbxekheh6e0a7fei0b"),
    // (I) Russian
    ("\u{43F}\u{43E}\u{447}\u{435}\u{43C}\u{443}\u{436}\u{435}\u{43E}\u{43D}\u{438}\u{43D}\u{435}\u{433}\u{43E}\u{432}\u{43E}\u{440}\u{44F}\u{442}\u{43F}\u{43E}\u{440}\u{443}\u{441}\u{441}\u{43A}\u{438}", "b1abfaaepdrnnbgefbadotcwatmq2g4l"),
    // (J) Spanish
    ("Porqu\u{E9}nopuedensimplementehablarenEspa\u{F1}ol", "PorqunopuedensimplementehablarenEspaol-fmd56a"),
    // (L) Japanese: 3<nen>B<gumi><kinpachi><sensei>
    ("3\u{5E74}B\u{7D44}\u{91D1}\u{516B}\u{5148}\u{751F}", "3B-ww4c5e180e575a65lsy2b"),
    // (R) Japanese: <sono><supiido><de>
    ("\u{305D}\u{306E}\u{30B9}\u{30D4}\u{30FC}\u{30C9}\u{3067}", "d9juau41awczczp"),
    // (S) pure ASCII with a trailing hyphen marker
    ("-> $1.00 <-", "-> $1.00 <--"),
];

/// Encode side of the RFC 3492 §7.1 samples.
#[test]
fn rfc3492_sample_vectors_encode() {
    for (unicode, puny) in RFC3492_SAMPLES {
        assert_eq!(
            punycode::encode(unicode).as_deref(),
            Some(*puny),
            "encode({unicode:?})"
        );
    }
}

/// Decode side of the RFC 3492 §7.1 samples.
#[test]
fn rfc3492_sample_vectors_decode() {
    for (unicode, puny) in RFC3492_SAMPLES {
        assert_eq!(
            punycode::decode(puny).as_deref(),
            Ok(*unicode),
            "decode({puny:?})"
        );
    }
}
