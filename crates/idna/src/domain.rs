//! Whole-domain validation: the DNSName rules of RFC 1034 §3.5 / RFC 5280
//! §4.2.1.6 / CABF BR, including certificate wildcards.

use crate::label::{self, ALabelStatus, LabelError};

/// Why a DNSName failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsNameError {
    /// Empty name.
    Empty,
    /// More than 253 octets overall.
    TooLong,
    /// An empty label (consecutive or leading dots).
    EmptyLabel,
    /// A label failed validation.
    Label {
        /// Index of the failing label (0 = leftmost).
        index: usize,
        /// The underlying label error.
        error: LabelError,
    },
    /// `*` used anywhere but as the complete leftmost label.
    BadWildcard,
    /// The name contains characters outside the DNSName repertoire
    /// before any label processing (e.g. a space or a NUL) — the paper's
    /// "invalid characters in SAN DNSName" class.
    ForbiddenCharacter {
        /// The offending character.
        ch: char,
    },
}

/// Options for [`validate_dns_name`].
#[derive(Debug, Clone, Copy)]
pub struct DnsNameOptions {
    /// Accept a leading `*.` wildcard label (certificates do; DNS doesn't).
    pub allow_wildcard: bool,
    /// Accept a single trailing dot (FQDN form).
    pub allow_trailing_dot: bool,
}

impl Default for DnsNameOptions {
    fn default() -> Self {
        DnsNameOptions { allow_wildcard: true, allow_trailing_dot: false }
    }
}

/// Validate a DNSName as it would appear in a SAN.
///
/// Each label must be LDH; `xn--` labels must additionally be valid
/// A-labels (the F1 check).
pub fn validate_dns_name(name: &str, opts: DnsNameOptions) -> Result<(), DnsNameError> {
    if name.is_empty() {
        return Err(DnsNameError::Empty);
    }
    if let Some(ch) = name
        .chars()
        .find(|&c| !(c.is_ascii_alphanumeric() || c == '-' || c == '.' || c == '*'))
    {
        return Err(DnsNameError::ForbiddenCharacter { ch });
    }
    let mut name = name;
    if opts.allow_trailing_dot {
        name = name.strip_suffix('.').unwrap_or(name);
    }
    if name.len() > 253 {
        return Err(DnsNameError::TooLong);
    }
    let labels: Vec<&str> = name.split('.').collect();
    for (index, lab) in labels.iter().enumerate() {
        if lab.is_empty() {
            return Err(DnsNameError::EmptyLabel);
        }
        if lab.contains('*') {
            if !(opts.allow_wildcard && index == 0 && *lab == "*") {
                return Err(DnsNameError::BadWildcard);
            }
            continue;
        }
        label::validate_ldh(lab).map_err(|error| DnsNameError::Label { index, error })?;
        if label::has_ace_prefix(lab) {
            label::a_to_u(lab).map_err(|error| DnsNameError::Label { index, error })?;
        }
    }
    Ok(())
}

/// Is this (syntactically LDH-valid) domain an IDN — does any label carry
/// the ACE prefix, or does the name contain non-ASCII (a raw U-label)?
pub fn is_idn_domain(name: &str) -> bool {
    !name.is_ascii() || name.split('.').any(label::has_ace_prefix)
}

/// Convert a whole domain to Unicode form for display, converting each
/// valid A-label and leaving other labels untouched. Reports the status of
/// the worst label, mirroring how the paper's CT-monitor experiments decide
/// whether a display conversion is trustworthy.
pub fn to_unicode(name: &str) -> (String, ALabelStatus) {
    let mut worst = ALabelStatus::Valid;
    let mut out: Vec<String> = Vec::new();
    for lab in name.split('.') {
        if label::has_ace_prefix(lab) {
            match label::a_to_u(lab) {
                Ok(u) => out.push(u),
                Err(_) => {
                    let status = label::classify_a_label(lab);
                    if worst == ALabelStatus::Valid {
                        worst = status;
                    }
                    out.push(lab.to_string());
                }
            }
        } else {
            out.push(lab.to_string());
        }
    }
    (out.join("."), worst)
}

/// Convert a Unicode domain to ASCII (ACE) form, label by label.
pub fn to_ascii(name: &str) -> Result<String, DnsNameError> {
    let mut out: Vec<String> = Vec::new();
    for (index, lab) in name.split('.').enumerate() {
        if lab == "*" && index == 0 {
            out.push(lab.to_string());
            continue;
        }
        out.push(
            label::u_to_a(lab).map_err(|error| DnsNameError::Label { index, error })?,
        );
    }
    Ok(out.join("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Result<(), DnsNameError> {
        validate_dns_name(name, DnsNameOptions::default())
    }

    #[test]
    fn valid_names() {
        v("example.com").unwrap();
        v("a.b.c.d.example.co.uk").unwrap();
        v("xn--mnchen-3ya.de").unwrap();
        v("*.example.com").unwrap();
        v("test-1.example.com").unwrap();
    }

    #[test]
    fn forbidden_characters() {
        assert_eq!(v("exa mple.com"), Err(DnsNameError::ForbiddenCharacter { ch: ' ' }));
        assert_eq!(v("exa\u{0}mple.com"), Err(DnsNameError::ForbiddenCharacter { ch: '\u{0}' }));
        assert_eq!(v("münchen.de"), Err(DnsNameError::ForbiddenCharacter { ch: 'ü' }));
        // The paper's SAN-with-a-PEM-string case fails here.
        assert!(matches!(
            v("-----BEGIN CERTIFICATE REQUEST-----"),
            Err(DnsNameError::ForbiddenCharacter { .. })
        ));
    }

    #[test]
    fn wildcard_rules() {
        v("*.example.com").unwrap();
        assert_eq!(v("foo.*.example.com"), Err(DnsNameError::BadWildcard));
        assert_eq!(v("*foo.example.com"), Err(DnsNameError::BadWildcard));
        let no_wild = DnsNameOptions { allow_wildcard: false, ..Default::default() };
        assert_eq!(
            validate_dns_name("*.example.com", no_wild),
            Err(DnsNameError::BadWildcard)
        );
    }

    #[test]
    fn idn_labels_are_checked() {
        // Deceptive label (LRM) must fail.
        assert!(matches!(
            v("xn--www-hn0a.example.com"),
            Err(DnsNameError::Label { index: 0, .. })
        ));
        // Unconvertible label must fail.
        assert!(matches!(v("xn--99999999999.com"), Err(DnsNameError::Label { .. })));
    }

    #[test]
    fn length_limits() {
        let long = format!("{}.com", "a".repeat(63));
        v(&long).unwrap();
        let too_long_label = format!("{}.com", "a".repeat(64));
        assert!(matches!(v(&too_long_label), Err(DnsNameError::Label { .. })));
        let long_total: String =
            "abcdefgh.".repeat(29) + "toolong.com";
        assert!(long_total.len() > 253);
        assert_eq!(v(&long_total), Err(DnsNameError::TooLong));
    }

    #[test]
    fn empty_labels() {
        assert_eq!(v("a..b.com"), Err(DnsNameError::EmptyLabel));
        assert_eq!(v(".example.com"), Err(DnsNameError::EmptyLabel));
        assert_eq!(v("example.com."), Err(DnsNameError::EmptyLabel));
        let fqdn = DnsNameOptions { allow_trailing_dot: true, ..Default::default() };
        validate_dns_name("example.com.", fqdn).unwrap();
    }

    #[test]
    fn idn_detection() {
        assert!(is_idn_domain("xn--fiqs8s.cn"));
        assert!(is_idn_domain("中国.cn"));
        assert!(!is_idn_domain("example.com"));
    }

    #[test]
    fn unicode_conversion() {
        let (u, status) = to_unicode("xn--mnchen-3ya.de");
        assert_eq!(u, "münchen.de");
        assert_eq!(status, ALabelStatus::Valid);
        let (u, status) = to_unicode("xn--www-hn0a.com");
        assert_eq!(u, "xn--www-hn0a.com"); // left as-is
        assert_eq!(status, ALabelStatus::DisallowedContent);
        assert_eq!(to_ascii("münchen.de").unwrap(), "xn--mnchen-3ya.de");
        assert_eq!(to_ascii("*.münchen.de").unwrap(), "*.xn--mnchen-3ya.de");
    }
}
