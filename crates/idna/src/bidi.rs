//! The Bidi rule for IDN labels (RFC 5893 §2), simplified to the Unicode
//! general-category level.
//!
//! A label containing right-to-left characters must satisfy ordering
//! constraints or it renders ambiguously — exactly the display confusion
//! the paper's spoofing analyses build on. This implementation derives
//! approximate Bidi classes from general categories plus the script ranges
//! of the strong RTL blocks (Hebrew, Arabic, Syriac, Thaana, NKo), which
//! covers every case the test corpus and the paper's examples exercise;
//! it is not a full UCD bidi-class table (documented approximation).

use unicert_unicode::GeneralCategory;

/// Simplified bidi classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BidiClass {
    /// Strong left-to-right.
    L,
    /// Strong right-to-left (R or AL).
    Rtl,
    /// European number.
    En,
    /// Arabic number.
    An,
    /// Non-spacing mark.
    Nsm,
    /// Everything else relevant (ES/ET/CS/BN/ON collapsed).
    Other,
}

/// Approximate bidi class of a character.
pub fn bidi_class(ch: char) -> BidiClass {
    let cp = ch as u32;
    // Strong RTL script ranges (R / AL).
    let rtl = matches!(
        cp,
        0x0590..=0x05FF // Hebrew
            | 0x0600..=0x06FF // Arabic
            | 0x0700..=0x074F // Syriac
            | 0x0750..=0x077F // Arabic Supplement
            | 0x0780..=0x07BF // Thaana
            | 0x07C0..=0x07FF // NKo
            | 0x08A0..=0x08FF // Arabic Extended-A
            | 0xFB1D..=0xFDFF // Hebrew/Arabic presentation forms
            | 0xFE70..=0xFEFF
            | 0x1EE00..=0x1EEFF
    );
    if ch.is_ascii_digit() {
        return BidiClass::En;
    }
    if (0x0660..=0x0669).contains(&cp) || (0x06F0..=0x06F9).contains(&cp) {
        return BidiClass::An;
    }
    let cat = GeneralCategory::of(ch);
    if cat == GeneralCategory::NonspacingMark {
        return BidiClass::Nsm;
    }
    if rtl {
        return BidiClass::Rtl;
    }
    if cat.is_letter() {
        return BidiClass::L;
    }
    BidiClass::Other
}

/// Is this an RTL label (first character R/AL)?
pub fn is_rtl_label(label: &str) -> bool {
    label.chars().next().map(|c| bidi_class(c) == BidiClass::Rtl).unwrap_or(false)
}

/// RFC 5893 §2 check, simplified:
///
/// * LTR labels: first character L; only L/EN/NSM/Other afterwards (no
///   strong RTL, no AN); last non-NSM character L or EN.
/// * RTL labels: only R/AL/AN/EN/NSM/Other; not both EN and AN; last
///   non-NSM character R/AL/EN/AN.
pub fn satisfies_bidi_rule(label: &str) -> bool {
    // One streaming pass: the rule only needs the first class, whether each
    // class occurs at all, and the last non-NSM class.
    let mut first: Option<BidiClass> = None;
    let (mut has_rtl, mut has_an, mut has_en, mut has_l) = (false, false, false, false);
    let mut last_non_nsm: Option<BidiClass> = None;
    for c in label.chars() {
        let class = bidi_class(c);
        first.get_or_insert(class);
        match class {
            BidiClass::Rtl => has_rtl = true,
            BidiClass::An => has_an = true,
            BidiClass::En => has_en = true,
            BidiClass::L => has_l = true,
            BidiClass::Nsm | BidiClass::Other => {}
        }
        if class != BidiClass::Nsm {
            last_non_nsm = Some(class);
        }
    }
    if first.is_none() {
        return true;
    }
    if !has_rtl && !has_an {
        // Pure LTR label: fine as long as it doesn't *start* with a digit
        // when RTL material is absent — plain rule 1 relaxation for LDH.
        return true;
    }
    if first == Some(BidiClass::Rtl) {
        // RTL label.
        if has_en && has_an {
            return false; // rule 4
        }
        if has_l {
            return false; // rule 2: no strong L
        }
        matches!(
            last_non_nsm,
            Some(BidiClass::Rtl) | Some(BidiClass::En) | Some(BidiClass::An)
        )
    } else {
        // LTR (or number-led) label containing RTL or AN somewhere: the
        // mixing RFC 5893 forbids.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_scripts_pass() {
        assert!(satisfies_bidi_rule("münchen"));
        assert!(satisfies_bidi_rule("例え"));
        assert!(satisfies_bidi_rule("שלום")); // Hebrew
        assert!(satisfies_bidi_rule("مرحبا")); // Arabic
        assert!(satisfies_bidi_rule("abc123"));
    }

    #[test]
    fn mixed_direction_fails() {
        // Latin letter inside a Hebrew label.
        assert!(!satisfies_bidi_rule("שלוaם"));
        // Hebrew inside a Latin-led label.
        assert!(!satisfies_bidi_rule("abcש"));
    }

    #[test]
    fn number_mixing_rule() {
        // Arabic label with European digits: allowed (rule 4 permits one
        // kind of number).
        assert!(satisfies_bidi_rule("مرحبا1"));
        // Arabic label with both digit systems: forbidden.
        assert!(!satisfies_bidi_rule("مرحبا1\u{661}"));
    }

    #[test]
    fn rtl_detection() {
        assert!(is_rtl_label("שלום"));
        assert!(!is_rtl_label("abc"));
    }

    #[test]
    fn classes_spot_checks() {
        assert_eq!(bidi_class('a'), BidiClass::L);
        assert_eq!(bidi_class('ש'), BidiClass::Rtl);
        assert_eq!(bidi_class('م'), BidiClass::Rtl);
        assert_eq!(bidi_class('7'), BidiClass::En);
        assert_eq!(bidi_class('\u{661}'), BidiClass::An);
        assert_eq!(bidi_class('\u{301}'), BidiClass::Nsm);
        assert_eq!(bidi_class('-'), BidiClass::Other);
    }
}
