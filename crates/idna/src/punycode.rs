//! Punycode: the Bootstring encoding of RFC 3492.
//!
//! Implemented from the RFC directly (parameters of §5, algorithms of §6).

/// Decoding failure reasons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PunycodeError {
    /// A basic (pre-delimiter) code point was not ASCII.
    NonBasicCodePoint,
    /// An extended digit was outside `[a-z0-9]`.
    InvalidDigit,
    /// Arithmetic overflowed (RFC 3492 §6.4 guard).
    Overflow,
    /// The decoded value is not a Unicode scalar (e.g. a surrogate).
    InvalidCodePoint,
    /// Input ended in the middle of a delta.
    Truncated,
}

const BASE: u32 = 36;
const TMIN: u32 = 1;
const TMAX: u32 = 26;
const SKEW: u32 = 38;
const DAMP: u32 = 700;
const INITIAL_BIAS: u32 = 72;
const INITIAL_N: u32 = 128;
const DELIMITER: char = '-';

fn adapt(mut delta: u32, num_points: u32, first_time: bool) -> u32 {
    delta /= if first_time { DAMP } else { 2 };
    delta += delta / num_points;
    let mut k = 0;
    while delta > ((BASE - TMIN) * TMAX) / 2 {
        delta /= BASE - TMIN;
        k += BASE;
    }
    k + (((BASE - TMIN + 1) * delta) / (delta + SKEW))
}

fn digit_to_char(d: u32) -> char {
    debug_assert!(d < BASE);
    if d < 26 {
        (b'a' + d as u8) as char
    } else {
        (b'0' + (d - 26) as u8) as char
    }
}

fn char_to_digit(c: char) -> Option<u32> {
    match c {
        'a'..='z' => Some(c as u32 - 'a' as u32),
        'A'..='Z' => Some(c as u32 - 'A' as u32),
        '0'..='9' => Some(c as u32 - '0' as u32 + 26),
        _ => None,
    }
}

/// Encode a Unicode string as Punycode (without any `xn--` prefix).
///
/// Returns `None` on overflow (inputs beyond the algorithm's range).
pub fn encode(input: &str) -> Option<String> {
    let chars: Vec<u32> = input.chars().map(|c| c as u32).collect();
    let mut output = String::new();
    let basic: Vec<u32> = chars.iter().copied().filter(|&c| c < 0x80).collect();
    for &c in &basic {
        output.push(char::from_u32(c)?);
    }
    let b = basic.len() as u32;
    let mut h = b;
    // RFC 3492 §6.3: the delimiter is emitted whenever there are basic code
    // points, even if no extended code points follow ("-> $1.00 <-" encodes
    // to "-> $1.00 <--").
    if b > 0 {
        output.push(DELIMITER);
    }
    let mut n = INITIAL_N;
    let mut delta: u32 = 0;
    let mut bias = INITIAL_BIAS;
    while (h as usize) < chars.len() {
        let m = chars.iter().copied().filter(|&c| c >= n).min()?;
        delta = delta.checked_add((m - n).checked_mul(h + 1)?)?;
        n = m;
        for &c in &chars {
            if c < n {
                delta = delta.checked_add(1)?;
            }
            if c == n {
                let mut q = delta;
                let mut k = BASE;
                loop {
                    let t = if k <= bias {
                        TMIN
                    } else if k >= bias + TMAX {
                        TMAX
                    } else {
                        k - bias
                    };
                    if q < t {
                        break;
                    }
                    output.push(digit_to_char(t + (q - t) % (BASE - t)));
                    q = (q - t) / (BASE - t);
                    k += BASE;
                }
                output.push(digit_to_char(q));
                bias = adapt(delta, h + 1, h == b);
                delta = 0;
                h += 1;
            }
        }
        delta = delta.checked_add(1)?;
        n = n.checked_add(1)?;
    }
    Some(output)
}

/// Decode a Punycode string (without any `xn--` prefix).
pub fn decode(input: &str) -> Result<String, PunycodeError> {
    let mut output: Vec<char> = Vec::new();
    let (basic_part, extended) = match input.rsplit_once(DELIMITER) {
        Some((basic, ext)) => (basic, ext),
        None => ("", input),
    };
    for c in basic_part.chars() {
        if !c.is_ascii() {
            return Err(PunycodeError::NonBasicCodePoint);
        }
        output.push(c);
    }
    let mut n = INITIAL_N;
    let mut i: u32 = 0;
    let mut bias = INITIAL_BIAS;
    let mut iter = extended.chars().peekable();
    while iter.peek().is_some() {
        let old_i = i;
        let mut w: u32 = 1;
        let mut k = BASE;
        loop {
            let c = iter.next().ok_or(PunycodeError::Truncated)?;
            let digit = char_to_digit(c).ok_or(PunycodeError::InvalidDigit)?;
            i = i
                .checked_add(digit.checked_mul(w).ok_or(PunycodeError::Overflow)?)
                .ok_or(PunycodeError::Overflow)?;
            let t = if k <= bias {
                TMIN
            } else if k >= bias + TMAX {
                TMAX
            } else {
                k - bias
            };
            if digit < t {
                break;
            }
            w = w.checked_mul(BASE - t).ok_or(PunycodeError::Overflow)?;
            k += BASE;
        }
        let len = output.len() as u32 + 1;
        bias = adapt(i - old_i, len, old_i == 0);
        n = n
            .checked_add(i / len)
            .ok_or(PunycodeError::Overflow)?;
        i %= len;
        let ch = char::from_u32(n).ok_or(PunycodeError::InvalidCodePoint)?;
        output.insert(i as usize, ch);
        i += 1;
    }
    Ok(output.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 3492 §7.1 sample strings.
    #[test]
    fn rfc_sample_arabic() {
        let u = "\u{644}\u{64A}\u{647}\u{645}\u{627}\u{628}\u{62A}\u{643}\u{644}\u{645}\u{648}\u{634}\u{639}\u{631}\u{628}\u{64A}\u{61F}";
        let p = "egbpdaj6bu4bxfgehfvwxn";
        assert_eq!(encode(u).unwrap(), p);
        assert_eq!(decode(p).unwrap(), u);
    }

    #[test]
    fn rfc_sample_chinese_simplified() {
        let u = "\u{4ED6}\u{4EEC}\u{4E3A}\u{4EC0}\u{4E48}\u{4E0D}\u{8BF4}\u{4E2D}\u{6587}";
        let p = "ihqwcrb4cv8a8dqg056pqjye";
        assert_eq!(encode(u).unwrap(), p);
        assert_eq!(decode(p).unwrap(), u);
    }

    #[test]
    fn rfc_sample_mixed_ascii() {
        // (S) -> $1.00 <-
        let u = "-> $1.00 <-";
        let p = "-> $1.00 <--";
        assert_eq!(encode(u).unwrap(), p);
        assert_eq!(decode(p).unwrap(), u);
    }

    #[test]
    fn common_domains() {
        assert_eq!(encode("münchen").unwrap(), "mnchen-3ya");
        assert_eq!(decode("mnchen-3ya").unwrap(), "münchen");
        assert_eq!(encode("中国").unwrap(), "fiqs8s");
        assert_eq!(decode("fiqs8s").unwrap(), "中国");
        assert_eq!(encode("bücher").unwrap(), "bcher-kva");
    }

    #[test]
    fn pure_ascii_round_trip() {
        assert_eq!(encode("example").unwrap(), "example-");
        assert_eq!(decode("example-").unwrap(), "example");
    }

    #[test]
    fn paper_deceptive_label() {
        // §6.1 P1.3: "xn--www-hn0a" is "\u{200E}www" — LRM prepended.
        assert_eq!(decode("www-hn0a").unwrap(), "\u{200E}www");
        assert_eq!(encode("\u{200E}www").unwrap(), "www-hn0a");
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(decode("é-abc"), Err(PunycodeError::NonBasicCodePoint));
        assert_eq!(decode("abc-!!!"), Err(PunycodeError::InvalidDigit));
        // A delta engineered to overflow.
        assert_eq!(decode("99999999999"), Err(PunycodeError::Overflow));
    }

    #[test]
    fn empty_input() {
        assert_eq!(encode("").unwrap(), "");
        assert_eq!(decode("").unwrap(), "");
    }
}
