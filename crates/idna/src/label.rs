//! Per-label IDNA2008 validation and A-label ⇄ U-label conversion
//! (RFC 5890/5891/5892).

use crate::punycode;
use std::sync::OnceLock;
use unicert_unicode::index::ChunkIndex;
use unicert_unicode::nfc;
use unicert_unicode::tables::idna::{IDNA_CONTEXTJ, IDNA_CONTEXTO, IDNA_PVALID};

/// The ACE prefix of RFC 5890.
pub const ACE_PREFIX: &str = "xn--";

/// RFC 5892 derived property classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdnaClass {
    /// Usable in any IDN label.
    Pvalid,
    /// Joiner characters (ZWJ/ZWNJ); valid only in specific contexts.
    ContextJ,
    /// Other contextual characters (middle dot, …).
    ContextO,
    /// Never permitted.
    Disallowed,
}

fn in_ranges(cp: u32, table: &[(u32, u32)]) -> bool {
    table
        .binary_search_by(|&(lo, hi)| {
            if cp < lo {
                std::cmp::Ordering::Greater
            } else if cp > hi {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        })
        .is_ok()
}

/// Chunk index over the (large) PVALID range table: near-constant lookups on
/// the per-character hot path. The CONTEXTJ/CONTEXTO tables are a handful of
/// rows each and stay binary-searched.
fn pvalid_index() -> &'static ChunkIndex {
    static INDEX: OnceLock<ChunkIndex> = OnceLock::new();
    INDEX.get_or_init(|| ChunkIndex::build(IDNA_PVALID, |&(lo, hi)| (lo, hi)))
}

/// The RFC 5892 derived property of `ch` (exact IDNA2008 tables).
pub fn idna_class(ch: char) -> IdnaClass {
    let cp = ch as u32;
    if pvalid_index().find(IDNA_PVALID, cp, |&(lo, hi)| (lo, hi)).is_some() {
        IdnaClass::Pvalid
    } else if in_ranges(cp, IDNA_CONTEXTJ) {
        IdnaClass::ContextJ
    } else if in_ranges(cp, IDNA_CONTEXTO) {
        IdnaClass::ContextO
    } else {
        IdnaClass::Disallowed
    }
}

/// Why a label failed validation. Mirrors the failure classes of the
/// paper's F1 finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelError {
    /// Empty label.
    Empty,
    /// Longer than 63 octets in ACE form (RFC 1034 §3.1).
    TooLong,
    /// Contains a character outside letters/digits/hyphen in its ASCII form.
    NotLdh {
        /// The offending character.
        ch: char,
    },
    /// Leading or trailing hyphen.
    BadHyphenPlacement,
    /// Hyphens in positions 3–4 without being a valid A-label
    /// ("fake" xn-- or other reserved prefix).
    ReservedHyphenPositions,
    /// The `xn--` payload failed Punycode decoding — the paper's
    /// "cannot convert to Unicode" class (F1-i).
    UnconvertibleALabel(punycode::PunycodeError),
    /// The decoded U-label re-encodes to a *different* A-label (round-trip
    /// failure; includes inputs that were not the canonical encoding).
    RoundTripMismatch,
    /// The U-label is not in NFC — the paper's T2 "Bad Normalization" class.
    NotNfc,
    /// The U-label contains a character DISALLOWED by IDNA2008 — the
    /// paper's "illegal characters after Punycode decoding" class (F1-ii).
    DisallowedCharacter {
        /// The offending character.
        ch: char,
    },
    /// The U-label begins with a combining mark (RFC 5891 §4.2.3.2).
    LeadingCombiningMark,
    /// A contextual character appeared without a satisfying context
    /// (simplified CONTEXTJ/CONTEXTO rule).
    BadContext {
        /// The offending character.
        ch: char,
    },
    /// The label mixes text directions in violation of the RFC 5893 Bidi
    /// rule.
    BidiViolation,
    /// The label is all-ASCII but carries the ACE prefix with an empty
    /// payload.
    EmptyAcePayload,
}

/// Is `label` syntactically an A-label candidate (has the ACE prefix)?
pub fn has_ace_prefix(label: &str) -> bool {
    label
        .get(..4)
        .is_some_and(|p| p.eq_ignore_ascii_case(ACE_PREFIX))
}

/// Validate pure LDH syntax (RFC 5890 §2.3.1): letters, digits, hyphens,
/// no leading/trailing hyphen, ≤ 63 octets.
pub fn validate_ldh(label: &str) -> Result<(), LabelError> {
    if label.is_empty() {
        return Err(LabelError::Empty);
    }
    if label.len() > 63 {
        return Err(LabelError::TooLong);
    }
    if let Some(ch) = label.chars().find(|&c| !(c.is_ascii_alphanumeric() || c == '-')) {
        return Err(LabelError::NotLdh { ch });
    }
    if label.starts_with('-') || label.ends_with('-') {
        return Err(LabelError::BadHyphenPlacement);
    }
    Ok(())
}

/// Convert an A-label to its U-label, validating the full IDNA2008 pipeline.
///
/// `label` must include the `xn--` prefix. On success the returned string is
/// the NFC U-label.
pub fn a_to_u(label: &str) -> Result<String, LabelError> {
    validate_ldh(label)?;
    if !has_ace_prefix(label) {
        return Err(LabelError::ReservedHyphenPositions);
    }
    let payload = &label[4..];
    if payload.is_empty() {
        return Err(LabelError::EmptyAcePayload);
    }
    // Lowercase only when the payload actually carries uppercase; the
    // overwhelmingly common already-lowercase payload decodes borrow-free.
    let u = if payload.bytes().any(|b| b.is_ascii_uppercase()) {
        punycode::decode(&payload.to_ascii_lowercase())
    } else {
        punycode::decode(payload)
    }
    .map_err(LabelError::UnconvertibleALabel)?;
    // Round trip: the canonical re-encoding must reproduce the input.
    let reencoded = punycode::encode(&u).ok_or(LabelError::RoundTripMismatch)?;
    if !reencoded.eq_ignore_ascii_case(payload) {
        return Err(LabelError::RoundTripMismatch);
    }
    // An A-label must actually contain non-ASCII (otherwise it is a "fake"
    // A-label: plain ASCII hidden behind xn--).
    if u.is_ascii() {
        return Err(LabelError::RoundTripMismatch);
    }
    validate_u_label(&u)?;
    Ok(u)
}

/// Convert a U-label to its A-label (with prefix), validating first.
pub fn u_to_a(label: &str) -> Result<String, LabelError> {
    if label.is_ascii() {
        validate_ldh(label)?;
        return Ok(label.to_ascii_lowercase());
    }
    validate_u_label(label)?;
    let encoded = punycode::encode(label).ok_or(LabelError::RoundTripMismatch)?;
    let a = format!("{ACE_PREFIX}{encoded}");
    if a.len() > 63 {
        return Err(LabelError::TooLong);
    }
    Ok(a)
}

/// Validate a U-label per IDNA2008 (RFC 5891 §4.2 + RFC 5892 properties).
pub fn validate_u_label(label: &str) -> Result<(), LabelError> {
    let Some(first) = label.chars().next() else {
        return Err(LabelError::Empty);
    };
    if !nfc::is_nfc(label) {
        return Err(LabelError::NotNfc);
    }
    if unicert_unicode::GeneralCategory::of(first).is_mark() {
        return Err(LabelError::LeadingCombiningMark);
    }
    if label.starts_with('-') || label.ends_with('-') {
        return Err(LabelError::BadHyphenPlacement);
    }
    {
        let mut it = label.chars();
        if it.nth(2) == Some('-') && it.next() == Some('-') {
            return Err(LabelError::ReservedHyphenPositions);
        }
    }
    let mut prev: Option<char> = None;
    let mut iter = label.chars().peekable();
    while let Some(ch) = iter.next() {
        match idna_class(ch) {
            IdnaClass::Pvalid => {}
            IdnaClass::Disallowed => return Err(LabelError::DisallowedCharacter { ch }),
            // Simplified contextual rules: ZWNJ/ZWJ require a preceding
            // virama (ccc = 9); CONTEXTO middle dot requires 'l' on both
            // sides; other CONTEXTO characters are accepted when surrounded
            // by PVALID (a documented approximation of RFC 5892 App. A).
            IdnaClass::ContextJ => {
                let prev_ok =
                    prev.is_some_and(|p| unicert_unicode::nfc::combining_class(p) == 9);
                if !prev_ok {
                    return Err(LabelError::BadContext { ch });
                }
            }
            IdnaClass::ContextO => {
                if ch == '\u{B7}' {
                    let ok = prev == Some('l') && iter.peek() == Some(&'l');
                    if !ok {
                        return Err(LabelError::BadContext { ch });
                    }
                }
            }
        }
        prev = Some(ch);
    }
    if !crate::bidi::satisfies_bidi_rule(label) {
        return Err(LabelError::BidiViolation);
    }
    Ok(())
}

/// Classify an `xn--` label the way the F1 analysis does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ALabelStatus {
    /// Fully valid A-label.
    Valid,
    /// Cannot be converted to Unicode at all (F1-i).
    Unconvertible,
    /// Converts, but the U-label violates IDNA2008 (F1-ii).
    DisallowedContent,
    /// Converts, but is not the canonical encoding (round-trip mismatch).
    NonCanonical,
    /// Not an A-label (no ACE prefix or bad LDH syntax).
    NotALabel,
}

/// Classify a label for the F1 experiment.
pub fn classify_a_label(label: &str) -> ALabelStatus {
    if validate_ldh(label).is_err() || !has_ace_prefix(label) {
        return ALabelStatus::NotALabel;
    }
    match a_to_u(label) {
        Ok(_) => ALabelStatus::Valid,
        Err(LabelError::UnconvertibleALabel(_)) | Err(LabelError::EmptyAcePayload) => {
            ALabelStatus::Unconvertible
        }
        Err(LabelError::RoundTripMismatch) => ALabelStatus::NonCanonical,
        Err(_) => ALabelStatus::DisallowedContent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_a_labels() {
        assert_eq!(a_to_u("xn--mnchen-3ya").unwrap(), "münchen");
        assert_eq!(a_to_u("xn--fiqs8s").unwrap(), "中国");
        assert_eq!(a_to_u("XN--MNCHEN-3YA").unwrap(), "münchen");
    }

    #[test]
    fn u_to_a_round_trip() {
        assert_eq!(u_to_a("münchen").unwrap(), "xn--mnchen-3ya");
        assert_eq!(u_to_a("中国").unwrap(), "xn--fiqs8s");
        assert_eq!(u_to_a("plain").unwrap(), "plain");
    }

    #[test]
    fn f1_unconvertible_labels() {
        // Overflowing delta → cannot convert to Unicode.
        assert_eq!(classify_a_label("xn--99999999999"), ALabelStatus::Unconvertible);
        // "xn--" alone ends with a hyphen, so it is not even LDH-valid.
        assert_eq!(classify_a_label("xn--"), ALabelStatus::NotALabel);
    }

    #[test]
    fn f1_disallowed_after_decoding() {
        // xn--www-hn0a decodes to LRM + "www": a bidi control, DISALLOWED.
        assert_eq!(a_to_u("xn--www-hn0a").unwrap_err(), LabelError::DisallowedCharacter { ch: '\u{200E}' });
        assert_eq!(classify_a_label("xn--www-hn0a"), ALabelStatus::DisallowedContent);
    }

    #[test]
    fn fake_a_label_is_rejected() {
        // The ACE form of pure-ASCII "www" is "xn--www-", which ends with a
        // hyphen: it fails LDH before any Punycode processing.
        let a = format!("{ACE_PREFIX}{}", punycode::encode("www").unwrap());
        assert_eq!(a, "xn--www-");
        assert_eq!(classify_a_label(&a), ALabelStatus::NotALabel);
        // A payload with a leading delimiter decodes (empty basic part) but
        // never re-encodes to itself: the non-canonical class.
        let status = classify_a_label("xn---foo");
        assert!(
            matches!(status, ALabelStatus::NonCanonical | ALabelStatus::Unconvertible),
            "{status:?}"
        );
    }

    #[test]
    fn idna_class_spot_checks() {
        assert_eq!(idna_class('a'), IdnaClass::Pvalid);
        assert_eq!(idna_class('ü'), IdnaClass::Pvalid);
        assert_eq!(idna_class('中'), IdnaClass::Pvalid);
        assert_eq!(idna_class('A'), IdnaClass::Disallowed); // uppercase
        assert_eq!(idna_class('\u{200E}'), IdnaClass::Disallowed); // LRM
        assert_eq!(idna_class('\u{200D}'), IdnaClass::ContextJ); // ZWJ
        assert_eq!(idna_class('\u{B7}'), IdnaClass::ContextO); // middle dot
        assert_eq!(idna_class('!'), IdnaClass::Disallowed);
        assert_eq!(idna_class('\u{0}'), IdnaClass::Disallowed);
    }

    #[test]
    fn u_label_validation() {
        validate_u_label("münchen").unwrap();
        assert_eq!(validate_u_label(""), Err(LabelError::Empty));
        assert_eq!(
            validate_u_label("mu\u{308}nchen"), // decomposed ü
            Err(LabelError::NotNfc)
        );
        assert_eq!(
            validate_u_label("\u{301}abc"),
            Err(LabelError::LeadingCombiningMark)
        );
        assert_eq!(validate_u_label("-abc"), Err(LabelError::BadHyphenPlacement));
        assert_eq!(
            validate_u_label("ab--cü"),
            Err(LabelError::ReservedHyphenPositions)
        );
    }

    #[test]
    fn contextual_rules() {
        // Catalan l·l is the canonical CONTEXTO success case.
        validate_u_label("col·legi").unwrap();
        assert_eq!(
            validate_u_label("a·b"),
            Err(LabelError::BadContext { ch: '\u{B7}' })
        );
        // ZWJ without a preceding virama.
        assert_eq!(
            validate_u_label("a\u{200D}b"),
            Err(LabelError::BadContext { ch: '\u{200D}' })
        );
        // ZWJ after a virama (Devanagari ka + virama + ZWJ + ssa).
        validate_u_label("\u{915}\u{94D}\u{200D}\u{937}").unwrap();
    }

    #[test]
    fn ldh_validation() {
        validate_ldh("example").unwrap();
        validate_ldh("a-b-c123").unwrap();
        assert_eq!(validate_ldh("-abc"), Err(LabelError::BadHyphenPlacement));
        assert_eq!(validate_ldh("abc-"), Err(LabelError::BadHyphenPlacement));
        assert_eq!(validate_ldh("a_b"), Err(LabelError::NotLdh { ch: '_' }));
        assert_eq!(validate_ldh(&"a".repeat(64)), Err(LabelError::TooLong));
        validate_ldh(&"a".repeat(63)).unwrap();
    }
}

#[cfg(test)]
mod bidi_integration_tests {
    use super::*;

    #[test]
    fn mixed_direction_u_labels_rejected() {
        assert_eq!(validate_u_label("שלוaם"), Err(LabelError::BidiViolation));
        validate_u_label("שלום").unwrap();
        validate_u_label("مرحبا").unwrap();
    }

    #[test]
    fn mixed_direction_a_label_classified_as_disallowed_content() {
        // Encode a direction-mixing label behind Punycode: it converts,
        // but the U-label violates RFC 5893 — the F1-ii class again.
        let mixed = "aש";
        let a = format!("xn--{}", crate::punycode::encode(mixed).unwrap());
        assert_eq!(classify_a_label(&a), ALabelStatus::DisallowedContent);
    }
}
