//! Internationalized Domain Name machinery: Punycode (RFC 3492) and
//! IDNA2008 label validation (RFC 5890–5892).
//!
//! The paper's F1 finding — CAs issuing certificates whose `xn--` labels
//! either *cannot be converted back to Unicode* or *decode to characters the
//! IDNA standard disallows* — is detected with exactly the tools in this
//! crate:
//!
//! * [`punycode`]: the bootstring codec;
//! * [`label`]: A-label ⇄ U-label conversion and per-label validation,
//!   including the RFC 5892 derived-property check (PVALID / CONTEXTJ /
//!   CONTEXTO / DISALLOWED) backed by the exact IDNA2008 tables;
//! * [`domain`]: whole-domain handling (dots, wildcards, length limits,
//!   LDH syntax from RFC 1034/5890);
//! * [`bidi`]: the RFC 5893 Bidi rule (simplified; see its module docs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bidi;
pub mod domain;
pub mod label;
pub mod punycode;

pub use domain::{is_idn_domain, validate_dns_name, DnsNameError};
pub use label::{a_to_u, u_to_a, IdnaClass, LabelError};
