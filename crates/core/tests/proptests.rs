//! Property-based tests for the survey shard-merge algebra.
//!
//! The parallel pipeline's correctness rests on one identity:
//! `run(corpus) == fold(merge, map(run, split(corpus)))` for *any* split.
//! These properties exercise that identity directly on random corpora,
//! split points, and shard sizes — independent of the thread pool, so a
//! failure isolates the merge algebra rather than the scheduling.

use proptest::prelude::*;
use unicert::corpus::{CorpusConfig, CorpusEntry, CorpusGenerator};
use unicert::survey::{self, SurveyOptions, SurveyReport};

fn corpus(size: usize, seed: u64) -> Vec<CorpusEntry> {
    CorpusGenerator::new(CorpusConfig {
        size,
        seed,
        precert_fraction: 0.25,
        latent_defects: true,
    })
    .collect()
}

fn run_over(entries: &[CorpusEntry]) -> SurveyReport {
    survey::run(entries.iter().cloned(), SurveyOptions::default())
}

proptest! {
    /// Surveying shards and merging in order equals surveying the whole
    /// corpus, for every shard size.
    #[test]
    fn shard_merge_equals_whole(size in 1usize..120, seed in 0u64..1000, shard in 1usize..48) {
        let whole = corpus(size, seed);
        let serial = run_over(&whole);
        let mut merged = SurveyReport::default();
        for chunk in whole.chunks(shard) {
            merged.merge(run_over(chunk));
        }
        prop_assert_eq!(serial, merged);
    }

    /// Binary split at an arbitrary point: `merge(run(a), run(b)) ==
    /// run(a ++ b)` — the two-shard instance of the identity, which the
    /// general fold reduces to.
    #[test]
    fn merge_of_split_is_whole(size in 2usize..150, seed in 0u64..1000, cut_frac in 0usize..100) {
        let whole = corpus(size, seed);
        let cut = whole.len() * cut_frac / 100;
        let (a, b) = whole.split_at(cut);
        let mut merged = run_over(a);
        merged.merge(run_over(b));
        prop_assert_eq!(run_over(&whole), merged);
    }

    /// Merging an empty report is the identity on both sides.
    #[test]
    fn empty_report_is_identity(size in 1usize..80, seed in 0u64..1000) {
        let report = run_over(&corpus(size, seed));
        let mut left = SurveyReport::default();
        left.merge(report.clone());
        prop_assert_eq!(&left, &report);
        let mut right = report.clone();
        right.merge(SurveyReport::default());
        prop_assert_eq!(&right, &report);
    }

    /// The *full* pipeline — budgeted parse, classification, linting,
    /// aggregation — survives arbitrary single-byte corruption of valid
    /// certificates without panicking, and the sharded pass stays
    /// byte-identical to the serial one (quarantine lists included).
    /// Upgrades the lint-only mutation property in `unicert-lint`.
    #[test]
    fn survey_survives_byte_mutation_serial_equals_parallel(
        seed in 0u64..1000,
        pos_seed in any::<usize>(),
        byte in any::<u8>(),
        threads in 2usize..6,
    ) {
        let entries = corpus(8, seed);
        let mut ders: Vec<Vec<u8>> = entries.iter().map(|e| e.cert.raw.clone()).collect();
        for der in &mut ders {
            if !der.is_empty() {
                let pos = pos_seed % der.len();
                der[pos] = byte;
            }
        }
        let budget = unicert_asn1::ParseBudget::default();
        let serial = survey::run_bytes(&ders, SurveyOptions::default(), &budget);
        let opts = SurveyOptions {
            lint: unicert_lint::RunOptions {
                threads: Some(threads),
                shard_size: 3,
                ..unicert_lint::RunOptions::default()
            },
            ..SurveyOptions::default()
        };
        let parallel = survey::run_parallel_bytes(&ders, opts, &budget);
        prop_assert_eq!(parallel, serial);
    }

    /// Same property under structural (TLV-aware) damage from the chaos
    /// mutator: every mutation class, applied to every cert, flows through
    /// the survey without panics and with serial/parallel identity.
    #[test]
    fn survey_survives_chaos_mutations(seed in 0u64..10_000) {
        use unicert_chaos::{MutationClass, Mutator};
        let entries = corpus(4, seed);
        let mut mutator = Mutator::new(seed);
        let mut ders = Vec::new();
        for entry in &entries {
            for class in MutationClass::ALL {
                ders.push(mutator.mutate(&entry.cert.raw, class));
            }
        }
        let budget = unicert_asn1::ParseBudget::default();
        let serial = survey::run_bytes(&ders, SurveyOptions::default(), &budget);
        prop_assert_eq!(serial.entries, ders.len());
        let opts = SurveyOptions {
            lint: unicert_lint::RunOptions {
                threads: Some(4),
                shard_size: 5,
                ..unicert_lint::RunOptions::default()
            },
            ..SurveyOptions::default()
        };
        let parallel = survey::run_parallel_bytes(&ders, opts, &budget);
        prop_assert_eq!(parallel, serial);
    }
}
