//! Property-based tests for the survey shard-merge algebra.
//!
//! The parallel pipeline's correctness rests on one identity:
//! `run(corpus) == fold(merge, map(run, split(corpus)))` for *any* split.
//! These properties exercise that identity directly on random corpora,
//! split points, and shard sizes — independent of the thread pool, so a
//! failure isolates the merge algebra rather than the scheduling.

use proptest::prelude::*;
use unicert::corpus::{CorpusConfig, CorpusEntry, CorpusGenerator};
use unicert::survey::{self, SurveyOptions, SurveyReport};

fn corpus(size: usize, seed: u64) -> Vec<CorpusEntry> {
    CorpusGenerator::new(CorpusConfig {
        size,
        seed,
        precert_fraction: 0.25,
        latent_defects: true,
    })
    .collect()
}

fn run_over(entries: &[CorpusEntry]) -> SurveyReport {
    survey::run(entries.iter().cloned(), SurveyOptions::default())
}

proptest! {
    /// Surveying shards and merging in order equals surveying the whole
    /// corpus, for every shard size.
    #[test]
    fn shard_merge_equals_whole(size in 1usize..120, seed in 0u64..1000, shard in 1usize..48) {
        let whole = corpus(size, seed);
        let serial = run_over(&whole);
        let mut merged = SurveyReport::default();
        for chunk in whole.chunks(shard) {
            merged.merge(run_over(chunk));
        }
        prop_assert_eq!(serial, merged);
    }

    /// Binary split at an arbitrary point: `merge(run(a), run(b)) ==
    /// run(a ++ b)` — the two-shard instance of the identity, which the
    /// general fold reduces to.
    #[test]
    fn merge_of_split_is_whole(size in 2usize..150, seed in 0u64..1000, cut_frac in 0usize..100) {
        let whole = corpus(size, seed);
        let cut = whole.len() * cut_frac / 100;
        let (a, b) = whole.split_at(cut);
        let mut merged = run_over(a);
        merged.merge(run_over(b));
        prop_assert_eq!(run_over(&whole), merged);
    }

    /// Merging an empty report is the identity on both sides.
    #[test]
    fn empty_report_is_identity(size in 1usize..80, seed in 0u64..1000) {
        let report = run_over(&corpus(size, seed));
        let mut left = SurveyReport::default();
        left.merge(report.clone());
        prop_assert_eq!(&left, &report);
        let mut right = report.clone();
        right.merge(SurveyReport::default());
        prop_assert_eq!(&right, &report);
    }
}
