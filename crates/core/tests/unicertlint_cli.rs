//! Exit-status contract of the `unicertlint` binary (0 = compliant,
//! 1 = findings, 2 = usage/environment/input error), driven end to end
//! through the compiled executable.
//!
//! Every degenerate input class the CLI documents gets one test:
//! unreadable path, empty file, over-the-budget file, and a malformed
//! `UNICERT_*` environment. Each must fail *loudly* (exit 2 plus a
//! stderr line naming the offender) rather than fall back silently.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Run the binary with a scrubbed `UNICERT_*` environment plus overrides.
fn unicertlint(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_unicertlint"));
    for name in ["UNICERT_THREADS", "UNICERT_SHARD_SIZE", "UNICERT_PROFILE"] {
        cmd.env_remove(name);
    }
    for (name, value) in env {
        cmd.env(name, value);
    }
    cmd.args(args).output().expect("spawn unicertlint")
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn scratch_file(name: &str, contents: &[u8]) -> PathBuf {
    let path = std::env::temp_dir().join(format!("unicertlint-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write scratch file");
    path
}

#[test]
fn demo_certificate_has_findings_and_exits_one() {
    let out = unicertlint(&["--demo", "--quiet"], &[]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
}

#[test]
fn no_arguments_is_a_usage_error() {
    let out = unicertlint(&[], &[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"), "stderr: {}", stderr(&out));
}

#[test]
fn unreadable_input_exits_two_and_names_the_path() {
    let missing = std::env::temp_dir().join("unicertlint-cli-definitely-missing.der");
    std::fs::remove_file(&missing).ok();
    let path = missing.to_string_lossy().into_owned();
    let out = unicertlint(&[&path], &[]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains(&path), "stderr must name the unreadable path: {err}");
}

#[test]
fn empty_input_exits_two_with_explicit_diagnosis() {
    let path = scratch_file("empty", b"");
    let out = unicertlint(&[&path.to_string_lossy()], &[]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("empty input file"), "stderr: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn oversized_input_exits_two_before_parsing() {
    // One byte past the 1 MiB single-certificate parse budget.
    let path = scratch_file("huge", &vec![0x30u8; (1 << 20) + 1]);
    let out = unicertlint(&[&path.to_string_lossy()], &[]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("single-certificate limit"), "stderr: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn garbage_der_exits_two_as_parse_error() {
    let path = scratch_file("garbage", b"this is not DER at all");
    let out = unicertlint(&[&path.to_string_lossy()], &[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("error:"), "stderr: {}", stderr(&out));
    std::fs::remove_file(&path).ok();
}

#[test]
fn malformed_environment_exits_two_and_names_the_variable() {
    for (name, value) in [
        ("UNICERT_THREADS", "fuor"),
        ("UNICERT_SHARD_SIZE", "0"),
        ("UNICERT_PROFILE", "no-such-profile"),
    ] {
        let out = unicertlint(&["--demo"], &[(name, value)]);
        assert_eq!(out.status.code(), Some(2), "{name}={value} must exit 2");
        let err = stderr(&out);
        assert!(err.contains(name), "{name}={value}: stderr must name it: {err}");
    }
    // A well-formed environment still lints.
    let out = unicertlint(
        &["--demo", "--quiet"],
        &[("UNICERT_THREADS", "2"), ("UNICERT_PROFILE", "webpki")],
    );
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
}

#[test]
fn unknown_profile_flag_exits_two_and_lists_profiles() {
    let out = unicertlint(&["--profile", "nope", "--demo"], &[]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown profile"), "stderr: {err}");
    assert!(err.contains("webpki"), "stderr must list registered profiles: {err}");
}
