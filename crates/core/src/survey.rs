//! The end-to-end compliance survey pipeline (§4): corpus → precertificate
//! filter → Unicert classification → linting → aggregation.
//!
//! One [`SurveyReport`] carries everything Tables 1, 2 and 11 and Figures
//! 2, 3 and 4 need.

use crate::classify;
use std::collections::BTreeMap;
use std::time::Instant;
use unicert_asn1::DateTime;
use unicert_corpus::{CorpusEntry, TrustStatus};
use unicert_lint::{NoncomplianceType, RunOptions, Severity};

/// Pre-resolved per-stage latency histograms for the survey hot loop
/// (`survey.stage_ns{classify|lint|aggregate|field_matrix}`, DESIGN.md §8).
/// Resolved once per shard so recording never takes a registry lookup, and
/// recorded only on the 1-in-`metrics_sample()` certificates that are also
/// lint-latency-timed — the 15-in-16 rest pay no clock reads at all.
struct StageMetrics {
    classify: std::sync::Arc<unicert_telemetry::Histogram>,
    lint: std::sync::Arc<unicert_telemetry::Histogram>,
    aggregate: std::sync::Arc<unicert_telemetry::Histogram>,
    field_matrix: std::sync::Arc<unicert_telemetry::Histogram>,
}

impl StageMetrics {
    fn resolve() -> StageMetrics {
        let registry = unicert_telemetry::global();
        StageMetrics {
            classify: registry.histogram("survey.stage_ns", "classify"),
            lint: registry.histogram("survey.stage_ns", "lint"),
            aggregate: registry.histogram("survey.stage_ns", "aggregate"),
            field_matrix: registry.histogram("survey.stage_ns", "field_matrix"),
        }
    }

}

/// Everything one shard (or the serial loop) records into while metrics
/// are enabled: the stage histograms plus a [`unicert_lint::RunTally`]
/// batching the per-lint counters. Flushed once per shard so the hot
/// loop touches no global atomics for counting (DESIGN.md §8).
struct ShardTelemetry {
    stages: StageMetrics,
    tally: unicert_lint::RunTally,
}

impl ShardTelemetry {
    fn if_enabled(registry: &unicert_lint::Registry) -> Option<ShardTelemetry> {
        unicert_telemetry::metrics_enabled()
            .then(|| ShardTelemetry { stages: StageMetrics::resolve(), tally: registry.tally() })
    }

    fn flush(telemetry: Option<ShardTelemetry>, registry: &unicert_lint::Registry) {
        if let Some(mut telemetry) = telemetry {
            registry.flush_tally(&mut telemetry.tally);
        }
    }
}

/// Record the time since `*stamp` into `histogram` and advance the stamp —
/// consecutive-timestamp timing, one clock read per stage boundary.
fn stage_mark(
    stamp: &mut Option<Instant>,
    histogram: Option<&std::sync::Arc<unicert_telemetry::Histogram>>,
) {
    if let (Some(started), Some(histogram)) = (stamp.as_mut(), histogram) {
        let now = Instant::now();
        let nanos = now.duration_since(*started).as_nanos();
        histogram.record(u64::try_from(nanos).unwrap_or(u64::MAX));
        *started = now;
    }
}

/// Per-taxonomy-type aggregation (one Table 1 row).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TypeStats {
    /// Unicerts with at least one finding of this type.
    pub certs: usize,
    /// …of which detected (also) by new lints.
    pub by_new_lints: usize,
    /// …with an Error-level finding of this type.
    pub errors: usize,
    /// …with a Warning-level finding of this type.
    pub warnings: usize,
    /// …from publicly trusted issuers.
    pub trusted: usize,
    /// …issued in 2024–2025.
    pub recent: usize,
    /// …still valid in 2024–2025.
    pub alive: usize,
}

/// Per-issuer aggregation (one Table 2 row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssuerStats {
    /// Trust status.
    pub trust: TrustStatus,
    /// Total Unicerts.
    pub total: usize,
    /// Noncompliant Unicerts.
    pub noncompliant: usize,
    /// Noncompliant Unicerts issued 2024–2025.
    pub recent_noncompliant: usize,
}

/// Per-year aggregation (the Figure 2 series).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct YearStats {
    /// Unicerts issued this year.
    pub issued: usize,
    /// …from trusted issuers.
    pub trusted: usize,
    /// …noncompliant.
    pub noncompliant: usize,
    /// Unicerts *valid during* this year (the "alive" lines).
    pub alive: usize,
    /// Noncompliant Unicerts valid during this year.
    pub alive_noncompliant: usize,
}

/// Validity-period samples per certificate class (Figure 3's CDFs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValiditySamples {
    /// IDNCerts.
    pub idn: Vec<i64>,
    /// Non-IDN Unicerts.
    pub other: Vec<i64>,
    /// Noncompliant Unicerts.
    pub noncompliant: Vec<i64>,
}

/// The survey result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SurveyReport {
    /// CT entries inspected (including precertificates).
    pub entries: usize,
    /// Precertificates filtered out (§4.1).
    pub precerts_filtered: usize,
    /// Leaf Unicerts analyzed.
    pub total: usize,
    /// IDNCerts among them.
    pub idn_certs: usize,
    /// Unicerts from publicly trusted issuers.
    pub trusted_total: usize,
    /// Noncompliant Unicerts (≥ 1 finding).
    pub noncompliant: usize,
    /// …from publicly trusted issuers.
    pub noncompliant_trusted: usize,
    /// …detected by at least one of the 50 new lints.
    pub noncompliant_by_new_lints: usize,
    /// Per-type stats (Table 1).
    pub by_type: BTreeMap<NoncomplianceType, TypeStats>,
    /// Per-lint firing counts (Table 11).
    pub by_lint: BTreeMap<&'static str, usize>,
    /// Per-issuer stats (Table 2).
    pub by_issuer: BTreeMap<String, IssuerStats>,
    /// Per-year stats (Figure 2).
    pub by_year: BTreeMap<i32, YearStats>,
    /// Validity samples (Figure 3).
    pub validity: ValiditySamples,
    /// (issuer, field) → certificates whose field carries
    /// internationalized content (Figure 4's heat map), alongside how many
    /// of those deviate from the standards.
    pub field_matrix: BTreeMap<(String, &'static str), (usize, usize)>,
}

/// Survey options.
#[derive(Debug, Clone, Copy)]
pub struct SurveyOptions {
    /// Lint run options (effective-date gating).
    pub lint: RunOptions,
    /// Collect the Figure 4 field matrix (touches every attribute; off for
    /// speed-sensitive callers).
    pub field_matrix: bool,
}

impl Default for SurveyOptions {
    fn default() -> Self {
        SurveyOptions { lint: RunOptions::default(), field_matrix: true }
    }
}

const ALIVE_FROM: i32 = 2024;
const RECENT_FROM: i32 = 2024;
/// The dataset snapshot date (§4.1): certificates issued after this are not
/// "alive now". Const-constructed — field-valid by inspection, and verified
/// against `DateTime::date` in tests.
const SURVEY_CUTOFF: DateTime = DateTime { year: 2025, month: 4, day: 30, hour: 0, minute: 0, second: 0 };

impl TypeStats {
    /// Fold another shard's stats into this one (commutative sum).
    pub fn merge(&mut self, other: TypeStats) {
        self.certs += other.certs;
        self.by_new_lints += other.by_new_lints;
        self.errors += other.errors;
        self.warnings += other.warnings;
        self.trusted += other.trusted;
        self.recent += other.recent;
        self.alive += other.alive;
    }
}

impl IssuerStats {
    /// Fold another shard's stats into this one. `trust` is a property of
    /// the issuer, identical in every shard; the first-seen value wins just
    /// as it does in the serial pass.
    pub fn merge(&mut self, other: IssuerStats) {
        self.total += other.total;
        self.noncompliant += other.noncompliant;
        self.recent_noncompliant += other.recent_noncompliant;
    }
}

impl YearStats {
    /// Fold another shard's stats into this one (commutative sum).
    pub fn merge(&mut self, other: YearStats) {
        self.issued += other.issued;
        self.trusted += other.trusted;
        self.noncompliant += other.noncompliant;
        self.alive += other.alive;
        self.alive_noncompliant += other.alive_noncompliant;
    }
}

impl ValiditySamples {
    /// Append another shard's samples. Order-sensitive: merging shards in
    /// stream order reproduces the serial sample vectors exactly.
    pub fn merge(&mut self, other: ValiditySamples) {
        self.idn.extend(other.idn);
        self.other.extend(other.other);
        self.noncompliant.extend(other.noncompliant);
    }
}

impl SurveyReport {
    /// Fold another shard's report into this one.
    ///
    /// Every aggregate is either a commutative sum or (for the validity
    /// sample vectors) an ordered concatenation, so merging per-shard
    /// reports *in shard order* yields exactly the single-pass report:
    /// `run(a ++ b) == merge(run(a), run(b))`.
    pub fn merge(&mut self, other: SurveyReport) {
        self.entries += other.entries;
        self.precerts_filtered += other.precerts_filtered;
        self.total += other.total;
        self.idn_certs += other.idn_certs;
        self.trusted_total += other.trusted_total;
        self.noncompliant += other.noncompliant;
        self.noncompliant_trusted += other.noncompliant_trusted;
        self.noncompliant_by_new_lints += other.noncompliant_by_new_lints;
        for (nc_type, ts) in other.by_type {
            self.by_type.entry(nc_type).or_default().merge(ts);
        }
        for (lint, n) in other.by_lint {
            *self.by_lint.entry(lint).or_default() += n;
        }
        for (issuer, is_) in other.by_issuer {
            match self.by_issuer.entry(issuer) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(is_),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(is_);
                }
            }
        }
        for (year, ys) in other.by_year {
            self.by_year.entry(year).or_default().merge(ys);
        }
        self.validity.merge(other.validity);
        for (cell, (total, nc)) in other.field_matrix {
            let c = self.field_matrix.entry(cell).or_default();
            c.0 += total;
            c.1 += nc;
        }
    }
}

/// Fold one corpus entry into `report` — the shared kernel of the serial
/// and sharded survey paths.
///
/// `stages` (present iff metrics are enabled) carries the per-stage latency
/// histograms; the stage blocks below are contiguous so consecutive
/// timestamps partition the whole per-certificate cost. Telemetry never
/// feeds back into `report` — the fold is byte-identical with or without it.
fn accumulate(
    report: &mut SurveyReport,
    registry: &unicert_lint::Registry,
    entry: &CorpusEntry,
    opts: &SurveyOptions,
    telemetry: Option<&mut ShardTelemetry>,
) {
    report.entries += 1;
    // §4.1: precertificates are filtered out by the poison extension.
    if entry.cert.tbs.is_precertificate() {
        report.precerts_filtered += 1;
        return;
    }
    report.total += 1;

    let (stages, tally) = match telemetry {
        Some(t) => (Some(&t.stages), Some(&mut t.tally)),
        None => (None, None),
    };
    // Stage timing rides the same 1-in-`metrics_sample()` sequence as the
    // per-lint latency histograms: untimed certificates pay no clock reads.
    let timed = tally.as_ref().is_some_and(|t| t.will_time_next());
    let mut stamp = timed.then(Instant::now);
    let class = classify::classify(&entry.cert);
    if class.is_idn_cert() {
        report.idn_certs += 1;
    }
    let trusted = entry.meta.trust == TrustStatus::Public;
    if trusted {
        report.trusted_total += 1;
    }

    let issued = entry.cert.tbs.validity.not_before;
    let expires = entry.cert.tbs.validity.not_after;
    let recent = issued.year >= RECENT_FROM;
    let alive_now = expires.year >= ALIVE_FROM && issued <= SURVEY_CUTOFF;
    let validity_days = entry.cert.tbs.validity.period_days();
    stage_mark(&mut stamp, stages.map(|s| &s.classify));

    let lint_report = match tally {
        Some(tally) => registry.run_tallied(&entry.cert, opts.lint, tally),
        None => registry.run(&entry.cert, opts.lint),
    };
    let nc = lint_report.is_noncompliant();
    stage_mark(&mut stamp, stages.map(|s| &s.lint));

    // Figure 3 samples.
    if nc {
        report.validity.noncompliant.push(validity_days);
    }
    if class.is_idn_cert() {
        report.validity.idn.push(validity_days);
    } else {
        report.validity.other.push(validity_days);
    }

    // Figure 2 series.
    for year in issued.year..=expires.year.min(2025) {
        let ys = report.by_year.entry(year).or_default();
        ys.alive += 1;
        if nc {
            ys.alive_noncompliant += 1;
        }
    }
    let ys = report.by_year.entry(issued.year).or_default();
    ys.issued += 1;
    if trusted {
        ys.trusted += 1;
    }
    if nc {
        ys.noncompliant += 1;
    }

    // Table 2.
    let is_ = report
        .by_issuer
        .entry(entry.meta.issuer_org.clone())
        .or_insert_with(|| IssuerStats {
            trust: entry.meta.trust,
            total: 0,
            noncompliant: 0,
            recent_noncompliant: 0,
        });
    is_.total += 1;
    if nc {
        is_.noncompliant += 1;
        if recent {
            is_.recent_noncompliant += 1;
        }
    }

    // Tables 1 and 11.
    if nc {
        report.noncompliant += 1;
        if trusted {
            report.noncompliant_trusted += 1;
        }
        if lint_report.hit_new_lint() {
            report.noncompliant_by_new_lints += 1;
        }
        for nc_type in lint_report.nc_types() {
            let ts = report.by_type.entry(nc_type).or_default();
            ts.certs += 1;
            if trusted {
                ts.trusted += 1;
            }
            if recent {
                ts.recent += 1;
            }
            if alive_now {
                ts.alive += 1;
            }
            let findings = lint_report.findings.iter().filter(|f| f.nc_type == nc_type);
            let mut has_err = false;
            let mut has_warn = false;
            let mut has_new = false;
            for f in findings {
                match f.severity {
                    Severity::Error => has_err = true,
                    Severity::Warning => has_warn = true,
                }
                if f.new_lint {
                    has_new = true;
                }
            }
            if has_err {
                ts.errors += 1;
            }
            if has_warn {
                ts.warnings += 1;
            }
            if has_new {
                ts.by_new_lints += 1;
            }
        }
        for f in &lint_report.findings {
            *report.by_lint.entry(f.lint).or_default() += 1;
        }
    }
    stage_mark(&mut stamp, stages.map(|s| &s.aggregate));

    // Figure 4 matrix.
    if opts.field_matrix {
        collect_field_matrix(report, entry, nc);
        stage_mark(&mut stamp, stages.map(|s| &s.field_matrix));
    }
}

/// Run the survey over a corpus stream on the calling thread.
pub fn run(entries: impl Iterator<Item = CorpusEntry>, opts: SurveyOptions) -> SurveyReport {
    let registry = unicert_corpus::lint_registry();
    let mut telemetry = ShardTelemetry::if_enabled(registry);
    let _span = unicert_telemetry::span!("survey.run");
    let mut report = SurveyReport::default();
    for entry in entries {
        accumulate(&mut report, registry, &entry, &opts, telemetry.as_mut());
    }
    ShardTelemetry::flush(telemetry, registry);
    report
}

/// Run the survey over a corpus stream on a sharded worker pool.
///
/// The stream is cut into deterministic chunks of
/// `opts.lint.effective_shard_size()` entries; `opts.lint.effective_threads()`
/// workers survey the chunks in parallel, and the per-chunk reports merge in
/// chunk order. The result is **byte-identical** to [`run`] for any thread
/// count — see DESIGN.md §7 for the invariant argument.
///
/// Production of the stream itself is serialized (the corpus generator owns
/// one sequential RNG); classification + linting, the dominant cost, runs on
/// the pool. For a pre-materialized corpus use [`run_parallel_slice`], which
/// shards without cloning or generation handoff.
pub fn run_parallel(
    entries: impl Iterator<Item = CorpusEntry> + Send,
    opts: SurveyOptions,
) -> SurveyReport {
    use unicert_corpus::IntoChunks;
    let threads = opts.lint.effective_threads();
    if threads <= 1 {
        return run(entries, opts);
    }
    let registry = unicert_corpus::lint_registry();
    let _span = unicert_telemetry::span!("survey.run_parallel", "threads={threads}");
    let shard_size = opts.lint.effective_shard_size();
    let shards = crate::pool::map_ordered(entries.chunked(shard_size), threads, |chunk| {
        let _span =
            unicert_telemetry::span!(verbose: "survey.shard", "{}", chunk.entries.len());
        let mut telemetry = ShardTelemetry::if_enabled(registry);
        let mut shard = SurveyReport::default();
        for entry in &chunk.entries {
            accumulate(&mut shard, registry, entry, &opts, telemetry.as_mut());
        }
        ShardTelemetry::flush(telemetry, registry);
        shard
    });
    merge_in_order(shards)
}

/// Run the survey over an in-memory corpus slice on a sharded worker pool.
///
/// Same determinism guarantee as [`run_parallel`], but shards are borrowed
/// sub-slices (`slice.chunks()`), so there is no producer serialization at
/// all — this is the path the throughput benchmark measures.
pub fn run_parallel_slice(entries: &[CorpusEntry], opts: SurveyOptions) -> SurveyReport {
    let registry = unicert_corpus::lint_registry();
    let threads = opts.lint.effective_threads();
    if threads <= 1 {
        let _span = unicert_telemetry::span!("survey.run_parallel_slice", "threads=1");
        let mut telemetry = ShardTelemetry::if_enabled(registry);
        let mut report = SurveyReport::default();
        for entry in entries {
            accumulate(&mut report, registry, entry, &opts, telemetry.as_mut());
        }
        ShardTelemetry::flush(telemetry, registry);
        return report;
    }
    let _span =
        unicert_telemetry::span!("survey.run_parallel_slice", "threads={threads}");
    let shard_size = opts.lint.effective_shard_size();
    let shards = crate::pool::map_ordered(entries.chunks(shard_size), threads, |chunk| {
        let _span = unicert_telemetry::span!(verbose: "survey.shard", "{}", chunk.len());
        let mut telemetry = ShardTelemetry::if_enabled(registry);
        let mut shard = SurveyReport::default();
        for entry in chunk {
            accumulate(&mut shard, registry, entry, &opts, telemetry.as_mut());
        }
        ShardTelemetry::flush(telemetry, registry);
        shard
    });
    merge_in_order(shards)
}

/// Fold per-shard reports, already sorted in shard order, into one.
/// Records the full merge cost as one `survey.merge_ns` observation.
fn merge_in_order(shards: Vec<SurveyReport>) -> SurveyReport {
    let _span = unicert_telemetry::span!("survey.merge", "{}", shards.len());
    let started = unicert_telemetry::metrics_enabled().then(Instant::now);
    let mut merged = SurveyReport::default();
    for shard in shards {
        merged.merge(shard);
    }
    if let Some(started) = started {
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        unicert_telemetry::global().histogram("survey.merge_ns", "").record(nanos);
    }
    merged
}

fn collect_field_matrix(report: &mut SurveyReport, entry: &CorpusEntry, nc: bool) {
    use unicert_asn1::oid::known;
    let issuer = entry.meta.issuer_org.clone();
    let mut mark = |field: &'static str, unicode: bool| {
        if unicode {
            let cell = report.field_matrix.entry((issuer.clone(), field)).or_default();
            cell.0 += 1;
            if nc {
                cell.1 += 1;
            }
        }
    };
    let field_label = |oid: &unicert_asn1::Oid| -> Option<&'static str> {
        if *oid == known::common_name() {
            Some("CN")
        } else if *oid == known::organization_name() {
            Some("O")
        } else if *oid == known::organizational_unit() {
            Some("OU")
        } else if *oid == known::locality_name() {
            Some("L")
        } else if *oid == known::state_or_province() {
            Some("ST")
        } else if *oid == known::street_address() {
            Some("STREET")
        } else if *oid == known::serial_number() {
            Some("serialNumber")
        } else {
            None
        }
    };
    for attr in entry.cert.tbs.subject.attributes() {
        if let Some(label) = field_label(&attr.oid) {
            let unicode = attr.value.bytes.iter().any(|&b| !(0x20..=0x7E).contains(&b));
            mark(label, unicode);
        }
    }
    let sans = entry.cert.tbs.san_dns_names();
    let san_idn = sans
        .iter()
        .any(|h| unicert_idna::is_idn_domain(h) || !h.is_ascii());
    mark("SAN", san_idn);
    if entry
        .cert
        .tbs
        .extension(&known::certificate_policies())
        .is_some()
    {
        // explicitText with non-ASCII or non-UTF8 encodings.
        let texts = unicert_lint::helpers::explicit_texts(&entry.cert);
        let unicode = texts
            .iter()
            .any(|t| t.bytes.iter().any(|&b| !(0x20..=0x7E).contains(&b)));
        mark("CP", unicode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicert_corpus::{CorpusConfig, CorpusGenerator};

    fn survey(size: usize) -> SurveyReport {
        let gen = CorpusGenerator::new(CorpusConfig {
            size,
            seed: 42,
            precert_fraction: 0.3,
            latent_defects: true,
        });
        run(gen, SurveyOptions::default())
    }

    #[test]
    fn precerts_are_filtered() {
        let r = survey(2_000);
        assert!(r.precerts_filtered > 300);
        assert_eq!(r.total + r.precerts_filtered, r.entries);
    }

    #[test]
    fn headline_rates_in_paper_bands() {
        let r = survey(20_000);
        let nc_rate = r.noncompliant as f64 / r.total as f64;
        assert!((0.003..0.02).contains(&nc_rate), "{nc_rate}");
        // Trusted share of all Unicerts: paper reports 90.1% historically
        // and ≥97.2% for every CT-era year; our corpus is CT-era only, so
        // it sits at the high end.
        let trusted_share = r.trusted_total as f64 / r.total as f64;
        assert!((0.85..0.995).contains(&trusted_share), "{trusted_share}");
        // Trusted share of noncompliant ≈ 65% (paper: 65.3%).
        if r.noncompliant > 50 {
            let nc_trusted = r.noncompliant_trusted as f64 / r.noncompliant as f64;
            assert!((0.3..0.9).contains(&nc_trusted), "{nc_trusted}");
        }
    }

    #[test]
    fn invalid_encoding_dominates_types() {
        let r = survey(30_000);
        let enc = r.by_type.get(&NoncomplianceType::InvalidEncoding).map(|t| t.certs).unwrap_or(0);
        let chr = r.by_type.get(&NoncomplianceType::InvalidCharacter).map(|t| t.certs).unwrap_or(0);
        let fmt = r.by_type.get(&NoncomplianceType::IllegalFormat).map(|t| t.certs).unwrap_or(0);
        assert!(enc > chr, "encoding {enc} vs character {chr}");
        assert!(enc > fmt, "encoding {enc} vs format {fmt}");
    }

    #[test]
    fn issuer_table_shape() {
        let r = survey(30_000);
        // Let's Encrypt dominates volume with a tiny NC rate.
        let le = &r.by_issuer["Let's Encrypt"];
        assert!(le.total > r.total / 2);
        assert!((le.noncompliant as f64) / (le.total as f64) < 0.02);
        // High-NC issuers show high rates when present.
        if let Some(cp) = r.by_issuer.get("Česká pošta, s.p.") {
            if cp.total >= 10 {
                assert!(cp.noncompliant as f64 / cp.total as f64 > 0.5);
            }
        }
    }

    #[test]
    fn trend_is_upward() {
        let r = survey(20_000);
        let y2016 = r.by_year.get(&2016).map(|y| y.issued).unwrap_or(0);
        let y2024 = r.by_year.get(&2024).map(|y| y.issued).unwrap_or(0);
        assert!(y2024 > y2016 * 3, "{y2016} vs {y2024}");
    }

    #[test]
    fn validity_cdf_shapes() {
        let r = survey(20_000);
        let frac = |v: &[i64], p: &dyn Fn(i64) -> bool| {
            if v.is_empty() {
                return 0.0;
            }
            v.iter().filter(|&&d| p(d)).count() as f64 / v.len() as f64
        };
        assert!(frac(&r.validity.idn, &|d| d <= 90) > 0.8);
        assert!(frac(&r.validity.noncompliant, &|d| d >= 365) > 0.4);
    }

    #[test]
    fn field_matrix_collects_scripts() {
        let r = survey(5_000);
        // Some issuer must show Unicode in O.
        assert!(r.field_matrix.keys().any(|(_, f)| *f == "O"));
        assert!(r.field_matrix.keys().any(|(_, f)| *f == "SAN"));
    }
}
