//! The end-to-end compliance survey pipeline (§4): corpus → precertificate
//! filter → Unicert classification → linting → aggregation.
//!
//! One [`SurveyReport`] carries everything Tables 1, 2 and 11 and Figures
//! 2, 3 and 4 need.

use crate::classify;
use crate::pool::payload_string;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use unicert_asn1::{DateTime, ParseBudget};
use unicert_corpus::{CertMeta, CorpusEntry, RawEntry, TrustStatus};
use unicert_lint::{NoncomplianceType, RunOptions, Severity};
use unicert_x509::CertView;

/// Outcome taxonomy for one raw-DER input fed to the hostile-input survey
/// path ([`run_bytes`] / [`run_parallel_bytes`]).
///
/// Every input lands in exactly one class; [`SurveyReport::parse_outcomes`]
/// histograms the classes and the `parse.outcome{class}` telemetry counters
/// mirror them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseOutcome {
    /// Parsed into a certificate view and continued through the pipeline.
    Ok,
    /// Rejected with a structural error; carries the coarse error class
    /// from [`unicert_asn1::Error::class`] (`"truncated"`, `"bad_tag"`,
    /// `"bad_length"`, …).
    Malformed(&'static str),
    /// Rejected because a [`ParseBudget`] resource ran out.
    Oversized,
    /// Rejected because nesting exceeded the reader's depth limit.
    DepthExceeded,
    /// The parser (or metadata inference) panicked; the input was
    /// quarantined instead of taking the process down.
    Quarantined,
}

impl ParseOutcome {
    /// Stable lowercase label for report keys and telemetry.
    pub fn class(&self) -> &'static str {
        match self {
            ParseOutcome::Ok => "ok",
            ParseOutcome::Malformed(class) => class,
            ParseOutcome::Oversized => "oversized",
            ParseOutcome::DepthExceeded => "depth_exceeded",
            ParseOutcome::Quarantined => "quarantined",
        }
    }

    /// Map a parse error into its outcome class.
    pub fn from_error(e: &unicert_asn1::Error) -> ParseOutcome {
        match e {
            unicert_asn1::Error::BudgetExceeded { .. } => ParseOutcome::Oversized,
            unicert_asn1::Error::DepthExceeded { .. } => ParseOutcome::DepthExceeded,
            _ => ParseOutcome::Malformed(e.class()),
        }
    }
}

/// One certificate the pipeline refused to let panic: the stage that blew
/// up was contained with [`catch_unwind`] and the certificate's aggregates
/// were left out of the report (all-or-nothing per certificate — a
/// quarantined cert still counts in `entries`/`total` but contributes to no
/// other aggregate).
///
/// `index` is the zero-based position in the input stream, so quarantine
/// lists from sharded runs merge (in shard order) into exactly the serial
/// list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Zero-based position of the certificate in the input stream.
    pub index: u64,
    /// Certificate identity: lowercase-hex serial number, or `#<index>`
    /// when the input never parsed far enough to have one.
    pub cert_id: String,
    /// Pipeline stage that failed: `"parse"`, `"classify"`, `"lint"`,
    /// `"field_matrix"`, or — for whole shards of a persistent corpus the
    /// store layer could not read back intact — `"store"` (see
    /// [`STAGE_LABELS`]).
    pub stage: &'static str,
    /// Stringified panic payload.
    pub detail: String,
    /// Flight-recorder dump: the worker's last-N pipeline events before the
    /// panic (see `unicert_telemetry::flight`). Deterministic at any thread
    /// count because the ring is cleared per certificate; empty when the
    /// recorder is disabled (`UNICERT_FLIGHT=0`).
    pub flight: Vec<String>,
}

/// The closed set of [`QuarantineEntry::stage`] labels. Checkpoint
/// deserialization (`unicert-store`) re-interns stage strings against this
/// table so a loaded report carries the same `&'static str` values a fresh
/// run would.
pub const STAGE_LABELS: [&str; 5] =
    ["parse", "classify", "lint", "field_matrix", "store"];

/// The closed set of [`SurveyReport::field_matrix`] field labels (Figure 4
/// columns), in the order `field_matrix_marks` can emit them.
pub const FIELD_LABELS: [&str; 9] =
    ["CN", "O", "OU", "L", "ST", "STREET", "serialNumber", "SAN", "CP"];

/// The closed set of [`ParseOutcome::class`] labels: `"ok"`, the
/// [`unicert_asn1::Error::class`] taxonomy, and the budget/depth/panic
/// outcome classes.
pub const OUTCOME_CLASSES: [&str; 11] = [
    "ok",
    "truncated",
    "bad_tag",
    "bad_length",
    "trailing_data",
    "depth_exceeded",
    "bad_oid",
    "bad_value",
    "budget",
    "oversized",
    "quarantined",
];

/// Re-intern a runtime string against a closed `&'static str` label table
/// ([`STAGE_LABELS`], [`FIELD_LABELS`], [`OUTCOME_CLASSES`]). Returns
/// `None` for labels outside the table — deserializers treat that as a
/// corrupt record, never as a new label.
pub fn intern_label(
    label: &str,
    table: &'static [&'static str],
) -> Option<&'static str> {
    table.iter().find(|&&t| t == label).copied()
}

/// Pre-resolved per-stage latency histograms for the survey hot loop
/// (`survey.stage_ns{classify|lint|aggregate|field_matrix}`, DESIGN.md §8).
/// Resolved once per shard so recording never takes a registry lookup, and
/// recorded only on the 1-in-`metrics_sample()` certificates that are also
/// lint-latency-timed — the 15-in-16 rest pay no clock reads at all.
struct StageMetrics {
    classify: std::sync::Arc<unicert_telemetry::Histogram>,
    lint: std::sync::Arc<unicert_telemetry::Histogram>,
    aggregate: std::sync::Arc<unicert_telemetry::Histogram>,
    field_matrix: std::sync::Arc<unicert_telemetry::Histogram>,
}

impl StageMetrics {
    fn resolve() -> StageMetrics {
        let registry = unicert_telemetry::global();
        StageMetrics {
            classify: registry.histogram("survey.stage_ns", "classify"),
            lint: registry.histogram("survey.stage_ns", "lint"),
            aggregate: registry.histogram("survey.stage_ns", "aggregate"),
            field_matrix: registry.histogram("survey.stage_ns", "field_matrix"),
        }
    }

}

/// Everything one shard (or the serial loop) records into while metrics
/// are enabled: the stage histograms plus a [`unicert_lint::RunTally`]
/// batching the per-lint counters. Flushed once per shard so the hot
/// loop touches no global atomics for counting (DESIGN.md §8).
struct ShardTelemetry {
    stages: StageMetrics,
    tally: unicert_lint::RunTally,
}

impl ShardTelemetry {
    fn if_enabled(registry: &unicert_lint::Registry) -> Option<ShardTelemetry> {
        unicert_telemetry::metrics_enabled()
            .then(|| ShardTelemetry { stages: StageMetrics::resolve(), tally: registry.tally() })
    }

    fn flush(telemetry: Option<ShardTelemetry>, registry: &unicert_lint::Registry) {
        if let Some(mut telemetry) = telemetry {
            registry.flush_tally(&mut telemetry.tally);
        }
    }
}

/// Record the time since `*stamp` into `histogram` and advance the stamp —
/// consecutive-timestamp timing, one clock read per stage boundary.
fn stage_mark(
    stamp: &mut Option<Instant>,
    histogram: Option<&std::sync::Arc<unicert_telemetry::Histogram>>,
) {
    if let (Some(started), Some(histogram)) = (stamp.as_mut(), histogram) {
        let now = Instant::now(); // analysis:allow(clock) stage timing feeds telemetry histograms only, never report bytes
        let nanos = now.duration_since(*started).as_nanos();
        histogram.record(u64::try_from(nanos).unwrap_or(u64::MAX));
        *started = now;
    }
}

/// Per-taxonomy-type aggregation (one Table 1 row).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TypeStats {
    /// Unicerts with at least one finding of this type.
    pub certs: usize,
    /// …of which detected (also) by new lints.
    pub by_new_lints: usize,
    /// …with an Error-level finding of this type.
    pub errors: usize,
    /// …with a Warning-level finding of this type.
    pub warnings: usize,
    /// …from publicly trusted issuers.
    pub trusted: usize,
    /// …issued in 2024–2025.
    pub recent: usize,
    /// …still valid in 2024–2025.
    pub alive: usize,
}

/// Per-issuer aggregation (one Table 2 row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssuerStats {
    /// Trust status.
    pub trust: TrustStatus,
    /// Total Unicerts.
    pub total: usize,
    /// Noncompliant Unicerts.
    pub noncompliant: usize,
    /// Noncompliant Unicerts issued 2024–2025.
    pub recent_noncompliant: usize,
}

/// Per-year aggregation (the Figure 2 series).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct YearStats {
    /// Unicerts issued this year.
    pub issued: usize,
    /// …from trusted issuers.
    pub trusted: usize,
    /// …noncompliant.
    pub noncompliant: usize,
    /// Unicerts *valid during* this year (the "alive" lines).
    pub alive: usize,
    /// Noncompliant Unicerts valid during this year.
    pub alive_noncompliant: usize,
}

/// Validity-period samples per certificate class (Figure 3's CDFs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValiditySamples {
    /// IDNCerts.
    pub idn: Vec<i64>,
    /// Non-IDN Unicerts.
    pub other: Vec<i64>,
    /// Noncompliant Unicerts.
    pub noncompliant: Vec<i64>,
}

/// The survey result.
#[derive(Clone, Default, PartialEq)]
pub struct SurveyReport {
    /// CT entries inspected (including precertificates).
    pub entries: usize,
    /// Precertificates filtered out (§4.1).
    pub precerts_filtered: usize,
    /// Leaf Unicerts analyzed.
    pub total: usize,
    /// IDNCerts among them.
    pub idn_certs: usize,
    /// Unicerts from publicly trusted issuers.
    pub trusted_total: usize,
    /// Noncompliant Unicerts (≥ 1 finding).
    pub noncompliant: usize,
    /// …from publicly trusted issuers.
    pub noncompliant_trusted: usize,
    /// …detected by at least one of the 50 new lints.
    pub noncompliant_by_new_lints: usize,
    /// Per-type stats (Table 1).
    pub by_type: BTreeMap<NoncomplianceType, TypeStats>,
    /// Per-lint firing counts (Table 11).
    pub by_lint: BTreeMap<&'static str, usize>,
    /// Per-issuer stats (Table 2).
    pub by_issuer: BTreeMap<String, IssuerStats>,
    /// Per-year stats (Figure 2).
    pub by_year: BTreeMap<i32, YearStats>,
    /// Validity samples (Figure 3).
    pub validity: ValiditySamples,
    /// (issuer, field) → certificates whose field carries
    /// internationalized content (Figure 4's heat map), alongside how many
    /// of those deviate from the standards.
    pub field_matrix: BTreeMap<(String, &'static str), (usize, usize)>,
    /// Certificates whose processing panicked, contained per cert (stream
    /// order; identical for serial and sharded runs).
    pub quarantine: Vec<QuarantineEntry>,
    /// [`ParseOutcome::class`] → count, for inputs fed through the raw-DER
    /// path ([`run_bytes`]); empty for pre-parsed corpus runs.
    pub parse_outcomes: BTreeMap<&'static str, usize>,
    /// Compliance profile the report was linted under (`""` until a run
    /// path tags it; the default `webpki` renders invisibly in `Debug` so
    /// pre-profile report fingerprints stay valid).
    pub profile: &'static str,
}

impl std::fmt::Debug for SurveyReport {
    /// Mirrors the derived `Debug` rendering field for field, appending
    /// `profile` only for non-default profiles. The report fingerprint
    /// ([`SurveyReport::fingerprint`]) hashes this rendering, and guarded
    /// baselines (`tests/bench_baseline/`) predate the profile field — a
    /// default-profile report must keep rendering exactly as it did then.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("SurveyReport");
        s.field("entries", &self.entries)
            .field("precerts_filtered", &self.precerts_filtered)
            .field("total", &self.total)
            .field("idn_certs", &self.idn_certs)
            .field("trusted_total", &self.trusted_total)
            .field("noncompliant", &self.noncompliant)
            .field("noncompliant_trusted", &self.noncompliant_trusted)
            .field("noncompliant_by_new_lints", &self.noncompliant_by_new_lints)
            .field("by_type", &self.by_type)
            .field("by_lint", &self.by_lint)
            .field("by_issuer", &self.by_issuer)
            .field("by_year", &self.by_year)
            .field("validity", &self.validity)
            .field("field_matrix", &self.field_matrix)
            .field("quarantine", &self.quarantine)
            .field("parse_outcomes", &self.parse_outcomes);
        if !self.profile.is_empty() && self.profile != unicert_lint::DEFAULT_PROFILE {
            s.field("profile", &self.profile);
        }
        s.finish()
    }
}

/// Survey options.
#[derive(Debug, Clone, Copy)]
pub struct SurveyOptions {
    /// Lint run options (effective-date gating).
    pub lint: RunOptions,
    /// Collect the Figure 4 field matrix (touches every attribute; off for
    /// speed-sensitive callers).
    pub field_matrix: bool,
}

impl Default for SurveyOptions {
    fn default() -> Self {
        SurveyOptions { lint: RunOptions::default(), field_matrix: true }
    }
}

const ALIVE_FROM: i32 = 2024;
const RECENT_FROM: i32 = 2024;
/// The dataset snapshot date (§4.1): certificates issued after this are not
/// "alive now". Const-constructed — field-valid by inspection, and verified
/// against `DateTime::date` in tests.
const SURVEY_CUTOFF: DateTime = DateTime { year: 2025, month: 4, day: 30, hour: 0, minute: 0, second: 0 };

impl TypeStats {
    /// Fold another shard's stats into this one (commutative sum).
    pub fn merge(&mut self, other: TypeStats) {
        self.certs += other.certs;
        self.by_new_lints += other.by_new_lints;
        self.errors += other.errors;
        self.warnings += other.warnings;
        self.trusted += other.trusted;
        self.recent += other.recent;
        self.alive += other.alive;
    }
}

impl IssuerStats {
    /// Fold another shard's stats into this one. `trust` is a property of
    /// the issuer, identical in every shard; the first-seen value wins just
    /// as it does in the serial pass.
    pub fn merge(&mut self, other: IssuerStats) {
        self.total += other.total;
        self.noncompliant += other.noncompliant;
        self.recent_noncompliant += other.recent_noncompliant;
    }
}

impl YearStats {
    /// Fold another shard's stats into this one (commutative sum).
    pub fn merge(&mut self, other: YearStats) {
        self.issued += other.issued;
        self.trusted += other.trusted;
        self.noncompliant += other.noncompliant;
        self.alive += other.alive;
        self.alive_noncompliant += other.alive_noncompliant;
    }
}

impl ValiditySamples {
    /// Append another shard's samples. Order-sensitive: merging shards in
    /// stream order reproduces the serial sample vectors exactly.
    pub fn merge(&mut self, other: ValiditySamples) {
        self.idn.extend(other.idn);
        self.other.extend(other.other);
        self.noncompliant.extend(other.noncompliant);
    }
}

impl SurveyReport {
    /// Fold another shard's report into this one.
    ///
    /// Every aggregate is either a commutative sum or (for the validity
    /// sample vectors) an ordered concatenation, so merging per-shard
    /// reports *in shard order* yields exactly the single-pass report:
    /// `run(a ++ b) == merge(run(a), run(b))`.
    pub fn merge(&mut self, other: SurveyReport) {
        // The profile is a run-wide property, identical in every shard;
        // first non-empty tag wins (shards built before tagging carry "").
        if self.profile.is_empty() {
            self.profile = other.profile;
        }
        self.entries += other.entries;
        self.precerts_filtered += other.precerts_filtered;
        self.total += other.total;
        self.idn_certs += other.idn_certs;
        self.trusted_total += other.trusted_total;
        self.noncompliant += other.noncompliant;
        self.noncompliant_trusted += other.noncompliant_trusted;
        self.noncompliant_by_new_lints += other.noncompliant_by_new_lints;
        for (nc_type, ts) in other.by_type {
            self.by_type.entry(nc_type).or_default().merge(ts);
        }
        for (lint, n) in other.by_lint {
            *self.by_lint.entry(lint).or_default() += n;
        }
        for (issuer, is_) in other.by_issuer {
            match self.by_issuer.entry(issuer) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(is_),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(is_);
                }
            }
        }
        for (year, ys) in other.by_year {
            self.by_year.entry(year).or_default().merge(ys);
        }
        self.validity.merge(other.validity);
        for (cell, (total, nc)) in other.field_matrix {
            let c = self.field_matrix.entry(cell).or_default();
            c.0 += total;
            c.1 += nc;
        }
        // Entries carry global stream indexes; shard-order concatenation
        // therefore reproduces the serial quarantine list exactly.
        self.quarantine.extend(other.quarantine);
        for (class, n) in other.parse_outcomes {
            *self.parse_outcomes.entry(class).or_default() += n;
        }
    }

    /// Order-stable FNV-1a 64 fingerprint of the whole report, via its
    /// `Debug` rendering (every aggregate is `BTreeMap`/`Vec`-backed, so
    /// the rendering is deterministic). Benchmark baselines store this so a
    /// later run can detect *report* drift — a change in what the pipeline
    /// computes — separately from timing drift.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{self:?}").bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }
}

/// Record a contained panic: one [`QuarantineEntry`] carrying this worker's
/// flight-recorder dump, plus (metrics on) a `survey.quarantined{stage}`
/// tick. Telemetry stays inert — the counter mirrors the report, never
/// feeds it. The flight dump *is* report content, but it is a pure function
/// of the certificate (the ring is cleared per unit), so determinism holds.
fn push_quarantine(
    report: &mut SurveyReport,
    index: u64,
    cert_id: String,
    stage: &'static str,
    detail: String,
) {
    if unicert_telemetry::metrics_enabled() {
        unicert_telemetry::global().counter("survey.quarantined", stage).inc();
    }
    let flight = unicert_telemetry::flight::dump();
    report.quarantine.push(QuarantineEntry { index, cert_id, stage, detail, flight });
}

/// Lowercase-hex serial number — the quarantine `cert_id` for a parsed
/// certificate.
fn hex_serial(serial: &[u8]) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(serial.len() * 2);
    for b in serial {
        let _ = write!(s, "{b:02x}");
    }
    if s.is_empty() {
        s.push_str("(empty serial)");
    }
    s
}

/// Fold one corpus entry into `report` — the shared kernel of the serial
/// and sharded survey paths.
///
/// `stages` (present iff metrics are enabled) carries the per-stage latency
/// histograms; the stage blocks below are contiguous so consecutive
/// timestamps partition the whole per-certificate cost. Telemetry never
/// feeds back into `report` — the fold is byte-identical with or without it.
///
/// # Panic quarantine
///
/// The fallible stages — classification, linting, and the field-matrix
/// scan — run under [`catch_unwind`] *before* any of their results touch
/// the report. A panic in any stage quarantines the certificate: one
/// [`QuarantineEntry`] is recorded (against `index`, the certificate's
/// global stream position) and **no** aggregate beyond `entries`/`total`
/// changes, so one hostile certificate never skews another's statistics
/// and serial/sharded runs stay byte-identical.
fn accumulate(
    report: &mut SurveyReport,
    registry: &unicert_lint::Registry,
    index: u64,
    entry: &CorpusEntry,
    opts: &SurveyOptions,
    telemetry: Option<&mut ShardTelemetry>,
) {
    // One certificate = one flight-recorder unit: clear this worker's ring
    // so a later quarantine dump holds exactly this certificate's history.
    unicert_telemetry::flight::begin_unit(index);
    report.entries += 1;
    // §4.1: precertificates are filtered out by the poison extension.
    if entry.cert.tbs.is_precertificate() {
        report.precerts_filtered += 1;
        return;
    }
    // One decode-once context shared by classification, the 95-lint run,
    // and the field-matrix scan. A panic in any stage only poisons this
    // certificate's context, which is dropped with the quarantined cert.
    let ctx = unicert_lint::LintContext::new(&entry.cert);
    accumulate_ctx(report, registry, index, &ctx, &entry.meta, opts, telemetry);
}

/// [`accumulate`] over the zero-copy [`CertView`] — the borrowed hot path.
/// Same stages, same quarantine containment, same report bytes as the
/// owned kernel on the same DER.
fn accumulate_view(
    report: &mut SurveyReport,
    registry: &unicert_lint::Registry,
    index: u64,
    view: &CertView<'_>,
    meta: &CertMeta,
    opts: &SurveyOptions,
    telemetry: Option<&mut ShardTelemetry>,
) {
    unicert_telemetry::flight::begin_unit(index);
    report.entries += 1;
    // §4.1: precertificates are filtered out by the poison extension.
    if view.is_precertificate() {
        report.precerts_filtered += 1;
        return;
    }
    let ctx = unicert_lint::LintContext::from_view(view);
    accumulate_ctx(report, registry, index, &ctx, meta, opts, telemetry);
}

/// The source-agnostic aggregation kernel: everything after the
/// precertificate filter, reading the certificate exclusively through the
/// [`unicert_lint::LintContext`] accessors so the owned and borrowed paths
/// share one fold.
fn accumulate_ctx(
    report: &mut SurveyReport,
    registry: &unicert_lint::Registry,
    index: u64,
    ctx: &unicert_lint::LintContext<'_>,
    meta: &CertMeta,
    opts: &SurveyOptions,
    telemetry: Option<&mut ShardTelemetry>,
) {
    report.total += 1;

    let (stages, tally) = match telemetry {
        Some(t) => (Some(&t.stages), Some(&mut t.tally)),
        None => (None, None),
    };
    // Stage timing rides the same 1-in-`metrics_sample()` sequence as the
    // per-lint latency histograms: untimed certificates pay no clock reads.
    let timed = tally.as_ref().is_some_and(|t| t.will_time_next());
    let mut stamp = timed.then(Instant::now);

    unicert_telemetry::flight::record("stage", "classify", 0);
    let class = match catch_unwind(AssertUnwindSafe(|| classify::classify_ctx(ctx))) {
        Ok(class) => class,
        Err(payload) => {
            let id = hex_serial(ctx.serial());
            return push_quarantine(report, index, id, "classify", payload_string(&*payload));
        }
    };
    stage_mark(&mut stamp, stages.map(|s| &s.classify));

    unicert_telemetry::flight::record("stage", "lint", 0);
    let lint_run = catch_unwind(AssertUnwindSafe(|| match tally {
        Some(tally) => registry.run_tallied_ctx(ctx, opts.lint, tally),
        None => registry.run_ctx(ctx, opts.lint),
    }));
    let lint_report = match lint_run {
        Ok(lint_report) => lint_report,
        Err(payload) => {
            let id = hex_serial(ctx.serial());
            return push_quarantine(report, index, id, "lint", payload_string(&*payload));
        }
    };
    let nc = lint_report.is_noncompliant();
    stage_mark(&mut stamp, stages.map(|s| &s.lint));

    let marks = if opts.field_matrix {
        unicert_telemetry::flight::record("stage", "field_matrix", 0);
        match catch_unwind(AssertUnwindSafe(|| field_matrix_marks(ctx))) {
            Ok(marks) => Some(marks),
            Err(payload) => {
                let id = hex_serial(ctx.serial());
                return push_quarantine(
                    report,
                    index,
                    id,
                    "field_matrix",
                    payload_string(&*payload),
                );
            }
        }
    } else {
        None
    };
    stage_mark(&mut stamp, stages.map(|s| &s.field_matrix));

    // All fallible stages succeeded — from here on the fold is pure
    // aggregation and the certificate lands in the report atomically.
    if class.is_idn_cert() {
        report.idn_certs += 1;
    }
    let trusted = meta.trust == TrustStatus::Public;
    if trusted {
        report.trusted_total += 1;
    }

    let issued = ctx.validity().not_before;
    let expires = ctx.validity().not_after;
    let recent = issued.year >= RECENT_FROM;
    let alive_now = expires.year >= ALIVE_FROM && issued <= SURVEY_CUTOFF;
    let validity_days = ctx.validity().period_days();

    // Figure 3 samples.
    if nc {
        report.validity.noncompliant.push(validity_days);
    }
    if class.is_idn_cert() {
        report.validity.idn.push(validity_days);
    } else {
        report.validity.other.push(validity_days);
    }

    // Figure 2 series.
    for year in issued.year..=expires.year.min(2025) {
        let ys = report.by_year.entry(year).or_default();
        ys.alive += 1;
        if nc {
            ys.alive_noncompliant += 1;
        }
    }
    let ys = report.by_year.entry(issued.year).or_default();
    ys.issued += 1;
    if trusted {
        ys.trusted += 1;
    }
    if nc {
        ys.noncompliant += 1;
    }

    // Table 2.
    let is_ = report
        .by_issuer
        .entry(meta.issuer_org.clone())
        .or_insert_with(|| IssuerStats {
            trust: meta.trust,
            total: 0,
            noncompliant: 0,
            recent_noncompliant: 0,
        });
    is_.total += 1;
    if nc {
        is_.noncompliant += 1;
        if recent {
            is_.recent_noncompliant += 1;
        }
    }

    // Tables 1 and 11.
    if nc {
        report.noncompliant += 1;
        if trusted {
            report.noncompliant_trusted += 1;
        }
        if lint_report.hit_new_lint() {
            report.noncompliant_by_new_lints += 1;
        }
        for nc_type in lint_report.nc_types() {
            let ts = report.by_type.entry(nc_type).or_default();
            ts.certs += 1;
            if trusted {
                ts.trusted += 1;
            }
            if recent {
                ts.recent += 1;
            }
            if alive_now {
                ts.alive += 1;
            }
            let findings = lint_report.findings.iter().filter(|f| f.nc_type == nc_type);
            let mut has_err = false;
            let mut has_warn = false;
            let mut has_new = false;
            for f in findings {
                match f.severity {
                    Severity::Error => has_err = true,
                    Severity::Warning => has_warn = true,
                }
                if f.new_lint {
                    has_new = true;
                }
            }
            if has_err {
                ts.errors += 1;
            }
            if has_warn {
                ts.warnings += 1;
            }
            if has_new {
                ts.by_new_lints += 1;
            }
        }
        for f in &lint_report.findings {
            *report.by_lint.entry(f.lint).or_default() += 1;
        }
    }

    // Figure 4 matrix.
    if let Some(marks) = marks {
        apply_field_matrix(report, &meta.issuer_org, nc, &marks);
    }
    stage_mark(&mut stamp, stages.map(|s| &s.aggregate));
}

/// Resolve the lint registry a run's options select: the shared registry
/// of `opts.lint.effective_profile()` (explicit option, `UNICERT_PROFILE`
/// environment variable, or the `webpki` default).
fn resolve_registry(opts: &SurveyOptions) -> &'static unicert_lint::Registry {
    // `effective_profile` only returns registered names, so the fallback
    // arm is belt-and-braces.
    unicert_lint::profiles::registry(opts.lint.effective_profile())
        .unwrap_or_else(unicert_corpus::lint_registry)
}

/// Run the survey over a corpus stream on the calling thread, linting
/// under the profile `opts.lint` selects.
pub fn run(entries: impl Iterator<Item = CorpusEntry>, opts: SurveyOptions) -> SurveyReport {
    run_with(resolve_registry(&opts), entries, opts)
}

/// [`run`] with an explicit lint registry.
///
/// The default paths share the process-wide registry; this entry point
/// exists for fault-injection tests that register deliberately panicking
/// lints without contaminating the shared registry.
pub fn run_with(
    registry: &unicert_lint::Registry,
    entries: impl Iterator<Item = CorpusEntry>,
    opts: SurveyOptions,
) -> SurveyReport {
    let mut telemetry = ShardTelemetry::if_enabled(registry);
    let _span = unicert_telemetry::span!("survey.run");
    let mut report = SurveyReport::default();
    for (index, entry) in entries.enumerate() {
        accumulate(&mut report, registry, index as u64, &entry, &opts, telemetry.as_mut());
    }
    ShardTelemetry::flush(telemetry, registry);
    report.profile = registry.profile_name();
    report
}

/// Run the survey over a corpus stream on a sharded worker pool.
///
/// The stream is cut into deterministic chunks of
/// `opts.lint.effective_shard_size()` entries; `opts.lint.effective_threads()`
/// workers survey the chunks in parallel, and the per-chunk reports merge in
/// chunk order. The result is **byte-identical** to [`run`] for any thread
/// count — see DESIGN.md §7 for the invariant argument.
///
/// Production of the stream itself is serialized (the corpus generator owns
/// one sequential RNG); classification + linting, the dominant cost, runs on
/// the pool. For a pre-materialized corpus use [`run_parallel_slice`], which
/// shards without cloning or generation handoff.
pub fn run_parallel(
    entries: impl Iterator<Item = CorpusEntry> + Send,
    opts: SurveyOptions,
) -> SurveyReport {
    use unicert_corpus::IntoChunks;
    let threads = opts.lint.effective_threads();
    if threads <= 1 {
        return run(entries, opts);
    }
    let registry = resolve_registry(&opts);
    let _span = unicert_telemetry::span!("survey.run_parallel", "threads={threads}");
    let shard_size = opts.lint.effective_shard_size();
    let shards = crate::pool::map_ordered(entries.chunked(shard_size), threads, |chunk| {
        let _span =
            unicert_telemetry::span!(verbose: "survey.shard", "{}", chunk.entries.len());
        let mut telemetry = ShardTelemetry::if_enabled(registry);
        let mut shard = SurveyReport::default();
        let base = chunk.index as u64 * shard_size as u64;
        for (offset, entry) in chunk.entries.iter().enumerate() {
            accumulate(
                &mut shard,
                registry,
                base + offset as u64,
                entry,
                &opts,
                telemetry.as_mut(),
            );
        }
        ShardTelemetry::flush(telemetry, registry);
        shard
    });
    let mut merged = merge_in_order(shards);
    merged.profile = registry.profile_name();
    merged
}

/// Run the survey over an in-memory corpus slice on a sharded worker pool.
///
/// Same determinism guarantee as [`run_parallel`], but shards are borrowed
/// sub-slices (`slice.chunks()`), so there is no producer serialization at
/// all — this is the path the throughput benchmark measures.
pub fn run_parallel_slice(entries: &[CorpusEntry], opts: SurveyOptions) -> SurveyReport {
    run_parallel_slice_with(resolve_registry(&opts), entries, opts)
}

/// [`run_parallel_slice`] with an explicit lint registry — the sharded
/// counterpart of [`run_with`], for fault-injection tests.
pub fn run_parallel_slice_with(
    registry: &unicert_lint::Registry,
    entries: &[CorpusEntry],
    opts: SurveyOptions,
) -> SurveyReport {
    run_parallel_slice_from(registry, entries, opts, 0)
}

/// [`run_parallel_slice_with`] over a slice that starts at global stream
/// position `base` rather than 0.
///
/// This is the incremental-survey building block (`unicert-store`): a
/// persistent corpus is surveyed one store shard at a time, and each
/// shard's entries must carry their *global* indexes so quarantine lists
/// from resumed runs merge into exactly the one-shot list. Internal
/// chunking still follows `opts.lint.effective_shard_size()`, so the
/// result is byte-identical for any thread count and independent of how
/// the caller cuts the stream into slices (the shard-merge invariant,
/// DESIGN.md §7).
pub fn run_parallel_slice_from(
    registry: &unicert_lint::Registry,
    entries: &[CorpusEntry],
    opts: SurveyOptions,
    base: u64,
) -> SurveyReport {
    let threads = opts.lint.effective_threads();
    if threads <= 1 {
        let _span = unicert_telemetry::span!("survey.run_parallel_slice", "threads=1");
        let mut telemetry = ShardTelemetry::if_enabled(registry);
        let mut report = SurveyReport::default();
        for (index, entry) in entries.iter().enumerate() {
            accumulate(
                &mut report,
                registry,
                base + index as u64,
                entry,
                &opts,
                telemetry.as_mut(),
            );
        }
        ShardTelemetry::flush(telemetry, registry);
        report.profile = registry.profile_name();
        return report;
    }
    let _span =
        unicert_telemetry::span!("survey.run_parallel_slice", "threads={threads}");
    let shard_size = opts.lint.effective_shard_size();
    let chunks = entries.chunks(shard_size).enumerate();
    let shards = crate::pool::map_ordered(chunks, threads, |(chunk_idx, chunk)| {
        let _span = unicert_telemetry::span!(verbose: "survey.shard", "{}", chunk.len());
        let mut telemetry = ShardTelemetry::if_enabled(registry);
        let mut shard = SurveyReport::default();
        let chunk_base = base + chunk_idx as u64 * shard_size as u64;
        for (offset, entry) in chunk.iter().enumerate() {
            accumulate(
                &mut shard,
                registry,
                chunk_base + offset as u64,
                entry,
                &opts,
                telemetry.as_mut(),
            );
        }
        ShardTelemetry::flush(telemetry, registry);
        shard
    });
    let mut merged = merge_in_order(shards);
    merged.profile = registry.profile_name();
    merged
}

/// Fold one borrowed record into `report`: parse its DER into a
/// [`CertView`] and run the view kernel. The parse uses the default
/// [`ParseBudget`] — the same budget the store's segment decoder already
/// validated every record against — so for records from a validated
/// segment the parse cannot fail.
fn accumulate_record(
    report: &mut SurveyReport,
    registry: &unicert_lint::Registry,
    index: u64,
    entry: &RawEntry<'_>,
    opts: &SurveyOptions,
    telemetry: Option<&mut ShardTelemetry>,
) {
    let budget = ParseBudget::default();
    let state = budget.start();
    match CertView::parse_der_budgeted(entry.der, &state) {
        Ok(view) => {
            accumulate_view(report, registry, index, &view, &entry.meta, opts, telemetry);
        }
        Err(e) => {
            // Unreachable for records out of a validated segment (decoding
            // already proved each one parses); quarantine instead of
            // panicking so a caller feeding unvalidated records degrades
            // to one skipped certificate.
            unicert_telemetry::flight::begin_unit(index);
            report.entries += 1;
            push_quarantine(
                report,
                index,
                format!("#{index}"),
                "parse",
                format!("record does not parse ({})", e.class()),
            );
        }
    }
}

/// [`run_parallel_slice_from`] over zero-copy records: each certificate is
/// parsed into a [`CertView`] of its borrowed DER at lint time — no owned
/// [`unicert_x509::Certificate`] tree, no per-certificate copy of the DER.
/// Chunking, global indexing, and merge order are identical to the owned
/// entry point, so a store-resumed survey through this path stays
/// byte-identical to a one-shot in-memory survey of the same corpus at any
/// thread count (the shard-merge invariant, DESIGN.md §7).
pub fn run_parallel_records_from(
    registry: &unicert_lint::Registry,
    records: &[RawEntry<'_>],
    opts: SurveyOptions,
    base: u64,
) -> SurveyReport {
    let threads = opts.lint.effective_threads();
    if threads <= 1 {
        let _span = unicert_telemetry::span!("survey.run_parallel_records", "threads=1");
        let mut telemetry = ShardTelemetry::if_enabled(registry);
        let mut report = SurveyReport::default();
        for (index, entry) in records.iter().enumerate() {
            accumulate_record(
                &mut report,
                registry,
                base + index as u64,
                entry,
                &opts,
                telemetry.as_mut(),
            );
        }
        ShardTelemetry::flush(telemetry, registry);
        report.profile = registry.profile_name();
        return report;
    }
    let _span =
        unicert_telemetry::span!("survey.run_parallel_records", "threads={threads}");
    let shard_size = opts.lint.effective_shard_size();
    let chunks = records.chunks(shard_size).enumerate();
    let shards = crate::pool::map_ordered(chunks, threads, |(chunk_idx, chunk)| {
        let _span = unicert_telemetry::span!(verbose: "survey.shard", "{}", chunk.len());
        let mut telemetry = ShardTelemetry::if_enabled(registry);
        let mut shard = SurveyReport::default();
        let chunk_base = base + chunk_idx as u64 * shard_size as u64;
        for (offset, entry) in chunk.iter().enumerate() {
            accumulate_record(
                &mut shard,
                registry,
                chunk_base + offset as u64,
                entry,
                &opts,
                telemetry.as_mut(),
            );
        }
        ShardTelemetry::flush(telemetry, registry);
        shard
    });
    let mut merged = merge_in_order(shards);
    merged.profile = registry.profile_name();
    merged
}

/// Fold one raw DER input into `report` — the kernel of the hostile-input
/// survey paths [`run_bytes`] / [`run_parallel_bytes`].
///
/// Parsing (plus metadata inference) runs under the certificate's
/// [`ParseBudget`] and inside [`catch_unwind`]; the input lands in exactly
/// one [`ParseOutcome`] class in `report.parse_outcomes` (and, metrics on,
/// one `parse.outcome{class}` tick). Only inputs that parse continue into
/// [`accumulate`].
fn accumulate_bytes(
    report: &mut SurveyReport,
    registry: &unicert_lint::Registry,
    index: u64,
    der: &[u8],
    opts: &SurveyOptions,
    budget: &ParseBudget,
    telemetry: Option<&mut ShardTelemetry>,
) {
    // Begin the unit before parsing so a parse-stage panic dumps a ring
    // holding only this input's history. `accumulate` re-begins the same
    // unit for inputs that parse, dropping this breadcrumb — harmless,
    // since the parse stage is over by then.
    unicert_telemetry::flight::begin_unit(index);
    unicert_telemetry::flight::record("stage", "parse", der.len() as u64);
    // Zero-copy decode: the view borrows `der` (through the budget state),
    // so nothing is copied out of the input on the hot path. Error values
    // and charge order are identical to `Certificate::parse_der_budgeted`.
    let state = budget.start();
    let parsed = catch_unwind(AssertUnwindSafe(|| {
        CertView::parse_der_budgeted(der, &state).map(|view| {
            let meta = CertMeta::inferred_view(&view);
            (view, meta)
        })
    }));
    let class = match &parsed {
        Err(_) => ParseOutcome::Quarantined.class(),
        Ok(Err(e)) => ParseOutcome::from_error(e).class(),
        Ok(Ok(_)) => ParseOutcome::Ok.class(),
    };
    *report.parse_outcomes.entry(class).or_default() += 1;
    if unicert_telemetry::metrics_enabled() {
        unicert_telemetry::global().counter("parse.outcome", class).inc();
    }
    match parsed {
        Err(payload) => {
            report.entries += 1;
            let detail = payload_string(&*payload);
            push_quarantine(report, index, format!("#{index}"), "parse", detail);
        }
        Ok(Err(_)) => {
            // Rejected with a structural error: counted above, nothing to
            // survey. Still an inspected entry.
            report.entries += 1;
        }
        Ok(Ok((view, meta))) => {
            accumulate_view(report, registry, index, &view, &meta, opts, telemetry);
        }
    }
}

/// Run the survey over raw DER inputs on the calling thread.
///
/// This is the hostile-input entry point: every input is parsed under
/// `budget`, classified into [`SurveyReport::parse_outcomes`], and — only
/// if it parses — surveyed like a corpus entry (with metadata inferred
/// from the certificate itself via [`CertMeta::inferred`]). No input can
/// panic the process: parse-stage panics quarantine with stage `"parse"`
/// and a `#<index>` cert id.
pub fn run_bytes(ders: &[Vec<u8>], opts: SurveyOptions, budget: &ParseBudget) -> SurveyReport {
    let registry = resolve_registry(&opts);
    let mut telemetry = ShardTelemetry::if_enabled(registry);
    let _span = unicert_telemetry::span!("survey.run_bytes");
    let mut report = SurveyReport::default();
    for (index, der) in ders.iter().enumerate() {
        accumulate_bytes(
            &mut report,
            registry,
            index as u64,
            der,
            &opts,
            budget,
            telemetry.as_mut(),
        );
    }
    ShardTelemetry::flush(telemetry, registry);
    report.profile = registry.profile_name();
    report
}

/// Sharded [`run_bytes`] — byte-identical to the serial pass (including
/// the quarantine list and parse-outcome counters) for any thread count,
/// by the same shard-order-merge argument as [`run_parallel_slice`].
pub fn run_parallel_bytes(
    ders: &[Vec<u8>],
    opts: SurveyOptions,
    budget: &ParseBudget,
) -> SurveyReport {
    let registry = resolve_registry(&opts);
    let threads = opts.lint.effective_threads();
    if threads <= 1 {
        return run_bytes(ders, opts, budget);
    }
    let _span = unicert_telemetry::span!("survey.run_parallel_bytes", "threads={threads}");
    let shard_size = opts.lint.effective_shard_size();
    let chunks = ders.chunks(shard_size).enumerate();
    let shards = crate::pool::map_ordered(chunks, threads, |(chunk_idx, chunk)| {
        let _span = unicert_telemetry::span!(verbose: "survey.shard", "{}", chunk.len());
        let mut telemetry = ShardTelemetry::if_enabled(registry);
        let mut shard = SurveyReport::default();
        let base = chunk_idx as u64 * shard_size as u64;
        for (offset, der) in chunk.iter().enumerate() {
            accumulate_bytes(
                &mut shard,
                registry,
                base + offset as u64,
                der,
                &opts,
                budget,
                telemetry.as_mut(),
            );
        }
        ShardTelemetry::flush(telemetry, registry);
        shard
    });
    let mut merged = merge_in_order(shards);
    merged.profile = registry.profile_name();
    merged
}

/// Fold per-shard reports, already sorted in shard order, into one.
/// Records the full merge cost as one `survey.merge_ns` observation.
fn merge_in_order(shards: Vec<SurveyReport>) -> SurveyReport {
    let _span = unicert_telemetry::span!("survey.merge", "{}", shards.len());
    let started = unicert_telemetry::metrics_enabled().then(Instant::now);
    let mut merged = SurveyReport::default();
    for shard in shards {
        merged.merge(shard);
    }
    if let Some(started) = started {
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        unicert_telemetry::global().histogram("survey.merge_ns", "").record(nanos);
    }
    merged
}

/// Field labels of the certificate carrying internationalized content —
/// the pure half of the Figure 4 matrix, computed before any report
/// mutation so a panic here quarantines the certificate without leaving a
/// half-applied row behind. Duplicate labels are preserved (one per
/// attribute). Reads exclusively through the context so the owned and
/// borrowed survey paths share it.
fn field_matrix_marks(ctx: &unicert_lint::LintContext<'_>) -> Vec<&'static str> {
    use unicert_asn1::oid::known;
    use unicert_lint::helpers::Which;
    let mut marks = Vec::new();
    let field_label = |oid: &unicert_asn1::Oid| -> Option<&'static str> {
        if *oid == known::common_name() {
            Some("CN")
        } else if *oid == known::organization_name() {
            Some("O")
        } else if *oid == known::organizational_unit() {
            Some("OU")
        } else if *oid == known::locality_name() {
            Some("L")
        } else if *oid == known::state_or_province() {
            Some("ST")
        } else if *oid == known::street_address() {
            Some("STREET")
        } else if *oid == known::serial_number() {
            Some("serialNumber")
        } else {
            None
        }
    };
    for attr in ctx.dn_attrs(Which::Subject) {
        if let Some(label) = field_label(&attr.oid) {
            if attr.val.bytes().iter().any(|&b| !(0x20..=0x7E).contains(&b)) {
                marks.push(label);
            }
        }
    }
    if ctx.san_dns().iter().any(|v| {
        let h = v.raw().display_lossy();
        unicert_idna::is_idn_domain(&h) || !h.is_ascii()
    }) {
        marks.push("SAN");
    }
    if ctx.has_extension(&known::certificate_policies()) {
        // explicitText with non-ASCII or non-UTF8 encodings.
        if ctx
            .explicit_texts()
            .iter()
            .any(|t| t.bytes().iter().any(|&b| !(0x20..=0x7E).contains(&b)))
        {
            marks.push("CP");
        }
    }
    marks
}

/// Apply pre-computed [`field_matrix_marks`] to the Figure 4 matrix.
fn apply_field_matrix(
    report: &mut SurveyReport,
    issuer: &str,
    nc: bool,
    marks: &[&'static str],
) {
    for &field in marks {
        let cell = report
            .field_matrix
            .entry((issuer.to_string(), field))
            .or_default();
        cell.0 += 1;
        if nc {
            cell.1 += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicert_corpus::{CorpusConfig, CorpusGenerator};

    fn survey(size: usize) -> SurveyReport {
        let gen = CorpusGenerator::new(CorpusConfig {
            size,
            seed: 42,
            precert_fraction: 0.3,
            latent_defects: true,
        });
        run(gen, SurveyOptions::default())
    }

    #[test]
    fn precerts_are_filtered() {
        let r = survey(2_000);
        assert!(r.precerts_filtered > 300);
        assert_eq!(r.total + r.precerts_filtered, r.entries);
    }

    #[test]
    fn headline_rates_in_paper_bands() {
        let r = survey(20_000);
        let nc_rate = r.noncompliant as f64 / r.total as f64;
        assert!((0.003..0.02).contains(&nc_rate), "{nc_rate}");
        // Trusted share of all Unicerts: paper reports 90.1% historically
        // and ≥97.2% for every CT-era year; our corpus is CT-era only, so
        // it sits at the high end.
        let trusted_share = r.trusted_total as f64 / r.total as f64;
        assert!((0.85..0.995).contains(&trusted_share), "{trusted_share}");
        // Trusted share of noncompliant ≈ 65% (paper: 65.3%).
        if r.noncompliant > 50 {
            let nc_trusted = r.noncompliant_trusted as f64 / r.noncompliant as f64;
            assert!((0.3..0.9).contains(&nc_trusted), "{nc_trusted}");
        }
    }

    #[test]
    fn invalid_encoding_dominates_types() {
        let r = survey(30_000);
        let enc = r.by_type.get(&NoncomplianceType::InvalidEncoding).map(|t| t.certs).unwrap_or(0);
        let chr = r.by_type.get(&NoncomplianceType::InvalidCharacter).map(|t| t.certs).unwrap_or(0);
        let fmt = r.by_type.get(&NoncomplianceType::IllegalFormat).map(|t| t.certs).unwrap_or(0);
        assert!(enc > chr, "encoding {enc} vs character {chr}");
        assert!(enc > fmt, "encoding {enc} vs format {fmt}");
    }

    #[test]
    fn issuer_table_shape() {
        let r = survey(30_000);
        // Let's Encrypt dominates volume with a tiny NC rate.
        let le = &r.by_issuer["Let's Encrypt"];
        assert!(le.total > r.total / 2);
        assert!((le.noncompliant as f64) / (le.total as f64) < 0.02);
        // High-NC issuers show high rates when present.
        if let Some(cp) = r.by_issuer.get("Česká pošta, s.p.") {
            if cp.total >= 10 {
                assert!(cp.noncompliant as f64 / cp.total as f64 > 0.5);
            }
        }
    }

    #[test]
    fn trend_is_upward() {
        let r = survey(20_000);
        let y2016 = r.by_year.get(&2016).map(|y| y.issued).unwrap_or(0);
        let y2024 = r.by_year.get(&2024).map(|y| y.issued).unwrap_or(0);
        assert!(y2024 > y2016 * 3, "{y2016} vs {y2024}");
    }

    #[test]
    fn validity_cdf_shapes() {
        let r = survey(20_000);
        let frac = |v: &[i64], p: &dyn Fn(i64) -> bool| {
            if v.is_empty() {
                return 0.0;
            }
            v.iter().filter(|&&d| p(d)).count() as f64 / v.len() as f64
        };
        assert!(frac(&r.validity.idn, &|d| d <= 90) > 0.8);
        assert!(frac(&r.validity.noncompliant, &|d| d >= 365) > 0.4);
    }

    #[test]
    fn field_matrix_collects_scripts() {
        let r = survey(5_000);
        // Some issuer must show Unicode in O.
        assert!(r.field_matrix.keys().any(|(_, f)| *f == "O"));
        assert!(r.field_matrix.keys().any(|(_, f)| *f == "SAN"));
    }

    /// Does the injected chaos lint panic on this certificate?
    fn panics_on(cert: &unicert_x509::Certificate) -> bool {
        cert.tbs.serial.last().is_some_and(|b| b % 8 == 3)
    }

    /// The default registry plus one deliberately panicking lint.
    fn sabotaged_registry() -> unicert_lint::Registry {
        use unicert_lint::{Lint, LintStatus, Source};
        let mut reg = unicert_lint::default_registry();
        reg.register(Lint {
            name: "x_chaos_injected_panic",
            description: "test-only lint that panics on selected serials",
            citation: "none",
            // Rfc5280's 2008 effective date predates every corpus cert, so
            // date gating never spares a cert the predicate selects.
            source: Source::Rfc5280,
            severity: Severity::Warning,
            nc_type: NoncomplianceType::InvalidEncoding,
            new_lint: false,
            check: Box::new(|ctx| {
                if panics_on(ctx.cert()) {
                    panic!("injected lint panic");
                }
                LintStatus::Pass
            }),
        });
        reg
    }

    #[test]
    fn panicking_lint_quarantines_exactly_affected_certs() {
        let entries: Vec<_> = CorpusGenerator::new(CorpusConfig {
            size: 400,
            seed: 7,
            precert_fraction: 0.0,
            latent_defects: true,
        })
        .collect();
        let affected: Vec<u64> = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| panics_on(&e.cert))
            .map(|(i, _)| i as u64)
            .collect();
        assert!(!affected.is_empty(), "predicate must hit the corpus");
        assert!(affected.len() < entries.len(), "predicate must spare certs");

        let sabotaged = sabotaged_registry();
        let opts = |threads| SurveyOptions {
            lint: RunOptions { threads: Some(threads), ..RunOptions::default() },
            ..SurveyOptions::default()
        };

        // Expected report: the unaffected certs surveyed normally (the
        // extra lint never fires on them, so the default registry gives
        // the same aggregates), plus entries/total counting everything
        // and one quarantine record per affected cert.
        let spared: Vec<_> = entries
            .iter()
            .filter(|e| !panics_on(&e.cert))
            .cloned()
            .collect();
        let mut expected =
            run_with(unicert_corpus::lint_registry(), spared.into_iter(), opts(1));
        expected.entries = entries.len();
        expected.total = entries.len();
        expected.quarantine = affected
            .iter()
            .map(|&index| QuarantineEntry {
                index,
                cert_id: hex_serial(&entries[index as usize].cert.tbs.serial),
                stage: "lint",
                detail: "injected lint panic".to_string(),
                flight: Vec::new(),
            })
            .collect();

        let reports: Vec<_> = crate::pool::quiet_panics(|| {
            [1, 2, 4, 8]
                .map(|threads| run_parallel_slice_with(&sabotaged, &entries, opts(threads)))
                .into_iter()
                .collect()
        });
        for (report, threads) in reports.iter().zip([1, 2, 4, 8]) {
            // Every quarantine entry must carry a flight dump naming the
            // panicking lint and this certificate's unit id…
            let mut stripped = report.clone();
            for q in &mut stripped.quarantine {
                assert!(!q.flight.is_empty(), "index {} has no flight dump", q.index);
                assert!(
                    q.flight[0].starts_with(&format!("unit {} ", q.index)),
                    "index {}: {:?}",
                    q.index,
                    q.flight[0]
                );
                assert!(
                    q.flight.iter().any(|l| l == "context x_chaos_injected_panic"),
                    "index {}: {:?}",
                    q.index,
                    q.flight
                );
                q.flight.clear();
            }
            // …and everything else must match the serial no-panic expectation.
            assert_eq!(stripped, expected, "threads={threads}");
        }
        // The dumps themselves are deterministic across thread counts.
        for (report, threads) in reports.iter().zip([1, 2, 4, 8]).skip(1) {
            assert_eq!(report.quarantine, reports[0].quarantine, "threads={threads}");
        }
    }

    #[test]
    fn bytes_path_serial_parallel_identical_and_classified() {
        let entries: Vec<_> = CorpusGenerator::new(CorpusConfig {
            size: 200,
            seed: 11,
            precert_fraction: 0.2,
            latent_defects: true,
        })
        .collect();
        let mut ders: Vec<Vec<u8>> = entries.iter().map(|e| e.cert.raw.clone()).collect();
        // Interleave hostile inputs among the real certificates.
        ders.insert(0, Vec::new()); // empty
        ders.insert(50, ders[10][..40].to_vec()); // truncated cert
        ders.insert(100, vec![0xde, 0xad, 0xbe, 0xef]); // garbage
        let budget = ParseBudget::default();

        let serial = run_bytes(&ders, SurveyOptions::default(), &budget);
        assert_eq!(serial.entries, ders.len());
        assert_eq!(serial.parse_outcomes["ok"], entries.len());
        let rejected: usize = serial
            .parse_outcomes
            .iter()
            .filter(|(class, _)| **class != "ok")
            .map(|(_, n)| n)
            .sum();
        assert_eq!(rejected, 3);
        assert!(serial.quarantine.is_empty());

        for threads in [2, 4, 8] {
            let opts = SurveyOptions {
                lint: RunOptions {
                    threads: Some(threads),
                    shard_size: 32,
                    ..RunOptions::default()
                },
                ..SurveyOptions::default()
            };
            let parallel = run_parallel_bytes(&ders, opts, &budget);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn quarantine_indexes_are_global_across_shards() {
        let entries: Vec<_> = CorpusGenerator::new(CorpusConfig {
            size: 300,
            seed: 21,
            precert_fraction: 0.0,
            latent_defects: true,
        })
        .collect();
        let sabotaged = sabotaged_registry();
        let opts = SurveyOptions {
            lint: RunOptions {
                threads: Some(4),
                shard_size: 16,
                ..RunOptions::default()
            },
            ..SurveyOptions::default()
        };
        let report =
            crate::pool::quiet_panics(|| run_parallel_slice_with(&sabotaged, &entries, opts));
        assert!(!report.quarantine.is_empty());
        for q in &report.quarantine {
            assert!(panics_on(&entries[q.index as usize].cert), "index {}", q.index);
            // The flight dump's unit id is the same global stream index.
            assert!(
                q.flight.first().is_some_and(|l| l.starts_with(&format!("unit {} ", q.index))),
                "index {}: {:?}",
                q.index,
                q.flight
            );
        }
        // Stream order: indexes strictly increase across shard merges.
        for pair in report.quarantine.windows(2) {
            assert!(pair[0].index < pair[1].index);
        }
    }
}
