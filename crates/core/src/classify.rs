//! Unicert classification (§2.3 / §4.1).
//!
//! A certificate is a *Unicert* when it contains characters beyond
//! printable ASCII (U+0020–U+007E) in any field, or IDNs in its
//! DNSName-related fields. An *IDNCert* is the IDN-carrying subset.

use unicert_asn1::oid::known;

use unicert_lint::helpers::Which;
use unicert_lint::LintContext;
use unicert_x509::{Certificate, GeneralName};

/// Classification of one certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnicertClass {
    /// Any field carries non-printable-ASCII content.
    pub has_unicode: bool,
    /// DNS-related fields carry IDNs (A-labels or raw U-labels).
    pub has_idn: bool,
}

impl UnicertClass {
    /// Is this certificate a Unicert at all?
    pub fn is_unicert(&self) -> bool {
        self.has_unicode || self.has_idn
    }

    /// Is it an IDNCert?
    pub fn is_idn_cert(&self) -> bool {
        self.has_idn
    }
}

fn value_has_unicode(bytes: &[u8]) -> bool {
    // Raw byte view: anything outside 0x20..=0x7E counts (§2.3 applies to
    // contents regardless of decodability).
    bytes.iter().any(|&b| !(0x20..=0x7E).contains(&b))
}

/// Classify a certificate.
pub fn classify(cert: &Certificate) -> UnicertClass {
    classify_ctx(&LintContext::new(cert))
}

/// Classify through a memoized [`LintContext`], sharing parsed extensions
/// and decoded attribute text with the lint run that uses the same context.
pub fn classify_ctx(ctx: &LintContext<'_>) -> UnicertClass {
    let mut has_unicode = false;
    let mut has_idn = false;

    for attr in ctx.dn_attrs(Which::Subject).iter().chain(ctx.dn_attrs(Which::Issuer)) {
        if value_has_unicode(attr.val.bytes()) {
            has_unicode = true;
        }
        // CN may carry a domain: IDN check applies to it too (§4.1 —
        // "containing IDNs in the DNSName-related fields (e.g. CommonName
        // and the extensions)").
        if attr.oid == known::common_name() {
            if let Some(text) = attr.val.wire_text() {
                if unicert_idna::is_idn_domain(text) {
                    has_idn = true;
                }
            }
        }
    }
    // All extensions (duplicates included), parse results memoized in ctx.
    for parsed in ctx.parsed_extensions().iter().flatten() {
        use unicert_x509::ParsedExtension::*;
        let names: Vec<&GeneralName> = match parsed {
            SubjectAltName(n) | IssuerAltName(n) => n.iter().collect(),
            CrlDistributionPoints(dps) => {
                dps.iter().flat_map(|d| d.full_names.iter()).collect()
            }
            AuthorityInfoAccess(ads) | SubjectInfoAccess(ads) => {
                ads.iter().map(|a| &a.location).collect()
            }
            CertificatePolicies(ps) => {
                for p in ps {
                    for q in &p.qualifiers {
                        if let unicert_x509::extensions::PolicyQualifier::UserNotice {
                            explicit_text: Some(t),
                        } = q
                        {
                            if value_has_unicode(&t.bytes) {
                                has_unicode = true;
                            }
                        }
                    }
                }
                Vec::new()
            }
            _ => Vec::new(),
        };
        for n in names {
            match n {
                GeneralName::DnsName(v) => {
                    if value_has_unicode(&v.bytes) {
                        has_unicode = true;
                    }
                    if let Ok(text) = v.decode_wire() {
                        if unicert_idna::is_idn_domain(&text) {
                            has_idn = true;
                        }
                    }
                }
                GeneralName::Rfc822Name(v) | GeneralName::Uri(v) => {
                    if value_has_unicode(&v.bytes) {
                        has_unicode = true;
                    }
                    if let Ok(text) = v.decode_wire() {
                        if text.split(['@', '/']).any(unicert_idna::is_idn_domain) {
                            has_idn = true;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    UnicertClass { has_unicode, has_idn }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicert_asn1::DateTime;
    use unicert_x509::{CertificateBuilder, SimKey};

    fn build(f: impl FnOnce(CertificateBuilder) -> CertificateBuilder) -> Certificate {
        f(CertificateBuilder::new().validity_days(DateTime::date(2024, 6, 1).unwrap(), 90))
            .build_signed(&SimKey::from_seed("classify-ca"))
    }

    #[test]
    fn ascii_cert_is_not_a_unicert() {
        let cert = build(|b| b.subject_cn("plain.example").add_dns_san("plain.example"));
        // Issuer has ASCII defaults too.
        let c = classify(&cert);
        assert!(!c.is_unicert());
    }

    #[test]
    fn unicode_org_is_a_unicert() {
        let cert = build(|b| b.subject_org("Müller GmbH"));
        assert!(classify(&cert).is_unicert());
        assert!(!classify(&cert).is_idn_cert());
    }

    #[test]
    fn ace_san_is_an_idncert() {
        let cert = build(|b| b.add_dns_san("xn--mnchen-3ya.de"));
        let c = classify(&cert);
        assert!(c.is_idn_cert());
        assert!(c.is_unicert());
        assert!(!c.has_unicode); // pure ASCII bytes, still an IDNCert
    }

    #[test]
    fn idn_in_cn_counts() {
        let cert = build(|b| b.subject_cn("xn--fiqs8s.cn"));
        assert!(classify(&cert).is_idn_cert());
    }

    #[test]
    fn control_bytes_count_as_unicode() {
        let cert = build(|b| {
            b.subject_attr_raw(
                unicert_asn1::oid::known::organization_name(),
                unicert_asn1::StringKind::Utf8,
                b"Evil\x00Org",
            )
        });
        assert!(classify(&cert).has_unicode);
    }
}
