//! `unicertlint` — lint certificates from files against a named
//! compliance profile (the Zlint-style CLI the paper's recommendations
//! propose releasing). The default profile is the 95-rule `webpki`
//! Unicert catalog; select another with `--profile <name>` or the
//! `UNICERT_PROFILE` environment variable (unknown names fall back to
//! the default).
//!
//! ```text
//! unicertlint [--ungated] [--quiet] [--profile <name>] <cert.pem|cert.der>...
//! unicertlint --demo            # lint a built-in noncompliant example
//! ```
//!
//! Exit status: 0 = all compliant, 1 = findings, 2 = usage/parse error.

use unicert::asn1::ParseBudget;
use unicert::lint::{RunOptions, Severity};
use unicert::x509::{pem, Certificate};

fn load_certificate(path: &str) -> Result<Certificate, String> {
    let budget = ParseBudget::default();
    let data = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if data.is_empty() {
        return Err(format!("{path}: empty input file"));
    }
    // One certificate per file: anything past the single-cert parse budget
    // is rejected up front with a size, not fed to the parser. (PEM decode
    // can only shrink the payload, so checking the file size bounds both
    // encodings.)
    if data.len() > budget.max_input {
        return Err(format!(
            "{path}: input is {} bytes, over the {}-byte single-certificate limit",
            data.len(),
            budget.max_input
        ));
    }
    let der = if data.starts_with(b"-----BEGIN") || data.windows(10).take(200).any(|w| w == b"-----BEGIN") {
        let text = String::from_utf8_lossy(&data);
        let (label, der) = pem::decode(&text).map_err(|e| format!("{path}: PEM: {e}"))?;
        if label != "CERTIFICATE" {
            return Err(format!("{path}: unexpected PEM label {label:?}"));
        }
        der
    } else {
        data
    };
    Certificate::parse_der_budgeted(&der, &budget).map_err(|e| format!("{path}: DER: {e}"))
}

fn demo_certificate() -> Certificate {
    use unicert::asn1::oid::known;
    use unicert::asn1::{DateTime, StringKind};
    use unicert::x509::{CertificateBuilder, SimKey};
    CertificateBuilder::new()
        .subject_attr(known::common_name(), StringKind::Bmp, "demo.example")
        .subject_attr_raw(known::organization_name(), StringKind::Utf8, b"Demo\x00Org")
        .add_dns_san("demo.example")
        .add_dns_san("xn--www-hn0a.demo.example")
        .validity_days(
            DateTime { year: 2024, month: 6, day: 1, hour: 0, minute: 0, second: 0 },
            90,
        )
        .build_signed(&SimKey::from_seed("demo-ca"))
}

fn lint_one(name: &str, cert: &Certificate, opts: RunOptions, quiet: bool) -> usize {
    let registry = unicert::lint::profiles::registry(opts.effective_profile())
        .unwrap_or_else(unicert::corpus::lint_registry);
    let report = registry.run(cert, opts);
    let class = unicert::classify::classify(cert);
    println!(
        "{name}: subject={:?} unicert={} idn={} findings={}",
        cert.tbs.subject.common_name().unwrap_or_default(),
        class.is_unicert(),
        class.is_idn_cert(),
        report.findings.len()
    );
    if !quiet {
        for f in &report.findings {
            let sev = match f.severity {
                Severity::Error => "ERROR",
                Severity::Warning => "WARN ",
            };
            println!("  {sev} [{}] {}", f.nc_type.label(), f.lint);
        }
    }
    report.findings.len()
}

fn main() {
    // Strict env handling for binaries: a malformed UNICERT_* variable is
    // a usage error here, not a silent library fallback.
    if let Err(problems) = RunOptions::validate_env() {
        eprintln!("error: invalid environment:\n{problems}");
        std::process::exit(2);
    }
    let mut opts = RunOptions::default();
    let mut quiet = false;
    let mut demo = false;
    let mut paths: Vec<String> = Vec::new();
    let usage = "usage: unicertlint [--ungated] [--quiet] [--profile <name>] <cert.pem|cert.der>... | --demo";
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ungated" => opts.enforce_effective_dates = false,
            "--quiet" => quiet = true,
            "--demo" => demo = true,
            "--profile" => {
                // Resolve now so a typo'd name is a usage error here, not a
                // silent fallback at lint time.
                let name = args.next().unwrap_or_default();
                match unicert::lint::profiles::find(&name) {
                    Some(p) => opts.profile = Some(p.name),
                    None => {
                        eprintln!("error: unknown profile {name:?}; registered profiles:");
                        for p in unicert::lint::profiles::all() {
                            eprintln!("  {} — {}", p.name, p.description);
                        }
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("{usage}");
                std::process::exit(0);
            }
            p => paths.push(p.to_string()),
        }
    }
    if !demo && paths.is_empty() {
        eprintln!("{usage}");
        std::process::exit(2);
    }

    let mut findings = 0usize;
    if demo {
        findings += lint_one("demo", &demo_certificate(), opts, quiet);
    }
    for path in &paths {
        match load_certificate(path) {
            Ok(cert) => findings += lint_one(path, &cert, opts, quiet),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    std::process::exit(if findings == 0 { 0 } else { 1 });
}
