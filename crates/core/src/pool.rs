//! A `std::thread`-based worker pool for deterministic sharded pipelines.
//!
//! No external dependencies: scoped threads pull work items from a shared
//! iterator behind a mutex, process them in parallel, and the caller gets
//! results back **in input order** regardless of which worker finished
//! when. That ordering is what lets the survey's shard-merge reproduce the
//! serial pass byte for byte (order-sensitive aggregates like validity
//! sample vectors concatenate in stream order).
//!
//! The shared-iterator design intentionally serializes *production* (e.g.
//! corpus generation, which owns a single RNG stream) while parallelizing
//! *consumption* (classification + linting, the dominant cost at corpus
//! scale).

use std::sync::Mutex;

/// Map `items` through `map` on `threads` workers, returning the results in
/// input order.
///
/// With `threads <= 1` the map runs inline on the calling thread — the
/// degenerate pool is exactly the serial loop. Worker panics propagate to
/// the caller once the scope joins.
pub fn map_ordered<I, T, R, F>(items: I, threads: usize, map: F) -> Vec<R>
where
    I: Iterator<Item = T> + Send,
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if threads <= 1 {
        return items.map(map).collect();
    }

    let source = Mutex::new(items.enumerate());
    let results = Mutex::new(Vec::new());
    let map = &map;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // Hold the source lock only while pulling the next item; a
                // poisoned lock means a sibling worker panicked, so stop
                // and let the scope propagate its panic.
                let next = match source.lock() {
                    Ok(mut it) => it.next(),
                    Err(_) => None,
                };
                let Some((index, item)) = next else { break };
                let out = map(item);
                match results.lock() {
                    Ok(mut done) => done.push((index, out)),
                    Err(_) => break,
                }
            });
        }
    });

    let mut collected = match results.into_inner() {
        Ok(v) => v,
        // Unreachable in practice: a worker panic re-raises at scope join
        // above. Recover the data rather than panic again.
        Err(poisoned) => poisoned.into_inner(),
    };
    collected.sort_by_key(|&(index, _)| index);
    collected.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_across_threads() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 4, 8] {
            let doubled = map_ordered(items.iter().copied(), threads, |x| x * 2);
            assert_eq!(doubled.len(), 1000, "threads={threads}");
            for (i, v) in doubled.iter().enumerate() {
                assert_eq!(*v, i * 2, "threads={threads}");
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = map_ordered(std::iter::empty::<u32>(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Vary per-item cost so workers finish out of order.
        let out = map_ordered(0..200u64, 4, |x| {
            let spin = if x % 7 == 0 { 20_000 } else { 10 };
            let mut acc = x;
            for i in 0..spin {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
