//! A `std::thread`-based worker pool for deterministic sharded pipelines.
//!
//! No external dependencies: scoped threads pull work items from a shared
//! iterator behind a mutex, process them in parallel, and the caller gets
//! results back **in input order** regardless of which worker finished
//! when. That ordering is what lets the survey's shard-merge reproduce the
//! serial pass byte for byte (order-sensitive aggregates like validity
//! sample vectors concatenate in stream order).
//!
//! The shared-iterator design intentionally serializes *production* (e.g.
//! corpus generation, which owns a single RNG stream) while parallelizing
//! *consumption* (classification + linting, the dominant cost at corpus
//! scale).

use std::sync::Mutex;
use std::time::Instant;

/// Pre-resolved telemetry handles for one pool worker (DESIGN.md §8):
/// task count, busy nanoseconds, and the shared source-wait histogram.
struct WorkerInstruments {
    tasks: std::sync::Arc<unicert_telemetry::Counter>,
    busy_nanos: std::sync::Arc<unicert_telemetry::Counter>,
    source_wait: std::sync::Arc<unicert_telemetry::Histogram>,
    task_exec: std::sync::Arc<unicert_telemetry::Histogram>,
}

impl WorkerInstruments {
    fn resolve(worker: usize) -> WorkerInstruments {
        let registry = unicert_telemetry::global();
        let label = worker.to_string();
        WorkerInstruments {
            tasks: registry.counter("pool.worker_tasks", &label),
            busy_nanos: registry.counter("pool.worker_busy_ns", &label),
            source_wait: registry.histogram("pool.source_wait_ns", ""),
            task_exec: registry.histogram("pool.task_exec_ns", ""),
        }
    }
}

fn nanos(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Map `items` through `map` on `threads` workers, returning the results in
/// input order.
///
/// With `threads <= 1` the map runs inline on the calling thread — the
/// degenerate pool is exactly the serial loop. Worker panics propagate to
/// the caller once the scope joins.
///
/// With metrics enabled the pool records per-worker task counts and busy
/// time, source-wait and task-execution histograms, and the overall wall
/// clock (`pool.wall_ns` / `pool.threads` gauges); with tracing at span
/// level each worker's lifetime is one span. Neither affects results or
/// ordering.
pub fn map_ordered<I, T, R, F>(items: I, threads: usize, map: F) -> Vec<R>
where
    I: Iterator<Item = T> + Send,
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if threads <= 1 {
        return items.map(map).collect();
    }

    let instrumented = unicert_telemetry::metrics_enabled();
    let wall = instrumented.then(Instant::now);
    let source = Mutex::new(items.enumerate());
    let results = Mutex::new(Vec::new());
    let map = &map;
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let source = &source;
            let results = &results;
            scope.spawn(move || {
                let instruments = instrumented.then(|| WorkerInstruments::resolve(worker));
                let _span = unicert_telemetry::span!("pool.worker", "{worker}");
                loop {
                    // Hold the source lock only while pulling the next
                    // item; a poisoned lock means a sibling worker
                    // panicked, so stop and let the scope propagate its
                    // panic. The wait histogram covers lock acquisition
                    // plus the pull itself — for a streaming survey that
                    // is exactly the serialized producer cost.
                    let wait_start = instruments.as_ref().map(|_| Instant::now());
                    let next = match source.lock() {
                        Ok(mut it) => it.next(),
                        Err(_) => None,
                    };
                    if let (Some(ins), Some(started)) = (&instruments, wait_start) {
                        ins.source_wait.record(nanos(started));
                    }
                    let Some((index, item)) = next else { break };
                    let task_span =
                        unicert_telemetry::span!(verbose: "pool.task", "{index}");
                    let exec_start = instruments.as_ref().map(|_| Instant::now());
                    let out = map(item);
                    drop(task_span);
                    if let (Some(ins), Some(started)) = (&instruments, exec_start) {
                        let elapsed = nanos(started);
                        ins.tasks.inc();
                        ins.busy_nanos.add(elapsed);
                        ins.task_exec.record(elapsed);
                    }
                    match results.lock() {
                        Ok(mut done) => done.push((index, out)),
                        Err(_) => break,
                    }
                }
            });
        }
    });
    if let Some(started) = wall {
        let registry = unicert_telemetry::global();
        registry.gauge("pool.wall_ns", "").set(nanos(started));
        registry.gauge("pool.threads", "").set(threads as u64);
    }

    let mut collected = match results.into_inner() {
        Ok(v) => v,
        // Unreachable in practice: a worker panic re-raises at scope join
        // above. Recover the data rather than panic again.
        Err(poisoned) => poisoned.into_inner(),
    };
    collected.sort_by_key(|&(index, _)| index);
    collected.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_across_threads() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 4, 8] {
            let doubled = map_ordered(items.iter().copied(), threads, |x| x * 2);
            assert_eq!(doubled.len(), 1000, "threads={threads}");
            for (i, v) in doubled.iter().enumerate() {
                assert_eq!(*v, i * 2, "threads={threads}");
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = map_ordered(std::iter::empty::<u32>(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Vary per-item cost so workers finish out of order.
        let out = map_ordered(0..200u64, 4, |x| {
            let spin = if x % 7 == 0 { 20_000 } else { 10 };
            let mut acc = x;
            for i in 0..spin {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
