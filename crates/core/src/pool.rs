//! A `std::thread`-based worker pool for deterministic sharded pipelines.
//!
//! No external dependencies: scoped threads pull work items from a shared
//! iterator behind a mutex, process them in parallel, and the caller gets
//! results back **in input order** regardless of which worker finished
//! when. That ordering is what lets the survey's shard-merge reproduce the
//! serial pass byte for byte (order-sensitive aggregates like validity
//! sample vectors concatenate in stream order).
//!
//! The shared-iterator design intentionally serializes *production* (e.g.
//! corpus generation, which owns a single RNG stream) while parallelizing
//! *consumption* (classification + linting, the dominant cost at corpus
//! scale).
//!
//! # Panic guarantee
//!
//! A panicking task can never hang, deadlock, or silently corrupt the pool:
//!
//! * every task runs under [`std::panic::catch_unwind`], so a panic is
//!   contained to the item that raised it — sibling workers keep their
//!   locks usable and drain cleanly;
//! * [`try_map_ordered`] reports the panic as a [`WorkerPanic`] value
//!   carrying the **lowest** panicking item index and its payload — the
//!   choice of survivor is deterministic even when several items panic
//!   concurrently on different workers;
//! * [`map_ordered`] keeps its historical contract (a worker panic
//!   propagates to the caller) but via the same contained path: it joins
//!   all workers first, then re-raises with the item index and payload in
//!   the message. No result is ever returned from a poisoned run, and the
//!   pool remains usable for subsequent calls.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

/// A task panic captured by the pool.
///
/// `index` is the 0-based position of the panicking item in the input
/// stream; when multiple items panic in one run, the lowest index wins so
/// the reported failure is independent of scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// 0-based input index of the item whose task panicked.
    pub index: usize,
    /// The panic payload, stringified (`&str` / `String` payloads verbatim,
    /// anything else a fixed placeholder).
    pub payload: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool task for item {} panicked: {}", self.index, self.payload)
    }
}

impl std::error::Error for WorkerPanic {}

/// Stringify a `catch_unwind` payload without re-panicking.
pub(crate) fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Record `panic` into the shared slot, keeping the lowest item index.
fn record_panic(slot: &Mutex<Option<WorkerPanic>>, panic: WorkerPanic) {
    if let Ok(mut current) = slot.lock() {
        match current.as_ref() {
            Some(existing) if existing.index <= panic.index => {}
            _ => *current = Some(panic),
        }
    }
}

/// Pre-resolved telemetry handles for one pool worker (DESIGN.md §8):
/// task count, busy nanoseconds, and the shared source-wait histogram.
struct WorkerInstruments {
    tasks: std::sync::Arc<unicert_telemetry::Counter>,
    busy_nanos: std::sync::Arc<unicert_telemetry::Counter>,
    source_wait: std::sync::Arc<unicert_telemetry::Histogram>,
    task_exec: std::sync::Arc<unicert_telemetry::Histogram>,
}

impl WorkerInstruments {
    fn resolve(worker: usize) -> WorkerInstruments {
        let registry = unicert_telemetry::global();
        let label = worker.to_string();
        WorkerInstruments {
            tasks: registry.counter("pool.worker_tasks", &label),
            busy_nanos: registry.counter("pool.worker_busy_ns", &label),
            source_wait: registry.histogram("pool.source_wait_ns", ""),
            task_exec: registry.histogram("pool.task_exec_ns", ""),
        }
    }
}

fn nanos(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Map `items` through `map` on `threads` workers, returning the results in
/// input order.
///
/// With `threads <= 1` the map runs inline on the calling thread — the
/// degenerate pool is exactly the serial loop. A panicking task makes this
/// function panic with the item's index and payload, **after** every worker
/// has drained cleanly (see the module docs); callers that need to survive
/// hostile tasks use [`try_map_ordered`].
///
/// With metrics enabled the pool records per-worker task counts and busy
/// time, source-wait and task-execution histograms, and the overall wall
/// clock (`pool.wall_ns` / `pool.threads` gauges); with tracing at span
/// level each worker's lifetime is one span. Neither affects results or
/// ordering.
pub fn map_ordered<I, T, R, F>(items: I, threads: usize, map: F) -> Vec<R>
where
    I: Iterator<Item = T> + Send,
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    match try_map_ordered(items, threads, map) {
        Ok(results) => results,
        // Re-raise the contained panic in the caller's thread. The message
        // carries the deterministic (lowest-index) failure.
        Err(worker_panic) => panic!("{worker_panic}"), // analysis:allow(panic_macro) re-raising a caught worker-task panic preserves map_ordered's propagation contract
    }
}

/// Like [`map_ordered`], but a panicking task yields `Err(WorkerPanic)`
/// instead of unwinding the caller.
///
/// Every task runs under `catch_unwind`; a panic is recorded and the pool
/// keeps draining the remaining items, joins all workers, and returns the
/// panic with the **lowest** input index — deterministic under any
/// scheduling, because every item is always attempted. The pool itself —
/// locks, telemetry, the shared source — remains fully usable afterwards;
/// no partially mapped results are returned.
pub fn try_map_ordered<I, T, R, F>(items: I, threads: usize, map: F) -> Result<Vec<R>, WorkerPanic>
where
    I: Iterator<Item = T> + Send,
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if threads <= 1 {
        let mut out = Vec::new();
        for (index, item) in items.enumerate() {
            match catch_unwind(AssertUnwindSafe(|| map(item))) {
                Ok(result) => out.push(result),
                Err(payload) => {
                    return Err(WorkerPanic { index, payload: payload_string(payload.as_ref()) })
                }
            }
        }
        return Ok(out);
    }

    let instrumented = unicert_telemetry::metrics_enabled();
    let wall = instrumented.then(Instant::now);
    let source = Mutex::new(items.enumerate());
    let results = Mutex::new(Vec::new());
    let first_panic: Mutex<Option<WorkerPanic>> = Mutex::new(None);
    let map = &map;
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let source = &source;
            let results = &results;
            let first_panic = &first_panic;
            scope.spawn(move || {
                let instruments = instrumented.then(|| WorkerInstruments::resolve(worker));
                let _span = unicert_telemetry::span!("pool.worker", "{worker}");
                loop {
                    // Hold the source lock only while pulling the next
                    // item. The wait histogram covers lock acquisition
                    // plus the pull itself — for a streaming survey that
                    // is exactly the serialized producer cost. The source
                    // lock cannot be poisoned by a task panic (tasks run
                    // outside it, under catch_unwind), so Err here only
                    // means the producer iterator itself panicked — treat
                    // it as end of input.
                    let wait_start = instruments.as_ref().map(|_| Instant::now()); // analysis:allow(clock) telemetry-gated wait timing; histogram nanos never reach report bytes
                    let next = match source.lock() {
                        Ok(mut it) => it.next(),
                        Err(_) => None,
                    };
                    if let (Some(ins), Some(started)) = (&instruments, wait_start) {
                        ins.source_wait.record(nanos(started));
                    }
                    let Some((index, item)) = next else { break };
                    let task_span =
                        unicert_telemetry::span!(verbose: "pool.task", "{index}");
                    let exec_start = instruments.as_ref().map(|_| Instant::now()); // analysis:allow(clock) telemetry-gated task timing; histogram nanos never reach report bytes
                    let out = catch_unwind(AssertUnwindSafe(|| map(item)));
                    drop(task_span);
                    if let (Some(ins), Some(started)) = (&instruments, exec_start) {
                        let elapsed = nanos(started);
                        ins.tasks.inc();
                        ins.busy_nanos.add(elapsed);
                        ins.task_exec.record(elapsed);
                    }
                    match out {
                        Ok(out) => match results.lock() {
                            Ok(mut done) => done.push((index, out)),
                            Err(_) => break,
                        },
                        // Record the panic and keep draining: running the
                        // remaining items guarantees the lowest panicking
                        // index is always the one observed, regardless of
                        // which worker pulled what first.
                        Err(payload) => record_panic(
                            first_panic,
                            WorkerPanic { index, payload: payload_string(payload.as_ref()) },
                        ),
                    }
                }
            });
        }
    });
    if let Some(started) = wall {
        let registry = unicert_telemetry::global();
        registry.gauge("pool.wall_ns", "").set(nanos(started));
        registry.gauge("pool.threads", "").set(threads as u64);
    }

    if let Ok(mut slot) = first_panic.lock() {
        if let Some(worker_panic) = slot.take() {
            return Err(worker_panic);
        }
    }
    let mut collected = match results.into_inner() {
        Ok(v) => v,
        // Unreachable in practice: tasks run under catch_unwind, so the
        // results lock is only ever held across a push. Recover the data
        // rather than panic again.
        Err(poisoned) => poisoned.into_inner(),
    };
    collected.sort_by_key(|&(index, _)| index);
    Ok(collected.into_iter().map(|(_, out)| out).collect())
}

/// Run `f` with the default panic hook silenced, restoring it after.
/// Panic-injection tests (here and in `survey`) deliberately unwind;
/// without this the test log fills with expected backtraces.
#[cfg(test)]
pub(crate) fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    // The hook is process-global: serialize the tests that touch it.
    static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = HOOK_LOCK.lock();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    let _ = std::panic::take_hook();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_across_threads() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 4, 8] {
            let doubled = map_ordered(items.iter().copied(), threads, |x| x * 2);
            assert_eq!(doubled.len(), 1000, "threads={threads}");
            for (i, v) in doubled.iter().enumerate() {
                assert_eq!(*v, i * 2, "threads={threads}");
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = map_ordered(std::iter::empty::<u32>(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn panicking_task_surfaces_as_error_not_hang() {
        quiet_panics(|| {
            for threads in [1, 2, 4, 8] {
                let err = try_map_ordered(0..100u32, threads, |x| {
                    if x % 10 == 7 {
                        panic!("injected failure on {x}");
                    }
                    x * 2
                })
                .unwrap_err();
                // Lowest panicking item wins deterministically: item 7.
                assert_eq!(err.index, 7, "threads={threads}");
                assert_eq!(err.payload, "injected failure on 7", "threads={threads}");
            }
        });
    }

    #[test]
    fn map_ordered_propagates_contained_panic_and_pool_survives() {
        quiet_panics(|| {
            let result = std::panic::catch_unwind(|| {
                map_ordered(0..50u32, 4, |x| {
                    if x == 13 {
                        panic!("boom");
                    }
                    x
                })
            });
            let payload = result.unwrap_err();
            let message = payload_string(payload.as_ref());
            assert!(message.contains("item 13"), "{message}");
            assert!(message.contains("boom"), "{message}");
            // The pool (and the process) survive: a fresh run on the same
            // thread works and is fully ordered.
            let out = map_ordered(0..100usize, 4, |x| x + 1);
            assert_eq!(out, (1..=100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn try_map_ordered_matches_map_ordered_on_clean_input() {
        for threads in [1, 3, 8] {
            let ok = try_map_ordered(0..500usize, threads, |x| x * 3).unwrap();
            assert_eq!(ok, (0..500).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn non_string_panic_payload_is_reported() {
        quiet_panics(|| {
            let err = try_map_ordered(0..4u32, 2, |x| {
                if x == 2 {
                    std::panic::panic_any(vec![1u8, 2, 3]);
                }
                x
            })
            .unwrap_err();
            assert_eq!(err.index, 2);
            assert_eq!(err.payload, "non-string panic payload");
        });
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Vary per-item cost so workers finish out of order.
        let out = map_ordered(0..200u64, 4, |x| {
            let spin = if x % 7 == 0 { 20_000 } else { 10 };
            let mut acc = x;
            for i in 0..spin {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
