//! `unicert` — umbrella crate of the Unicert reproduction workspace.
//!
//! This crate ties the substrates together and exposes the paper's
//! end-to-end pipelines:
//!
//! * [`classify`] — Unicert / IDNCert classification (§2.3);
//! * [`survey`] — the §4 issuance-compliance survey (corpus → precert
//!   filter → lint → aggregate), feeding Tables 1/2/11 and Figures 2/3/4;
//! * re-exports of every subsystem crate under one roof.
//!
//! ```
//! use unicert::corpus::{CorpusConfig, CorpusGenerator};
//! use unicert::survey::{self, SurveyOptions};
//!
//! let gen = CorpusGenerator::new(CorpusConfig { size: 200, seed: 1, ..Default::default() });
//! let report = survey::run(gen, SurveyOptions::default());
//! assert_eq!(report.total, 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod pool;
pub mod survey;

pub use unicert_asn1 as asn1;
pub use unicert_corpus as corpus;
pub use unicert_idna as idna;
pub use unicert_lint as lint;
pub use unicert_monitors as monitors;
pub use unicert_parsers as parsers;
pub use unicert_telemetry as telemetry;
pub use unicert_threats as threats;
pub use unicert_unicode as unicode;
pub use unicert_x509 as x509;

pub use classify::UnicertClass;
pub use survey::{ParseOutcome, QuarantineEntry, SurveyOptions, SurveyReport};
