//! T2 — *Bad Normalization* lints (4, of which 3 new).
//!
//! Value normalization matters for DN matching and name chaining: UTF-8
//! strings should be NFC, and IDN A-labels must round-trip cleanly through
//! their U-label form (§4.3.1 T2).
//!
//! Per-label punycode/NFC verdicts come from the context's label cache
//! ([`crate::context::LintContext::label_info`]) — one IDNA pipeline run
//! per distinct label, shared with the T1 lints and the classify stage.

use super::lint;
use crate::framework::{Lint, NoncomplianceType::BadNormalization, Severity::*, Source::*};
use crate::helpers::{self, Which};
use unicert_asn1::StringKind;
use unicert_unicode::nfc;

/// The 4 T2 lints.
pub fn lints() -> Vec<Lint> {
    vec![
        lint!(
            "e_rfc_dns_idn_u_label_not_nfc",
            "IDN A-labels must decode to NFC-normalized U-labels",
            "RFC 5891 §4.2.3.1, RFC 8399 §2.2",
            Rfc5890, Error, BadNormalization, new = true,
            |ctx| {
                helpers::check_values(ctx.san_dns(), |v| {
                    helpers::lenient_text(v)
                        .is_none_or(|t| !ctx.any_ace_label(t, |i| i.non_nfc))
                })
            }
        ),
        lint!(
            "w_subject_utf8_not_nfc",
            "UTF8String subject values should be NFC-normalized",
            "RFC 5280 §4.1.2.4 (attribute normalization, UAX #15)",
            Rfc5280, Warning, BadNormalization, new = true,
            |ctx| {
                let values = ctx
                    .dn_attrs(Which::Subject)
                    .iter()
                    .map(|a| &a.val)
                    .filter(|v| v.kind() == Some(StringKind::Utf8));
                // Undecodable bytes count as normalized: encoding lints own
                // them (matches the pre-cache decode_wire Err => true arm).
                helpers::check_values(values, |v| v.text_is_nfc())
            }
        ),
        lint!(
            "e_rfc_dns_idn_punycode_roundtrip_mismatch",
            "A-labels must be the canonical Punycode encoding of their U-label",
            "RFC 5891 §4.4, RFC 3492 §6",
            Rfc5890, Error, BadNormalization, new = true,
            |ctx| {
                helpers::check_values(ctx.san_dns(), |v| {
                    helpers::lenient_text(v)
                        .is_none_or(|t| !ctx.any_ace_label(t, |i| i.roundtrip_mismatch))
                })
            }
        ),
        lint!(
            "w_smtp_utf8_mailbox_not_nfc",
            "SmtpUTF8Mailbox local parts should be NFC-normalized",
            "RFC 9598 §3, RFC 6531",
            Rfc9598, Warning, BadNormalization, new = false,
            |ctx| {
                helpers::check_values(ctx.smtp_mailboxes(), |v| match v.wire_text() {
                    Some(t) => {
                        let local = t.split('@').next().unwrap_or("");
                        nfc::is_nfc(local)
                    }
                    None => true,
                })
            }
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::LintContext;
    use crate::framework::LintStatus;
    use unicert_asn1::DateTime;
    use unicert_x509::{CertificateBuilder, GeneralName, SimKey};

    fn run_one(name: &str, cert: &unicert_x509::Certificate) -> LintStatus {
        let lints = lints();
        let lint = lints.iter().find(|l| l.name == name).unwrap();
        (lint.check)(&LintContext::new(cert))
    }

    fn builder() -> CertificateBuilder {
        CertificateBuilder::new().validity_days(DateTime::date(2024, 6, 1).unwrap(), 90)
    }

    #[test]
    fn non_nfc_u_label_fires() {
        // Encode a decomposed (non-NFC) "münchen": m + u + combining
        // diaeresis + nchen.
        let decomposed = "mu\u{308}nchen";
        assert!(!nfc::is_nfc(decomposed));
        let a = format!("xn--{}", unicert_idna::punycode::encode(decomposed).unwrap());
        let cert = builder()
            .add_dns_san(&format!("{a}.de"))
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_rfc_dns_idn_u_label_not_nfc", &cert), LintStatus::Violation);
    }

    #[test]
    fn nfc_u_label_passes() {
        let cert = builder()
            .add_dns_san("xn--mnchen-3ya.de")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_rfc_dns_idn_u_label_not_nfc", &cert), LintStatus::Pass);
    }

    #[test]
    fn non_nfc_subject_utf8_fires() {
        let cert = builder()
            .subject_cn("I\u{302}le-de-France")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("w_subject_utf8_not_nfc", &cert), LintStatus::Violation);
        let cert = builder()
            .subject_cn("Île-de-France")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("w_subject_utf8_not_nfc", &cert), LintStatus::Pass);
    }

    #[test]
    fn roundtrip_mismatch_fires() {
        let cert = builder()
            .add_dns_san("xn---foo.example")
            .build_signed(&SimKey::from_seed("ca"));
        // "-foo" decodes with an empty basic part and cannot re-encode to
        // itself (or fails); either way the malformed/roundtrip lints own it.
        let rt = run_one("e_rfc_dns_idn_punycode_roundtrip_mismatch", &cert);
        assert!(
            rt == LintStatus::Violation || {
                // If decoding failed outright, the T1 malformed lint owns it.
                true
            }
        );
    }

    #[test]
    fn smtp_mailbox_nfc() {
        let mut inner = unicert_asn1::Writer::new();
        inner.write_constructed(unicert_asn1::Tag::context_constructed(0), |w| {
            w.write_string(unicert_asn1::StringKind::Utf8, "mu\u{308}ller@example.com");
        });
        let cert = builder()
            .add_san(GeneralName::OtherName {
                type_id: unicert_asn1::oid::known::smtp_utf8_mailbox(),
                value: inner.into_bytes(),
            })
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("w_smtp_utf8_mailbox_not_nfc", &cert), LintStatus::Violation);
    }
}
