//! T3c — *Invalid Structure* lints (2, none new).

use super::lint;
use crate::framework::{Lint, LintStatus, NoncomplianceType::InvalidStructure, Severity::*, Source::*};
use crate::helpers::{self, Which};
use unicert_asn1::oid::known;

/// The 2 T3c lints.
pub fn lints() -> Vec<Lint> {
    vec![
        // Named per Table 11. The BRs phrase this as a MUST ("if present,
        // the CN must contain a value from the SAN"), which is why Table 1
        // reports all Invalid Structure findings at Error level despite the
        // legacy `w_` prefix.
        lint!(
            "w_cab_subject_common_name_not_in_san",
            "If present, the subject CN should duplicate a SAN entry (the CN itself is NOT RECOMMENDED)",
            "CABF BR §7.1.4.2.2(a)",
            CabfBr, Warning, InvalidStructure, new = false,
            |ctx| {
                let cns: Vec<_> = ctx.attr_vals(Which::Subject, &known::common_name()).collect();
                if cns.is_empty() {
                    return LintStatus::NotApplicable;
                }
                let mut san_texts: Vec<String> = Vec::new();
                for n in ctx.san() {
                    match n {
                        unicert_x509::GeneralName::DnsName(v)
                        | unicert_x509::GeneralName::Rfc822Name(v)
                        | unicert_x509::GeneralName::Uri(v) => san_texts.push(v.display_lossy().to_lowercase()),
                        unicert_x509::GeneralName::IpAddress(b) if b.len() == 4 => {
                            san_texts.push(format!("{}.{}.{}.{}", b[0], b[1], b[2], b[3]))
                        }
                        _ => {}
                    }
                }
                let all_found = cns.iter().all(|&cn| {
                    helpers::lenient_text(cn)
                        .map(|t| san_texts.contains(&t.to_lowercase()))
                        .unwrap_or(false)
                });
                if all_found {
                    LintStatus::Pass
                } else {
                    LintStatus::Violation
                }
            }
        ),
        lint!(
            "e_subject_duplicate_attribute",
            "Subject must not repeat the same attribute type (multiple CNs are owned by the extra-CN lint)",
            "RFC 5280 §4.1.2.6 / X.501 DN uniqueness",
            Rfc5280, Error, InvalidStructure, new = false,
            |ctx| {
                if ctx.dn_is_empty(Which::Subject) {
                    return LintStatus::NotApplicable;
                }
                let mut seen = std::collections::HashSet::new();
                for attr in ctx.dn_attrs(Which::Subject) {
                    // Repeated CNs are reported by
                    // w_cab_subject_contain_extra_common_name (T3d).
                    if attr.oid == known::common_name() {
                        continue;
                    }
                    if !seen.insert(attr.oid.clone()) {
                        return LintStatus::Violation;
                    }
                }
                LintStatus::Pass
            }
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::LintContext;
    use unicert_asn1::{DateTime, StringKind};
    use unicert_x509::{CertificateBuilder, SimKey};

    fn run_one(name: &str, cert: &unicert_x509::Certificate) -> LintStatus {
        let lints = lints();
        let lint = lints.iter().find(|l| l.name == name).unwrap();
        (lint.check)(&LintContext::new(cert))
    }

    fn builder() -> CertificateBuilder {
        CertificateBuilder::new().validity_days(DateTime::date(2024, 6, 1).unwrap(), 90)
    }

    #[test]
    fn cn_not_in_san_fires() {
        let cert = builder()
            .subject_cn("mismatch.example")
            .add_dns_san("other.example")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("w_cab_subject_common_name_not_in_san", &cert), LintStatus::Violation);
        // CN absent → NA.
        let cert = builder().add_dns_san("x.example").build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("w_cab_subject_common_name_not_in_san", &cert), LintStatus::NotApplicable);
        // Case-insensitive match passes.
        let cert = builder()
            .subject_cn("OK.Example")
            .add_dns_san("ok.example")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("w_cab_subject_common_name_not_in_san", &cert), LintStatus::Pass);
        // CN present but no SAN at all.
        let cert = builder().subject_cn("nosan.example").build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("w_cab_subject_common_name_not_in_san", &cert), LintStatus::Violation);
    }

    #[test]
    fn duplicate_attributes_fire() {
        let cert = builder()
            .subject_attr(known::organizational_unit(), StringKind::Utf8, "Unit A")
            .subject_attr(known::organizational_unit(), StringKind::Utf8, "Unit B")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_subject_duplicate_attribute", &cert), LintStatus::Violation);
        let cert = builder()
            .subject_cn("a.example")
            .subject_attr(known::organization_name(), StringKind::Utf8, "One Org")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_subject_duplicate_attribute", &cert), LintStatus::Pass);
        // Multiple CNs are owned by the extra-CN (discouraged) lint.
        let cert = builder()
            .subject_cn("a.example")
            .subject_cn("b.example")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_subject_duplicate_attribute", &cert), LintStatus::Pass);
    }
}
