//! T3d — *Discouraged Field* lints (2, none new).
//!
//! Current standards do not strictly prohibit these attribute types, but
//! continued issuance complicates entity identification (§4.3.1).

use super::lint;
use crate::framework::{Lint, LintStatus, NoncomplianceType::DiscouragedField, Severity::*, Source::*};
use crate::helpers::Which;
use unicert_asn1::oid::known;

/// The 2 T3d lints.
pub fn lints() -> Vec<Lint> {
    vec![
        lint!(
            "w_cab_subject_contain_extra_common_name",
            "Subjects should not carry more than one commonName",
            "CABF BR §7.1.4.2.2(a) (CN is discouraged; multiples compound it)",
            CabfBr, Warning, DiscouragedField, new = false,
            |ctx| {
                let n = ctx.count_of(Which::Subject, &known::common_name());
                match n {
                    0 => LintStatus::NotApplicable,
                    1 => LintStatus::Pass,
                    _ => LintStatus::Violation,
                }
            }
        ),
        lint!(
            "w_ext_san_uri_discouraged",
            "URIs in SubjectAltName are discouraged for TLS server certificates",
            "CABF BR §7.1.4.2.1 (SAN limited to dNSName/iPAddress)",
            CabfBr, Warning, DiscouragedField, new = false,
            |ctx| {
                let sans = ctx.san();
                if sans.is_empty() {
                    return LintStatus::NotApplicable;
                }
                if sans.iter().any(|n| matches!(n, unicert_x509::GeneralName::Uri(_))) {
                    LintStatus::Violation
                } else {
                    LintStatus::Pass
                }
            }
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::LintContext;
    use unicert_asn1::DateTime;
    use unicert_x509::{CertificateBuilder, GeneralName, SimKey};

    fn run_one(name: &str, cert: &unicert_x509::Certificate) -> LintStatus {
        let lints = lints();
        let lint = lints.iter().find(|l| l.name == name).unwrap();
        (lint.check)(&LintContext::new(cert))
    }

    fn builder() -> CertificateBuilder {
        CertificateBuilder::new().validity_days(DateTime::date(2024, 6, 1).unwrap(), 90)
    }

    #[test]
    fn extra_cn() {
        let cert = builder()
            .subject_cn("a.example")
            .subject_cn("b.example")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("w_cab_subject_contain_extra_common_name", &cert), LintStatus::Violation);
        let cert = builder().subject_cn("a.example").build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("w_cab_subject_contain_extra_common_name", &cert), LintStatus::Pass);
    }

    #[test]
    fn san_uri_discouraged() {
        let cert = builder()
            .add_dns_san("a.example")
            .add_san(GeneralName::uri("https://a.example"))
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("w_ext_san_uri_discouraged", &cert), LintStatus::Violation);
        let cert = builder().add_dns_san("a.example").build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("w_ext_san_uri_discouraged", &cert), LintStatus::Pass);
    }
}
