//! The 95-lint catalog (§3.1.1): the paper's constraint rules, transcribed
//! into executable checks.
//!
//! Counts per taxonomy type match Table 1 exactly — `(all, new)`:
//! Invalid Character 22 (10), Bad Normalization 4 (3), Illegal Format
//! 17 (0), Invalid Encoding 48 (37), Invalid Structure 2 (0), Discouraged
//! Field 2 (0) — 95 lints, 50 new. Every lint named in Table 11 appears
//! under its paper name.

use crate::framework::{Lint, Registry};

pub mod t1_characters;
pub mod t2_normalization;
pub mod t3_discouraged;
pub mod t3_encoding;
pub mod t3_format;
pub mod t3_structure;

/// Construct a [`Lint`] with less ceremony.
macro_rules! lint {
    ($name:literal, $desc:literal, $cite:literal, $src:expr, $sev:expr, $nc:expr, new=$new:expr, $check:expr) => {
        $crate::framework::Lint {
            name: $name,
            description: $desc,
            citation: $cite,
            source: $src,
            severity: $sev,
            nc_type: $nc,
            new_lint: $new,
            check: Box::new($check),
        }
    };
}
pub(crate) use lint;

/// Build the full default registry: all 95 lints.
pub fn default_registry() -> Registry {
    let mut reg = Registry::new();
    for lint in all_lints() {
        reg.register(lint);
    }
    reg
}

/// All 95 lints as a vector (Table 1 order).
pub fn all_lints() -> Vec<Lint> {
    let mut lints = Vec::with_capacity(95);
    lints.extend(t1_characters::lints());
    lints.extend(t2_normalization::lints());
    lints.extend(t3_format::lints());
    lints.extend(t3_encoding::lints());
    lints.extend(t3_structure::lints());
    lints.extend(t3_discouraged::lints());
    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::NoncomplianceType::*;

    #[test]
    fn catalog_counts_match_table_1() {
        let reg = default_registry();
        let counts = reg.lint_counts_by_type();
        assert_eq!(counts[&InvalidCharacter], (22, 10));
        assert_eq!(counts[&BadNormalization], (4, 3));
        assert_eq!(counts[&IllegalFormat], (17, 0));
        assert_eq!(counts[&InvalidEncoding], (48, 37));
        assert_eq!(counts[&InvalidStructure], (2, 0));
        assert_eq!(counts[&DiscouragedField], (2, 0));
        assert_eq!(reg.lints().len(), 95);
        let new: usize = reg.lints().iter().filter(|l| l.new_lint).count();
        assert_eq!(new, 50);
    }

    #[test]
    fn table_11_names_are_present() {
        let reg = default_registry();
        for name in [
            "w_rfc_ext_cp_explicit_text_not_utf8",
            "w_cab_subject_common_name_not_in_san",
            "e_rfc_dns_idn_a2u_unpermitted_unichar",
            "e_subject_organization_not_printable_or_utf8",
            "e_subject_common_name_not_printable_or_utf8",
            "e_subject_locality_not_printable_or_utf8",
            "e_rfc_subject_dn_not_printable_characters",
            "e_subject_ou_not_printable_or_utf8",
            "e_subject_jurisdiction_locality_not_printable_or_utf8",
            "e_rfc_ext_cp_explicit_text_too_long",
            "e_subject_jurisdiction_state_not_printable_or_utf8",
            "e_rfc_ext_cp_explicit_text_ia5",
            "e_subject_jurisdiction_country_not_printable",
            "e_subject_state_not_printable_or_utf8",
            "e_rfc_subject_printable_string_badalpha",
            "w_community_subject_dn_trailing_whitespace",
            "e_subject_postal_code_not_printable_or_utf8",
            "e_subject_street_not_printable_or_utf8",
            "w_cab_subject_contain_extra_common_name",
            "e_subject_dn_serial_number_not_printable",
            "w_community_subject_dn_leading_whitespace",
            "e_rfc_subject_country_not_printable",
            "e_rfc_dns_idn_malformed_unicode",
            "e_cab_dns_bad_character_in_label",
            "e_ext_san_dns_contain_unpermitted_unichar",
        ] {
            assert!(reg.get(name).is_some(), "missing Table 11 lint {name}");
        }
    }

    #[test]
    fn names_are_unique() {
        let lints = all_lints();
        let mut names: Vec<_> = lints.iter().map(|l| l.name).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
