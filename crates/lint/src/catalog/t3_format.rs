//! T3a — *Illegal Format* lints (17, none new).
//!
//! Basic formatting errors: length overflows, wrong character case, empty
//! values, malformed labels, era-mismatched time encodings.

use super::lint;
use crate::context::CachedVal;
use crate::framework::{Lint, NoncomplianceType::IllegalFormat, Severity::*, Source::*};
use crate::helpers::{self, Which};
use unicert_asn1::oid::known;
use unicert_asn1::TimeKind;

/// X.520 upper bound for common attributes (ub-common-name = 64, etc.).
const UB_NAME: usize = 64;
/// X.520 ub-locality-name.
const UB_LOCALITY: usize = 128;
/// RFC 5280 §4.2.1.4: explicitText SHOULD be ≤ 200 characters.
const UB_EXPLICIT_TEXT: usize = 200;

fn char_len(v: &CachedVal) -> usize {
    helpers::lenient_text(v).map(|t| t.chars().count()).unwrap_or(v.bytes().len())
}

/// The 17 T3a lints.
pub fn lints() -> Vec<Lint> {
    vec![
        lint!(
            "e_rfc_ext_cp_explicit_text_too_long",
            "CertificatePolicies explicitText must not exceed 200 characters",
            "RFC 5280 §4.2.1.4",
            Rfc5280, Error, IllegalFormat, new = false,
            |ctx| {
                helpers::check_values(ctx.explicit_texts(), |v| char_len(v) <= UB_EXPLICIT_TEXT)
            }
        ),
        lint!(
            "e_subject_country_not_two_letters",
            "countryName must be exactly two letters",
            "CABF BR §7.1.4.2.2, ISO 3166-1",
            CabfBr, Error, IllegalFormat, new = false,
            |ctx| helpers::check_attr(ctx, Which::Subject, &known::country_name(), |v| {
                helpers::lenient_text(v)
                    .is_some_and(|t| t.len() == 2 && t.chars().all(|c| c.is_ascii_alphabetic()))
            })
        ),
        lint!(
            "e_subject_common_name_max_length",
            "commonName must not exceed 64 characters (ub-common-name)",
            "RFC 5280 App. A / X.520",
            Rfc5280, Error, IllegalFormat, new = false,
            |ctx| helpers::check_attr(ctx, Which::Subject, &known::common_name(), |v| {
                char_len(v) <= UB_NAME
            })
        ),
        lint!(
            "e_subject_organization_name_max_length",
            "organizationName must not exceed 64 characters (ub-organization-name)",
            "RFC 5280 App. A / X.520",
            Rfc5280, Error, IllegalFormat, new = false,
            |ctx| helpers::check_attr(ctx, Which::Subject, &known::organization_name(), |v| {
                char_len(v) <= UB_NAME
            })
        ),
        lint!(
            "e_subject_locality_max_length",
            "localityName must not exceed 128 characters (ub-locality-name)",
            "RFC 5280 App. A / X.520",
            Rfc5280, Error, IllegalFormat, new = false,
            |ctx| helpers::check_attr(ctx, Which::Subject, &known::locality_name(), |v| {
                char_len(v) <= UB_LOCALITY
            })
        ),
        lint!(
            "e_dns_label_too_long",
            "DNS labels must not exceed 63 octets",
            "RFC 1034 §3.1",
            Rfc1034, Error, IllegalFormat, new = false,
            |ctx| {
                helpers::check_values(ctx.san_dns(), |v| {
                    helpers::lenient_text(v)
                        .is_none_or(|t| t.split('.').all(|l| l.len() <= 63))
                })
            }
        ),
        lint!(
            "e_dns_name_too_long",
            "DNS names must not exceed 253 octets",
            "RFC 1034 §3.1",
            Rfc1034, Error, IllegalFormat, new = false,
            |ctx| {
                helpers::check_values(ctx.san_dns(), |v| v.bytes().len() <= 253)
            }
        ),
        lint!(
            "e_dns_label_bad_hyphen_placement",
            "DNS labels must not begin or end with a hyphen",
            "RFC 5890 §2.3.1",
            Rfc5890, Error, IllegalFormat, new = false,
            |ctx| {
                helpers::check_values(ctx.san_dns(), |v| {
                    helpers::lenient_text(v).is_none_or(|t| {
                        t.split('.')
                            .filter(|l| !l.is_empty() && *l != "*")
                            .all(|l| !l.starts_with('-') && !l.ends_with('-'))
                    })
                })
            }
        ),
        lint!(
            "e_serial_number_longer_than_20_octets",
            "Serial numbers must not exceed 20 octets",
            "RFC 5280 §4.1.2.2, CABF BR §7.1",
            CabfBr, Error, IllegalFormat, new = false,
            |ctx| {
                if ctx.serial().len() <= 20 {
                    crate::framework::LintStatus::Pass
                } else {
                    crate::framework::LintStatus::Violation
                }
            }
        ),
        lint!(
            "e_serial_number_zero",
            "Serial numbers must be positive",
            "RFC 5280 §4.1.2.2",
            Rfc5280, Error, IllegalFormat, new = false,
            |ctx| {
                if ctx.serial().iter().any(|&b| b != 0) {
                    crate::framework::LintStatus::Pass
                } else {
                    crate::framework::LintStatus::Violation
                }
            }
        ),
        lint!(
            "e_validity_wrong_time_encoding",
            "Dates through 2049 must use UTCTime; 2050+ must use GeneralizedTime",
            "RFC 5280 §4.1.2.5",
            Rfc5280, Error, IllegalFormat, new = false,
            |ctx| {
                let v = ctx.validity();
                let ok = |year: i32, kind: TimeKind| {
                    if (1950..=2049).contains(&year) {
                        kind == TimeKind::Utc
                    } else {
                        kind == TimeKind::Generalized
                    }
                };
                if ok(v.not_before.year, v.not_before_kind) && ok(v.not_after.year, v.not_after_kind) {
                    crate::framework::LintStatus::Pass
                } else {
                    crate::framework::LintStatus::Violation
                }
            }
        ),
        lint!(
            "e_subject_empty_attribute_value",
            "Subject attribute values must not be empty",
            "RFC 5280 §4.1.2.6 / X.520",
            Rfc5280, Error, IllegalFormat, new = false,
            |ctx| helpers::check_all_dn(ctx, Which::Subject, |v| !v.bytes().is_empty())
        ),
        lint!(
            "e_rfc_dns_empty_label",
            "DNS names must not contain empty labels",
            "RFC 1034 §3.5",
            Rfc1034, Error, IllegalFormat, new = false,
            |ctx| {
                helpers::check_values(ctx.san_dns(), |v| {
                    helpers::lenient_text(v)
                        .is_none_or(|t| !t.is_empty() && t.split('.').all(|l| !l.is_empty()))
                })
            }
        ),
        lint!(
            "e_country_code_lowercase",
            "countryName must use uppercase ISO 3166-1 alpha-2 codes",
            "CABF BR §7.1.4.2.2",
            CabfBr, Error, IllegalFormat, new = false,
            |ctx| helpers::check_attr(ctx, Which::Subject, &known::country_name(), |v| {
                helpers::lenient_text(v)
                    .is_none_or(|t| !t.chars().any(|c| c.is_ascii_lowercase()))
            })
        ),
        lint!(
            "e_san_wildcard_not_leftmost",
            "Wildcards must be the complete leftmost DNS label",
            "CABF BR §1.6.1 / RFC 6125 §6.4.3",
            CabfBr, Error, IllegalFormat, new = false,
            |ctx| {
                helpers::check_values(ctx.san_dns(), |v| {
                    helpers::lenient_text(v).is_none_or(|t| {
                        !t.contains('*')
                            || (t.starts_with("*.")
                                && !t[1..].contains('*'))
                    })
                })
            }
        ),
        lint!(
            "e_ext_san_rfc822_invalid_format",
            "RFC822Name must contain exactly one '@' with a non-empty domain",
            "RFC 5280 §4.2.1.6",
            Rfc5280, Error, IllegalFormat, new = false,
            |ctx| {
                helpers::check_values(ctx.san_rfc822(), |v| {
                    helpers::lenient_text(v).is_none_or(|t| {
                        let parts: Vec<&str> = t.split('@').collect();
                        parts.len() == 2 && !parts[0].is_empty() && !parts[1].is_empty()
                    })
                })
            }
        ),
        lint!(
            "e_ext_san_uri_missing_scheme",
            "SAN URIs must be absolute (include a scheme)",
            "RFC 5280 §4.2.1.6, RFC 3986 §3",
            Rfc5280, Error, IllegalFormat, new = false,
            |ctx| {
                helpers::check_values(ctx.san_uri(), |v| {
                    helpers::lenient_text(v).is_none_or(|t| {
                        t.split_once(':')
                            .is_some_and(|(scheme, _)| {
                                !scheme.is_empty()
                                    && scheme.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '+' | '-' | '.'))
                            })
                    })
                })
            }
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::LintContext;
    use crate::framework::LintStatus;
    use unicert_asn1::{DateTime, StringKind};
    use unicert_x509::{CertificateBuilder, GeneralName, SimKey};

    fn run_one(name: &str, cert: &unicert_x509::Certificate) -> LintStatus {
        let lints = lints();
        let lint = lints.iter().find(|l| l.name == name).unwrap();
        (lint.check)(&LintContext::new(cert))
    }

    fn builder() -> CertificateBuilder {
        CertificateBuilder::new().validity_days(DateTime::date(2024, 6, 1).unwrap(), 90)
    }

    #[test]
    fn country_code_checks() {
        for (c, expect_len, expect_case) in [
            ("DE", LintStatus::Pass, LintStatus::Pass),
            ("Germany", LintStatus::Violation, LintStatus::Violation),
            ("de", LintStatus::Pass, LintStatus::Violation),
            ("D1", LintStatus::Violation, LintStatus::Pass),
        ] {
            let cert = builder()
                .subject_attr(known::country_name(), StringKind::Printable, c)
                .build_signed(&SimKey::from_seed("ca"));
            assert_eq!(run_one("e_subject_country_not_two_letters", &cert), expect_len, "{c}");
            assert_eq!(run_one("e_country_code_lowercase", &cert), expect_case, "{c}");
        }
    }

    #[test]
    fn long_values_fire() {
        let long = "x".repeat(65);
        let cert = builder().subject_cn(&long).build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_subject_common_name_max_length", &cert), LintStatus::Violation);
        let cert = builder()
            .add_dns_san(&format!("{}.example.com", "a".repeat(64)))
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_dns_label_too_long", &cert), LintStatus::Violation);
    }

    #[test]
    fn serial_rules() {
        let cert = builder().serial(&[0x7F; 21]).build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_serial_number_longer_than_20_octets", &cert), LintStatus::Violation);
        let cert = builder().serial(&[0x00]).build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_serial_number_zero", &cert), LintStatus::Violation);
    }

    #[test]
    fn wildcard_rules() {
        let cert = builder().add_dns_san("*.example.com").build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_san_wildcard_not_leftmost", &cert), LintStatus::Pass);
        let cert = builder().add_dns_san("foo.*.example.com").build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_san_wildcard_not_leftmost", &cert), LintStatus::Violation);
    }

    #[test]
    fn email_and_uri_formats() {
        let cert = builder().add_san(GeneralName::email("nobody")).build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_ext_san_rfc822_invalid_format", &cert), LintStatus::Violation);
        let cert = builder().add_san(GeneralName::uri("//no-scheme/path")).build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_ext_san_uri_missing_scheme", &cert), LintStatus::Violation);
        let cert = builder().add_san(GeneralName::uri("https://ok.example")).build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_ext_san_uri_missing_scheme", &cert), LintStatus::Pass);
    }

    #[test]
    fn empty_values_and_labels() {
        let cert = builder()
            .subject_attr(known::organization_name(), StringKind::Utf8, "")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_subject_empty_attribute_value", &cert), LintStatus::Violation);
        let cert = builder().add_dns_san("a..example.com").build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_rfc_dns_empty_label", &cert), LintStatus::Violation);
    }

    #[test]
    fn explicit_text_length() {
        use unicert_x509::extensions::{certificate_policies, PolicyInformation, PolicyQualifier};
        use unicert_x509::RawValue;
        let long = "n".repeat(201);
        let ext = certificate_policies(&[PolicyInformation {
            policy_id: known::any_policy(),
            qualifiers: vec![PolicyQualifier::UserNotice {
                explicit_text: Some(RawValue::from_text(StringKind::Utf8, &long)),
            }],
        }]);
        let cert = builder().add_extension(ext).build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_rfc_ext_cp_explicit_text_too_long", &cert), LintStatus::Violation);
    }
}
