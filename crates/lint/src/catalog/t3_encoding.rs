//! T3b — *Invalid Encoding* lints (48, of which 37 new).
//!
//! The largest bucket (60.5% of the paper's noncompliant Unicerts): fields
//! encoded with ASN.1 string types the standards do not permit, or whose
//! bytes are not well-formed for the declared type.

use super::lint;
use crate::context::LintContext;
use crate::framework::{
    Lint, LintStatus, NoncomplianceType::InvalidEncoding, Severity, Severity::*, Source, Source::*,
};
use crate::helpers::{self, Which};
use unicert_asn1::oid::known;
use unicert_asn1::{Oid, StringKind};

/// Generate a "must be PrintableString or UTF8String" lint for one DN
/// attribute — the paper's per-attribute rule family (the `…_not_printable_or_utf8`
/// names of Table 11).
fn dir_string_lint(
    name: &'static str,
    description: &'static str,
    which: Which,
    oid: fn() -> Oid,
    new_lint: bool,
) -> Lint {
    Lint {
        name,
        description,
        citation: "RFC 5280 §4.1.2.4, CABF BR §7.1.4.2",
        source: Source::Rfc5280,
        severity: Severity::Error,
        nc_type: InvalidEncoding,
        new_lint,
        check: Box::new(move |ctx| {
            helpers::check_attr(ctx, which, &oid(), helpers::is_printable_or_utf8)
        }),
    }
}

/// Which cached GeneralName value family an IA5String rule inspects.
#[derive(Clone, Copy)]
enum GnFamily {
    SanDns,
    SanRfc822,
    SanUri,
    Ian,
    Aia,
    Sia,
    Crldp,
}

impl GnFamily {
    fn values<'a>(self, ctx: &'a LintContext<'_>) -> &'a [crate::context::CachedVal] {
        match self {
            GnFamily::SanDns => ctx.san_dns(),
            GnFamily::SanRfc822 => ctx.san_rfc822(),
            GnFamily::SanUri => ctx.san_uri(),
            GnFamily::Ian => ctx.ian_strings(),
            GnFamily::Aia => ctx.aia_uris(),
            GnFamily::Sia => ctx.sia_uris(),
            GnFamily::Crldp => ctx.crldp_uris(),
        }
    }
}

/// Generate an "IA5String only, ASCII-clean" lint for a GeneralName family.
fn gn_ia5_lint(
    name: &'static str,
    description: &'static str,
    family: GnFamily,
    new_lint: bool,
) -> Lint {
    Lint {
        name,
        description,
        citation: "RFC 5280 §4.2.1.6 (IA5String GeneralName forms)",
        source: Source::Rfc5280,
        severity: Severity::Error,
        nc_type: InvalidEncoding,
        new_lint,
        check: Box::new(move |ctx| {
            helpers::check_values(family.values(ctx), |v| v.bytes().iter().all(|&b| b < 0x80))
        }),
    }
}

/// The 48 T3b lints.
pub fn lints() -> Vec<Lint> {
    let mut lints: Vec<Lint> = Vec::with_capacity(48);

    // --- Not new (11): rules existing linters already cover. -------------
    lints.push(lint!(
        "w_rfc_ext_cp_explicit_text_not_utf8",
        "CertificatePolicies explicitText SHOULD use UTF8String",
        "RFC 5280 §4.2.1.4",
        Rfc5280, Warning, InvalidEncoding, new = false,
        |ctx| {
            helpers::check_values(ctx.explicit_texts(), |v| v.kind() == Some(StringKind::Utf8))
        }
    ));
    lints.push(lint!(
        "e_rfc_ext_cp_explicit_text_ia5",
        "CertificatePolicies explicitText MUST NOT use IA5String",
        "RFC 5280 §4.2.1.4 (DisplayText has no IA5String option in 5280)",
        Rfc5280, Error, InvalidEncoding, new = false,
        |ctx| {
            helpers::check_values(ctx.explicit_texts(), |v| v.kind() != Some(StringKind::Ia5))
        }
    ));
    lints.push(lint!(
        "e_subject_dn_serial_number_not_printable",
        "Subject serialNumber must be PrintableString",
        "RFC 5280 App. A / X.520",
        Rfc5280, Error, InvalidEncoding, new = false,
        |ctx| helpers::check_attr(ctx, Which::Subject, &known::serial_number(), helpers::is_printable)
    ));
    lints.push(lint!(
        "e_rfc_subject_country_not_printable",
        "Subject countryName must be PrintableString",
        "RFC 5280 App. A / X.520",
        Rfc5280, Error, InvalidEncoding, new = false,
        |ctx| helpers::check_attr(ctx, Which::Subject, &known::country_name(), helpers::is_printable)
    ));
    lints.push(lint!(
        "e_rfc_issuer_country_not_printable",
        "Issuer countryName must be PrintableString",
        "RFC 5280 App. A / X.520",
        Rfc5280, Error, InvalidEncoding, new = false,
        |ctx| helpers::check_attr(ctx, Which::Issuer, &known::country_name(), helpers::is_printable)
    ));
    lints.push(lint!(
        "e_subject_email_address_not_ia5",
        "Subject emailAddress (PKCS#9) must be IA5String",
        "RFC 2985 / RFC 5280 App. A",
        Rfc5280, Error, InvalidEncoding, new = false,
        |ctx| helpers::check_attr(ctx, Which::Subject, &known::email_address(), helpers::is_ia5)
    ));
    lints.push(lint!(
        "e_subject_domain_component_not_ia5",
        "domainComponent must be IA5String",
        "RFC 4519 §2.4 / RFC 5280 App. A",
        Rfc5280, Error, InvalidEncoding, new = false,
        |ctx| helpers::check_attr(ctx, Which::Subject, &known::domain_component(), helpers::is_ia5)
    ));
    lints.push(lint!(
        "w_subject_dn_uses_teletex_string",
        "TeletexString in new certificates is only allowed for legacy subjects",
        "RFC 5280 §4.1.2.4",
        Rfc5280, Warning, InvalidEncoding, new = false,
        |ctx| helpers::check_all_dn(ctx, Which::Subject, |v| v.kind() != Some(StringKind::Teletex))
    ));
    lints.push(lint!(
        "w_subject_dn_uses_universal_string",
        "UniversalString in new certificates is only allowed for legacy subjects",
        "RFC 5280 §4.1.2.4",
        Rfc5280, Warning, InvalidEncoding, new = false,
        |ctx| helpers::check_all_dn(ctx, Which::Subject, |v| v.kind() != Some(StringKind::Universal))
    ));
    lints.push(lint!(
        "w_subject_dn_uses_bmp_string",
        "BMPString in new certificates is only allowed for legacy subjects",
        "RFC 5280 §4.1.2.4",
        Rfc5280, Warning, InvalidEncoding, new = false,
        |ctx| helpers::check_all_dn(ctx, Which::Subject, |v| v.kind() != Some(StringKind::Bmp))
    ));
    lints.push(lint!(
        "e_subject_dn_qualifier_not_printable",
        "dnQualifier must be PrintableString",
        "RFC 5280 App. A / X.520",
        Rfc5280, Error, InvalidEncoding, new = false,
        |ctx| {
            helpers::check_attr(ctx, Which::Subject, &known::dn_qualifier(), helpers::is_printable)
        }
    ));

    // --- New (37): the RFCGPT-derived per-field and wire-format rules. ---
    // Subject DirectoryString attributes (14).
    lints.push(dir_string_lint(
        "e_subject_organization_not_printable_or_utf8",
        "Subject organizationName must be PrintableString or UTF8String",
        Which::Subject, known::organization_name, true,
    ));
    lints.push(dir_string_lint(
        "e_subject_common_name_not_printable_or_utf8",
        "Subject commonName must be PrintableString or UTF8String",
        Which::Subject, known::common_name, true,
    ));
    lints.push(dir_string_lint(
        "e_subject_locality_not_printable_or_utf8",
        "Subject localityName must be PrintableString or UTF8String",
        Which::Subject, known::locality_name, true,
    ));
    lints.push(dir_string_lint(
        "e_subject_ou_not_printable_or_utf8",
        "Subject organizationalUnitName must be PrintableString or UTF8String",
        Which::Subject, known::organizational_unit, true,
    ));
    lints.push(dir_string_lint(
        "e_subject_state_not_printable_or_utf8",
        "Subject stateOrProvinceName must be PrintableString or UTF8String",
        Which::Subject, known::state_or_province, true,
    ));
    lints.push(dir_string_lint(
        "e_subject_street_not_printable_or_utf8",
        "Subject streetAddress must be PrintableString or UTF8String",
        Which::Subject, known::street_address, true,
    ));
    lints.push(dir_string_lint(
        "e_subject_postal_code_not_printable_or_utf8",
        "Subject postalCode must be PrintableString or UTF8String",
        Which::Subject, known::postal_code, true,
    ));
    lints.push(dir_string_lint(
        "e_subject_jurisdiction_locality_not_printable_or_utf8",
        "EV jurisdictionLocalityName must be PrintableString or UTF8String",
        Which::Subject, known::jurisdiction_locality, true,
    ));
    lints.push(dir_string_lint(
        "e_subject_jurisdiction_state_not_printable_or_utf8",
        "EV jurisdictionStateOrProvinceName must be PrintableString or UTF8String",
        Which::Subject, known::jurisdiction_state, true,
    ));
    lints.push(dir_string_lint(
        "e_subject_given_name_not_printable_or_utf8",
        "Subject givenName must be PrintableString or UTF8String",
        Which::Subject, known::given_name, true,
    ));
    lints.push(dir_string_lint(
        "e_subject_surname_not_printable_or_utf8",
        "Subject surname must be PrintableString or UTF8String",
        Which::Subject, known::surname, true,
    ));
    lints.push(dir_string_lint(
        "e_subject_title_not_printable_or_utf8",
        "Subject title must be PrintableString or UTF8String",
        Which::Subject, known::title, true,
    ));
    lints.push(dir_string_lint(
        "e_subject_business_category_not_printable_or_utf8",
        "Subject businessCategory must be PrintableString or UTF8String",
        Which::Subject, known::business_category, true,
    ));
    lints.push(dir_string_lint(
        "e_subject_pseudonym_not_printable_or_utf8",
        "Subject pseudonym must be PrintableString or UTF8String",
        Which::Subject, known::pseudonym, true,
    ));
    // EV jurisdictionCountry is PrintableString-only (1).
    lints.push(lint!(
        "e_subject_jurisdiction_country_not_printable",
        "EV jurisdictionCountryName must be PrintableString",
        "CABF EV Guidelines §9.2.4",
        CabfBr, Error, InvalidEncoding, new = true,
        |ctx| helpers::check_attr(ctx, Which::Subject, &known::jurisdiction_country(), helpers::is_printable)
    ));
    // Issuer DirectoryString attributes (5).
    lints.push(dir_string_lint(
        "e_issuer_organization_not_printable_or_utf8",
        "Issuer organizationName must be PrintableString or UTF8String",
        Which::Issuer, known::organization_name, true,
    ));
    lints.push(dir_string_lint(
        "e_issuer_common_name_not_printable_or_utf8",
        "Issuer commonName must be PrintableString or UTF8String",
        Which::Issuer, known::common_name, true,
    ));
    lints.push(dir_string_lint(
        "e_issuer_ou_not_printable_or_utf8",
        "Issuer organizationalUnitName must be PrintableString or UTF8String",
        Which::Issuer, known::organizational_unit, true,
    ));
    lints.push(dir_string_lint(
        "e_issuer_locality_not_printable_or_utf8",
        "Issuer localityName must be PrintableString or UTF8String",
        Which::Issuer, known::locality_name, true,
    ));
    lints.push(dir_string_lint(
        "e_issuer_state_not_printable_or_utf8",
        "Issuer stateOrProvinceName must be PrintableString or UTF8String",
        Which::Issuer, known::state_or_province, true,
    ));
    // GeneralName IA5String rules (7).
    lints.push(gn_ia5_lint(
        "e_ext_san_dns_not_ia5string",
        "SAN DNSName bytes must be 7-bit (IA5String)",
        GnFamily::SanDns,
        true,
    ));
    lints.push(gn_ia5_lint(
        "e_ext_san_rfc822_not_ia5string",
        "SAN RFC822Name bytes must be 7-bit (IA5String)",
        GnFamily::SanRfc822,
        true,
    ));
    lints.push(gn_ia5_lint(
        "e_ext_san_uri_not_ia5string",
        "SAN URI bytes must be 7-bit (IA5String)",
        GnFamily::SanUri,
        true,
    ));
    lints.push(gn_ia5_lint(
        "e_ext_ian_name_not_ia5string",
        "IssuerAltName string forms must be 7-bit (IA5String)",
        GnFamily::Ian,
        true,
    ));
    lints.push(gn_ia5_lint(
        "e_ext_aia_uri_not_ia5string",
        "AuthorityInfoAccess URIs must be 7-bit (IA5String)",
        GnFamily::Aia,
        true,
    ));
    lints.push(gn_ia5_lint(
        "e_ext_sia_uri_not_ia5string",
        "SubjectInfoAccess URIs must be 7-bit (IA5String)",
        GnFamily::Sia,
        true,
    ));
    lints.push(gn_ia5_lint(
        "e_ext_crldp_uri_not_ia5string",
        "CRLDistributionPoints URIs must be 7-bit (IA5String)",
        GnFamily::Crldp,
        true,
    ));
    // Wire-format well-formedness (4).
    lints.push(lint!(
        "e_utf8string_invalid_bytes",
        "UTF8String values must be well-formed UTF-8",
        "RFC 5280 §4.1.2.4, RFC 3629",
        Rfc5280, Error, InvalidEncoding, new = true,
        |ctx| {
            let values = ctx
                .dn_attrs(Which::Subject)
                .iter()
                .chain(ctx.dn_attrs(Which::Issuer))
                .map(|a| &a.val)
                .chain(ctx.explicit_texts().iter())
                .filter(|v| v.kind() == Some(StringKind::Utf8));
            helpers::check_values(values, |v| std::str::from_utf8(v.bytes()).is_ok())
        }
    ));
    lints.push(lint!(
        "e_bmpstring_odd_length",
        "BMPString values must have an even byte length",
        "RFC 5280 §4.1.2.4 profile; X.690 §8.23 (UCS-2 code units)",
        Rfc5280, Error, InvalidEncoding, new = true,
        |ctx| {
            let values = ctx
                .dn_attrs(Which::Subject)
                .iter()
                .chain(ctx.dn_attrs(Which::Issuer))
                .map(|a| &a.val)
                .filter(|v| v.kind() == Some(StringKind::Bmp));
            helpers::check_values(values, |v| v.bytes().len() % 2 == 0)
        }
    ));
    lints.push(lint!(
        "e_universalstring_invalid_length",
        "UniversalString values must be a multiple of four bytes",
        "RFC 5280 §4.1.2.4 profile; X.690 §8.23 (UCS-4 code units)",
        Rfc5280, Error, InvalidEncoding, new = true,
        |ctx| {
            let values = ctx
                .dn_attrs(Which::Subject)
                .iter()
                .chain(ctx.dn_attrs(Which::Issuer))
                .map(|a| &a.val)
                .filter(|v| v.kind() == Some(StringKind::Universal));
            helpers::check_values(values, |v| v.bytes().len() % 4 == 0)
        }
    ));
    lints.push(lint!(
        "e_bmpstring_surrogate_code_unit",
        "BMPString values must not contain surrogate code units",
        "RFC 5280 §4.1.2.4 profile; X.690 §8.23, ISO/IEC 10646",
        Rfc5280, Error, InvalidEncoding, new = true,
        |ctx| {
            let values = ctx
                .dn_attrs(Which::Subject)
                .iter()
                .map(|a| &a.val)
                .filter(|v| v.kind() == Some(StringKind::Bmp));
            helpers::check_values(values, |v| {
                !v.bytes().chunks_exact(2).any(|c| {
                    let u = u16::from_be_bytes([c[0], c[1]]);
                    (0xD800..0xE000).contains(&u)
                })
            })
        }
    ));
    // Remaining specific rules (5).
    lints.push(lint!(
        "e_subject_cn_not_directory_string_type",
        "Subject commonName must use a DirectoryString type",
        "RFC 5280 §4.1.2.4",
        Rfc5280, Error, InvalidEncoding, new = true,
        |ctx| helpers::check_attr(ctx, Which::Subject, &known::common_name(), |v| {
            matches!(
                v.kind(),
                Some(StringKind::Printable | StringKind::Utf8 | StringKind::Teletex
                    | StringKind::Universal | StringKind::Bmp)
            )
        })
    ));
    lints.push(lint!(
        "e_smtp_utf8_mailbox_not_utf8string",
        "SmtpUTF8Mailbox must be encoded as UTF8String",
        "RFC 9598 §3",
        Rfc9598, Error, InvalidEncoding, new = true,
        |ctx| {
            helpers::check_values(ctx.smtp_mailboxes(), |v| v.kind() == Some(StringKind::Utf8))
        }
    ));
    lints.push(lint!(
        "w_ext_cp_explicit_text_bmpstring",
        "CertificatePolicies explicitText SHOULD NOT use BMPString",
        "RFC 5280 §4.2.1.4",
        Rfc5280, Warning, InvalidEncoding, new = true,
        |ctx| {
            helpers::check_values(ctx.explicit_texts(), |v| v.kind() != Some(StringKind::Bmp))
        }
    ));
    lints.push(lint!(
        "e_dn_attribute_unknown_string_tag",
        "DN attribute values must use an ASN.1 character string type",
        "RFC 5280 §4.1.2.4, X.680",
        Rfc5280, Error, InvalidEncoding, new = true,
        |ctx| {
            let values = ctx
                .dn_attrs(Which::Subject)
                .iter()
                .chain(ctx.dn_attrs(Which::Issuer))
                .map(|a| &a.val);
            helpers::check_values(values, |v| v.kind().is_some())
        }
    ));
    lints.push(lint!(
        "e_ext_cp_cps_uri_not_ia5string",
        "CertificatePolicies CPS qualifier must be IA5String",
        "RFC 5280 §4.2.1.4",
        Rfc5280, Error, InvalidEncoding, new = true,
        |ctx| {
            helpers::check_values(ctx.cps_values(), |v| {
                v.kind() == Some(StringKind::Ia5) && v.bytes().iter().all(|&b| b < 0x80)
            })
        }
    ));
    lints.push(lint!(
        "e_ext_san_rfc822_contains_non_ascii",
        "RFC822Name is restricted to US-ASCII; internationalized addresses require SmtpUTF8Mailbox",
        "RFC 9598 §1, RFC 8399 §2.3",
        Rfc9598, Error, InvalidEncoding, new = true,
        |ctx| {
            helpers::check_values(ctx.san_rfc822(), |v| v.bytes().iter().all(|&b| b < 0x80))
        }
    ));

    debug_assert_eq!(lints.len(), 48);
    lints
}

// Silence the unused import warning when debug assertions are off.
const _: fn(&LintContext<'_>) -> LintStatus = |_| LintStatus::Pass;

#[cfg(test)]
mod tests {
    use super::*;
    use unicert_asn1::DateTime;
    use unicert_x509::{CertificateBuilder, GeneralName, SimKey};

    fn run_one(name: &str, cert: &unicert_x509::Certificate) -> LintStatus {
        let lints = lints();
        let lint = lints.iter().find(|l| l.name == name).unwrap();
        (lint.check)(&LintContext::new(cert))
    }

    fn builder() -> CertificateBuilder {
        CertificateBuilder::new().validity_days(DateTime::date(2024, 6, 1).unwrap(), 90)
    }

    #[test]
    fn count_and_new_flags() {
        let all = lints();
        assert_eq!(all.len(), 48);
        assert_eq!(all.iter().filter(|l| l.new_lint).count(), 37);
    }

    #[test]
    fn bmpstring_cn_fires_family() {
        let cert = builder()
            .subject_attr(known::common_name(), StringKind::Bmp, "bmp.example")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_subject_common_name_not_printable_or_utf8", &cert), LintStatus::Violation);
        assert_eq!(run_one("w_subject_dn_uses_bmp_string", &cert), LintStatus::Violation);
        // Still a DirectoryString type, so the CN-type lint passes.
        assert_eq!(run_one("e_subject_cn_not_directory_string_type", &cert), LintStatus::Pass);
    }

    #[test]
    fn teletex_org_fires() {
        let cert = builder()
            .subject_attr(known::organization_name(), StringKind::Teletex, "Störi AG")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_subject_organization_not_printable_or_utf8", &cert), LintStatus::Violation);
        assert_eq!(run_one("w_subject_dn_uses_teletex_string", &cert), LintStatus::Violation);
    }

    #[test]
    fn invalid_utf8_bytes_fire() {
        let cert = builder()
            .subject_attr_raw(known::organization_name(), StringKind::Utf8, &[0xC3, 0x28])
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_utf8string_invalid_bytes", &cert), LintStatus::Violation);
        // Not printable-or-utf8 either (strict decode fails).
        assert_eq!(run_one("e_subject_organization_not_printable_or_utf8", &cert), LintStatus::Violation);
    }

    #[test]
    fn odd_bmp_and_surrogates() {
        let cert = builder()
            .subject_attr_raw(known::common_name(), StringKind::Bmp, &[0x00, 0x41, 0x42])
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_bmpstring_odd_length", &cert), LintStatus::Violation);
        let cert = builder()
            .subject_attr_raw(known::common_name(), StringKind::Bmp, &[0xD8, 0x00])
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_bmpstring_surrogate_code_unit", &cert), LintStatus::Violation);
    }

    #[test]
    fn explicit_text_encoding_rules() {
        use unicert_x509::extensions::{certificate_policies, PolicyInformation, PolicyQualifier};
        use unicert_x509::RawValue;
        for (kind, utf8_lint, ia5_lint) in [
            (StringKind::Utf8, LintStatus::Pass, LintStatus::Pass),
            (StringKind::Visible, LintStatus::Violation, LintStatus::Pass),
            (StringKind::Ia5, LintStatus::Violation, LintStatus::Violation),
        ] {
            let ext = certificate_policies(&[PolicyInformation {
                policy_id: known::any_policy(),
                qualifiers: vec![PolicyQualifier::UserNotice {
                    explicit_text: Some(RawValue::from_text(kind, "Notice")),
                }],
            }]);
            let cert = builder().add_extension(ext).build_signed(&SimKey::from_seed("ca"));
            assert_eq!(run_one("w_rfc_ext_cp_explicit_text_not_utf8", &cert), utf8_lint, "{kind:?}");
            assert_eq!(run_one("e_rfc_ext_cp_explicit_text_ia5", &cert), ia5_lint, "{kind:?}");
        }
    }

    #[test]
    fn rfc822_non_ascii_fires_9598_rule() {
        // Raw UTF-8 bytes under the IA5String-tagged RFC822Name.
        let cert = builder()
            .add_san(GeneralName::Rfc822Name(unicert_x509::RawValue::from_raw(
                StringKind::Ia5,
                "пример@example.com".as_bytes(),
            )))
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_ext_san_rfc822_contains_non_ascii", &cert), LintStatus::Violation);
        assert_eq!(run_one("e_ext_san_rfc822_not_ia5string", &cert), LintStatus::Violation);
    }

    #[test]
    fn unknown_string_tag_fires() {
        use unicert_x509::{AttributeTypeAndValue, DistinguishedName, RawValue, Rdn};
        let dn = DistinguishedName {
            rdns: vec![Rdn {
                attributes: vec![AttributeTypeAndValue {
                    oid: known::common_name(),
                    value: RawValue { tag_number: 4, bytes: vec![1, 2] }, // OCTET STRING
                }],
            }],
        };
        let cert = builder().subject(dn).build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_dn_attribute_unknown_string_tag", &cert), LintStatus::Violation);
        assert_eq!(run_one("e_subject_cn_not_directory_string_type", &cert), LintStatus::Violation);
    }
}
