//! T1 — *Invalid Character* lints (22, of which 10 new).
//!
//! Character-range inspection: malformed strings (non-printable characters
//! in PrintableString) and disallowed characters (controls in UTF8String,
//! IDNA-disallowed code points after Punycode decoding).

use super::lint;
use crate::framework::{Lint, NoncomplianceType::InvalidCharacter, Severity::*, Source::*};
use crate::helpers::{self, Which};
use unicert_asn1::StringKind;
use unicert_idna::label::ALabelStatus;
use unicert_unicode::classify;

/// The 22 T1 lints.
pub fn lints() -> Vec<Lint> {
    vec![
        lint!(
            "e_rfc_dns_idn_a2u_unpermitted_unichar",
            "SAN DNSName A-labels must not decode to IDNA2008-disallowed characters",
            "RFC 5890 §2.3.2.1, RFC 5892",
            Idna2008, Error, InvalidCharacter, new = true,
            |ctx| {
                helpers::check_values(ctx.san_dns(), |v| {
                    match helpers::lenient_text(v) {
                        Some(t) => !ctx.any_ace_label(t, |i| i.status == ALabelStatus::DisallowedContent),
                        None => true,
                    }
                })
            }
        ),
        lint!(
            "e_rfc_subject_dn_not_printable_characters",
            "Subject DN values must not contain control characters (NUL, ESC, DEL, ...)",
            "RFC 5280 §4.1.2.6 / X.520",
            Rfc5280, Error, InvalidCharacter, new = false,
            |ctx| helpers::check_all_dn(ctx, Which::Subject, helpers::has_no_control_chars)
        ),
        lint!(
            "e_rfc_subject_printable_string_badalpha",
            "PrintableString values must only use the PrintableString repertoire",
            "RFC 5280 §4.1.2.4, X.680",
            Rfc5280, Error, InvalidCharacter, new = false,
            |ctx| {
                let values = ctx
                    .dn_attrs(Which::Subject)
                    .iter()
                    .map(|a| &a.val)
                    .filter(|v| v.kind() == Some(StringKind::Printable));
                helpers::check_values(values, |v| v.strict_ok())
            }
        ),
        lint!(
            "w_community_subject_dn_trailing_whitespace",
            "Subject DN values should not carry trailing whitespace",
            "community practice (Zlint heritage)",
            Community, Warning, InvalidCharacter, new = false,
            |ctx| helpers::check_all_dn(ctx, Which::Subject, |v| {
                helpers::lenient_text(v).is_none_or(|t| !t.ends_with(' '))
            })
        ),
        lint!(
            "w_community_subject_dn_leading_whitespace",
            "Subject DN values should not carry leading whitespace",
            "community practice (Zlint heritage)",
            Community, Warning, InvalidCharacter, new = false,
            |ctx| helpers::check_all_dn(ctx, Which::Subject, |v| {
                helpers::lenient_text(v).is_none_or(|t| !t.starts_with(' '))
            })
        ),
        lint!(
            "e_rfc_dns_idn_malformed_unicode",
            "SAN DNSName A-labels must be convertible to Unicode",
            "RFC 5890 §2.3.2.1, RFC 3492",
            Rfc5890, Error, InvalidCharacter, new = false,
            |ctx| {
                helpers::check_values(ctx.san_dns(), |v| match helpers::lenient_text(v) {
                    Some(t) => !ctx.any_ace_label(t, |i| {
                        matches!(i.status, ALabelStatus::Unconvertible | ALabelStatus::NonCanonical)
                    }),
                    None => true,
                })
            }
        ),
        lint!(
            "e_cab_dns_bad_character_in_label",
            "DNSName labels must use only letters, digits, and hyphens",
            "CABF BR §7.1.4.2.1, RFC 1034 §3.5",
            CabfBr, Error, InvalidCharacter, new = false,
            |ctx| {
                helpers::check_values(ctx.san_dns(), |v| {
                    helpers::lenient_text(v)
                        .is_none_or(|t| t.is_ascii() && helpers::is_dns_repertoire(t))
                })
            }
        ),
        lint!(
            "e_ext_san_dns_contain_unpermitted_unichar",
            "SAN DNSName must not contain raw non-ASCII Unicode (IDNs must be A-labels)",
            "RFC 5280 §4.2.1.6, RFC 8399 §2.2",
            Rfc8399, Error, InvalidCharacter, new = true,
            |ctx| {
                helpers::check_values(ctx.san_dns(), |v| {
                    helpers::lenient_text(v).is_none_or(|t| t.is_ascii())
                })
            }
        ),
        lint!(
            "e_subject_dn_nul_byte",
            "Subject DN values must not embed NUL bytes",
            "RFC 5280 §4.1.2.6; CVE-2009-2408 heritage",
            Community, Error, InvalidCharacter, new = false,
            |ctx| helpers::check_all_dn(ctx, Which::Subject, |v| {
                helpers::free_of(v, |c| c == '\u{0}')
            })
        ),
        lint!(
            "e_issuer_dn_not_printable_characters",
            "Issuer DN values must not contain control characters",
            "RFC 5280 §4.1.2.4 / X.520",
            Rfc5280, Error, InvalidCharacter, new = false,
            |ctx| helpers::check_all_dn(ctx, Which::Issuer, helpers::has_no_control_chars)
        ),
        lint!(
            "e_ext_san_rfc822_invalid_characters",
            "SAN RFC822Name must not contain control characters or spaces",
            "RFC 5280 §4.2.1.6, RFC 5321",
            Rfc5280, Error, InvalidCharacter, new = true,
            |ctx| {
                helpers::check_values(ctx.san_rfc822(), |v| {
                    helpers::free_of(v, |c| classify::is_control(c) || c == ' ')
                })
            }
        ),
        lint!(
            "e_ext_san_uri_invalid_characters",
            "SAN URI must not contain control characters or spaces",
            "RFC 5280 §4.2.1.6, RFC 3986 §2",
            Rfc5280, Error, InvalidCharacter, new = true,
            |ctx| {
                helpers::check_values(ctx.san_uri(), |v| {
                    helpers::free_of(v, |c| classify::is_control(c) || c == ' ')
                })
            }
        ),
        lint!(
            "e_subject_dn_bidi_controls",
            "Subject DN values must not contain bidirectional control characters",
            "RFC 9549 §3, Unicode UAX #9",
            Rfc9549, Error, InvalidCharacter, new = true,
            |ctx| helpers::check_all_dn(ctx, Which::Subject, |v| {
                helpers::free_of(v, classify::is_bidi_control)
            })
        ),
        lint!(
            "e_subject_dn_zero_width_characters",
            "Subject DN values must not contain zero-width/invisible characters",
            "RFC 8399 §2, Unicode TR #36",
            Rfc8399, Error, InvalidCharacter, new = true,
            |ctx| helpers::check_all_dn(ctx, Which::Subject, |v| {
                helpers::free_of(v, classify::is_zero_width)
            })
        ),
        lint!(
            "e_ext_ian_dns_invalid_characters",
            "IssuerAltName DNSName must use only the DNS repertoire",
            "RFC 5280 §4.2.1.7",
            Rfc5280, Error, InvalidCharacter, new = true,
            |ctx| {
                helpers::check_values(ctx.ian_dns(), |v| {
                    helpers::lenient_text(v)
                        .is_none_or(|t| t.is_ascii() && helpers::is_dns_repertoire(t))
                })
            }
        ),
        lint!(
            "e_utf8string_disallowed_control_codes",
            "UTF8String DN values must not contain C0/C1 control codes",
            "RFC 5280 §4.1.2.4 (via RFC 2279 profile)",
            Rfc5280, Error, InvalidCharacter, new = true,
            |ctx| {
                let values = ctx
                    .dn_attrs(Which::Subject)
                    .iter()
                    .chain(ctx.dn_attrs(Which::Issuer))
                    .map(|a| &a.val)
                    .filter(|v| v.kind() == Some(StringKind::Utf8));
                helpers::check_values(values, |v| helpers::free_of(v, classify::is_control))
            }
        ),
        lint!(
            "w_subject_dn_nonstandard_whitespace",
            "Subject DN values should use U+0020 rather than exotic whitespace (NBSP, ideographic space)",
            "community practice; Table 3 variant analysis",
            Community, Warning, InvalidCharacter, new = false,
            |ctx| helpers::check_all_dn(ctx, Which::Subject, |v| {
                helpers::free_of(v, classify::is_nonstandard_whitespace)
            })
        ),
        lint!(
            "e_ext_crldp_uri_control_characters",
            "CRLDistributionPoints URIs must not contain control characters",
            "RFC 5280 §4.2.1.13, RFC 3986",
            Rfc5280, Error, InvalidCharacter, new = true,
            |ctx| {
                helpers::check_values(ctx.crldp_uris(), |v| {
                    helpers::free_of(v, classify::is_control)
                })
            }
        ),
        lint!(
            "e_numeric_string_invalid_character",
            "NumericString values must contain only digits and space",
            "X.680 §41, RFC 5280 §4.1.2.4",
            Rfc5280, Error, InvalidCharacter, new = false,
            |ctx| {
                let values = ctx
                    .dn_attrs(Which::Subject)
                    .iter()
                    .map(|a| &a.val)
                    .filter(|v| v.kind() == Some(StringKind::Numeric));
                helpers::check_values(values, |v| v.strict_ok())
            }
        ),
        lint!(
            "e_ia5string_out_of_range",
            "IA5String values must stay within 7-bit ASCII",
            "X.680 §41, RFC 5280 §4.2.1.6",
            Rfc5280, Error, InvalidCharacter, new = false,
            |ctx| {
                let values = ctx
                    .dn_attrs(Which::Subject)
                    .iter()
                    .map(|a| &a.val)
                    .filter(|v| v.kind() == Some(StringKind::Ia5))
                    .chain(ctx.san_dns().iter());
                helpers::check_values(values, |v| v.bytes().iter().all(|&b| b < 0x80))
            }
        ),
        lint!(
            "w_teletex_replacement_character",
            "TeletexString values should not contain U+FFFD (evidence of earlier mis-transcoding)",
            "Table 3 'replacement of illegal characters' variant",
            Community, Warning, InvalidCharacter, new = true,
            |ctx| {
                let values = ctx
                    .dn_attrs(Which::Subject)
                    .iter()
                    .map(|a| &a.val)
                    .filter(|v| v.kind() == Some(StringKind::Teletex));
                // Teletex is decoded as Latin-1; a U+FFFD can only appear if
                // the *bytes* spell the UTF-8 encoding of U+FFFD (EF BF BD).
                helpers::check_values(values, |v| {
                    !v.bytes().windows(3).any(|w| w == [0xEF, 0xBF, 0xBD])
                })
            }
        ),
        lint!(
            "e_visible_string_control_characters",
            "VisibleString values must not contain control characters",
            "RFC 5280 §4.1.2.4 profile; X.680 §41",
            Rfc5280, Error, InvalidCharacter, new = false,
            |ctx| {
                let values = ctx
                    .dn_attrs(Which::Subject)
                    .iter()
                    .map(|a| &a.val)
                    .filter(|v| v.kind() == Some(StringKind::Visible));
                helpers::check_values(values, |v| v.strict_ok())
            }
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::LintContext;
    use crate::framework::{LintStatus, RunOptions};
    use unicert_asn1::oid::known;
    use unicert_asn1::{DateTime, StringKind};
    use unicert_x509::{CertificateBuilder, SimKey};

    fn run_one(name: &str, cert: &unicert_x509::Certificate) -> LintStatus {
        let lints = lints();
        let lint = lints.iter().find(|l| l.name == name).unwrap();
        (lint.check)(&LintContext::new(cert))
    }

    fn builder() -> CertificateBuilder {
        CertificateBuilder::new().validity_days(DateTime::date(2024, 6, 1).unwrap(), 90)
    }

    #[test]
    fn nul_in_subject_fires() {
        let cert = builder()
            .subject_attr_raw(known::organization_name(), StringKind::Utf8, b"Evil\x00Org")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_subject_dn_nul_byte", &cert), LintStatus::Violation);
        assert_eq!(
            run_one("e_rfc_subject_dn_not_printable_characters", &cert),
            LintStatus::Violation
        );
        assert_eq!(
            run_one("e_utf8string_disallowed_control_codes", &cert),
            LintStatus::Violation
        );
    }

    #[test]
    fn clean_cert_passes_everything() {
        let cert = builder()
            .subject_cn("clean.example.com")
            .add_dns_san("clean.example.com")
            .build_signed(&SimKey::from_seed("ca"));
        let reg = crate::catalog::default_registry();
        let report = reg.run(&cert, RunOptions::default());
        assert!(
            report.findings.is_empty(),
            "unexpected findings: {:?}",
            report.findings
        );
    }

    #[test]
    fn deceptive_idn_label_fires_a2u() {
        let cert = builder()
            .add_dns_san("xn--www-hn0a.example.com")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(
            run_one("e_rfc_dns_idn_a2u_unpermitted_unichar", &cert),
            LintStatus::Violation
        );
        assert_eq!(run_one("e_rfc_dns_idn_malformed_unicode", &cert), LintStatus::Pass);
    }

    #[test]
    fn unconvertible_idn_fires_malformed_unicode() {
        let cert = builder()
            .add_dns_san("xn--99999999999.example.com")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_rfc_dns_idn_malformed_unicode", &cert), LintStatus::Violation);
    }

    #[test]
    fn raw_unicode_in_dns_fires() {
        let cert = builder()
            .add_san(unicert_x509::GeneralName::dns("münchen.de"))
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(
            run_one("e_ext_san_dns_contain_unpermitted_unichar", &cert),
            LintStatus::Violation
        );
        assert_eq!(run_one("e_cab_dns_bad_character_in_label", &cert), LintStatus::Violation);
    }

    #[test]
    fn whitespace_lints() {
        let cert = builder()
            .subject_attr(known::organization_name(), StringKind::Utf8, "Acme ")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(
            run_one("w_community_subject_dn_trailing_whitespace", &cert),
            LintStatus::Violation
        );
        assert_eq!(
            run_one("w_community_subject_dn_leading_whitespace", &cert),
            LintStatus::Pass
        );
        let cert = builder()
            .subject_attr(known::organization_name(), StringKind::Utf8, "Peddy\u{A0}Shield")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(
            run_one("w_subject_dn_nonstandard_whitespace", &cert),
            LintStatus::Violation
        );
    }

    #[test]
    fn bidi_and_zero_width() {
        let cert = builder()
            .subject_cn("www.\u{202E}lapyap\u{202C}.com")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_subject_dn_bidi_controls", &cert), LintStatus::Violation);
        let cert = builder()
            .subject_cn("zero\u{200B}width.example")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_subject_dn_zero_width_characters", &cert), LintStatus::Violation);
    }

    #[test]
    fn printable_string_badalpha() {
        let cert = builder()
            .subject_attr_raw(known::common_name(), StringKind::Printable, b"bad@char.example")
            .build_signed(&SimKey::from_seed("ca"));
        assert_eq!(run_one("e_rfc_subject_printable_string_badalpha", &cert), LintStatus::Violation);
    }

    #[test]
    fn not_applicable_when_field_absent() {
        let cert = builder().build_signed(&SimKey::from_seed("ca"));
        assert_eq!(
            run_one("e_rfc_dns_idn_a2u_unpermitted_unichar", &cert),
            LintStatus::NotApplicable
        );
        assert_eq!(
            run_one("e_rfc_subject_dn_not_printable_characters", &cert),
            LintStatus::NotApplicable
        );
    }
}
