//! The BIMI/VMC compliance catalog (SNIPPETS.md Snippet 1).
//!
//! Verified Mark Certificates carry the brand logo shown next to
//! authenticated mail. The BIMI Group's certificate guidelines profile
//! RFC 5280 with mark-specific requirements: the mark-certificate policy
//! OID, the BIMI extended key usage, the RFC 9399 logotype extension, and
//! a family of subject-DN attributes documenting the legal basis of the
//! mark (trademark registration, statute, or prior use). The catalog
//! below transcribes the checks the Snippet 1 CT-log analyzer applies,
//! under this crate's lint framework.
//!
//! Two lints are *shared* with the `webpki` profile by name
//! (`w_cab_subject_common_name_not_in_san`,
//! `e_subject_organization_not_printable_or_utf8`): VMCs are still WebPKI
//! subscriber certificates, so those rules apply unchanged — they are
//! pulled from the default catalog rather than re-implemented, which is
//! what makes the profile-equivalence property ("shared lints yield
//! identical findings") hold by construction.

use crate::catalog::lint;
use crate::context::LintContext;
use crate::framework::{Lint, LintStatus, NoncomplianceType, Severity, Source};
use crate::helpers::{check_attr, is_printable, is_printable_or_utf8, Which};
use unicert_asn1::oid::known;
use unicert_asn1::Oid;
use unicert_x509::extensions::ParsedExtension;

/// Lint names the BIMI profile imports verbatim from the `webpki` catalog.
const SHARED_WEBPKI_LINTS: [&str; 2] =
    ["w_cab_subject_common_name_not_in_san", "e_subject_organization_not_printable_or_utf8"];

/// The parse result of the first extension carrying `oid` — same selection
/// rule as `TbsCertificate::extension`, but through the context's memoized
/// parse table.
fn first_parsed<'a>(ctx: &'a LintContext<'_>, oid: &Oid) -> Option<&'a ParsedExtension> {
    let index = ctx.extension_position(oid)?;
    ctx.parsed_extensions().get(index)?.as_ref()
}

/// The EKU purpose list, if the certificate has a well-formed EKU.
fn eku_purposes<'a>(ctx: &'a LintContext<'_>) -> Option<&'a [Oid]> {
    match first_parsed(ctx, &known::ext_key_usage()) {
        Some(ParsedExtension::ExtKeyUsage(purposes)) => Some(purposes),
        _ => None,
    }
}

/// Does the subject DN carry at least one value of `oid`?
fn has_subject_attr(ctx: &LintContext<'_>, oid: &Oid) -> bool {
    ctx.attr_vals(Which::Subject, oid).next().is_some()
}

/// The 15-lint BIMI/VMC catalog (13 mark-specific + 2 shared WebPKI).
pub fn all_lints() -> Vec<Lint> {
    let mut lints = vec![
        lint!(
            "e_bimi_mark_certificate_policy_missing",
            "VMC certificatePolicies must assert the mark-certificate policy 1.3.6.1.4.1.53087.1.1",
            "BIMI VMC Guidelines §2.2",
            Source::Community,
            Severity::Error,
            NoncomplianceType::InvalidStructure,
            new = false,
            |ctx: &LintContext<'_>| match first_parsed(ctx, &known::certificate_policies()) {
                Some(ParsedExtension::CertificatePolicies(policies)) => {
                    if policies.iter().any(|p| p.policy_id == known::bimi_mark_cert_policy()) {
                        LintStatus::Pass
                    } else {
                        LintStatus::Violation
                    }
                }
                _ => LintStatus::Violation,
            }
        ),
        lint!(
            "e_bimi_eku_missing",
            "VMC extendedKeyUsage must include id-kp-BrandIndicatorforMessageIdentification (1.3.6.1.5.5.7.3.31)",
            "BIMI VMC Guidelines §2.3",
            Source::Community,
            Severity::Error,
            NoncomplianceType::InvalidStructure,
            new = false,
            |ctx: &LintContext<'_>| match eku_purposes(ctx) {
                Some(purposes) if purposes.contains(&known::eku_bimi()) => LintStatus::Pass,
                _ => LintStatus::Violation,
            }
        ),
        lint!(
            "w_bimi_eku_extraneous_purpose",
            "VMC extendedKeyUsage should carry only the BIMI purpose",
            "BIMI VMC Guidelines §2.3",
            Source::Community,
            Severity::Warning,
            NoncomplianceType::DiscouragedField,
            new = false,
            |ctx: &LintContext<'_>| match eku_purposes(ctx) {
                None => LintStatus::NotApplicable,
                Some(purposes) => {
                    if purposes.iter().any(|p| *p != known::eku_bimi()) {
                        LintStatus::Violation
                    } else {
                        LintStatus::Pass
                    }
                }
            }
        ),
        lint!(
            "e_bimi_logotype_missing",
            "VMC must carry the RFC 9399 logotype extension (1.3.6.1.5.5.7.1.12) with the mark image",
            "BIMI VMC Guidelines §2.4 / RFC 9399 §4",
            Source::Community,
            Severity::Error,
            NoncomplianceType::InvalidStructure,
            new = false,
            |ctx: &LintContext<'_>| match ctx.has_extension(&known::logotype()) {
                true => LintStatus::Pass,
                false => LintStatus::Violation,
            }
        ),
        lint!(
            "e_bimi_logotype_critical",
            "The logotype extension must not be marked critical",
            "RFC 9399 §4",
            Source::Community,
            Severity::Error,
            NoncomplianceType::IllegalFormat,
            new = false,
            |ctx: &LintContext<'_>| match ctx.extension_critical(&known::logotype()) {
                None => LintStatus::NotApplicable,
                Some(true) => LintStatus::Violation,
                Some(false) => LintStatus::Pass,
            }
        ),
        lint!(
            "e_bimi_mark_type_missing",
            "VMC subject DN must carry the markType attribute (1.3.6.1.4.1.53087.1.13)",
            "BIMI VMC Guidelines §2.1",
            Source::Community,
            Severity::Error,
            NoncomplianceType::InvalidStructure,
            new = false,
            |ctx: &LintContext<'_>| {
                if has_subject_attr(ctx, &known::bimi_mark_type()) {
                    LintStatus::Pass
                } else {
                    LintStatus::Violation
                }
            }
        ),
        lint!(
            "e_bimi_mark_type_not_printable_or_utf8",
            "markType values must be PrintableString or UTF8String",
            "BIMI VMC Guidelines §2.1 / RFC 5280 §4.1.2.4",
            Source::Community,
            Severity::Error,
            NoncomplianceType::InvalidEncoding,
            new = false,
            |ctx: &LintContext<'_>| {
                check_attr(ctx, Which::Subject, &known::bimi_mark_type(), is_printable_or_utf8)
            }
        ),
        lint!(
            "e_bimi_trademark_registration_incomplete",
            "Trademark attributes travel as a set: office, country, and registration number all present or all absent",
            "BIMI VMC Guidelines §2.1",
            Source::Community,
            Severity::Error,
            NoncomplianceType::InvalidStructure,
            new = false,
            |ctx: &LintContext<'_>| {
                let present = [
                    has_subject_attr(ctx, &known::bimi_trademark_office()),
                    has_subject_attr(ctx, &known::bimi_trademark_country()),
                    has_subject_attr(ctx, &known::bimi_trademark_id()),
                ];
                match present.iter().filter(|&&p| p).count() {
                    0 => LintStatus::NotApplicable,
                    3 => LintStatus::Pass,
                    _ => LintStatus::Violation,
                }
            }
        ),
        lint!(
            "e_bimi_trademark_country_not_two_letters",
            "trademarkCountryOrRegionName must be a two-letter code",
            "BIMI VMC Guidelines §2.1",
            Source::Community,
            Severity::Error,
            NoncomplianceType::IllegalFormat,
            new = false,
            |ctx: &LintContext<'_>| {
                check_attr(ctx, Which::Subject, &known::bimi_trademark_country(), |v| {
                    v.wire_text()
                        .is_some_and(|t| t.len() == 2 && t.bytes().all(|b| b.is_ascii_alphabetic()))
                })
            }
        ),
        lint!(
            "e_bimi_trademark_id_not_printable",
            "trademarkRegistration must be a conformant PrintableString",
            "BIMI VMC Guidelines §2.1",
            Source::Community,
            Severity::Error,
            NoncomplianceType::InvalidEncoding,
            new = false,
            |ctx: &LintContext<'_>| {
                check_attr(ctx, Which::Subject, &known::bimi_trademark_id(), is_printable)
            }
        ),
        lint!(
            "e_bimi_statute_citation_missing_country",
            "statuteCitation requires the accompanying statuteCountryOrRegionName",
            "BIMI VMC Guidelines §2.1",
            Source::Community,
            Severity::Error,
            NoncomplianceType::InvalidStructure,
            new = false,
            |ctx: &LintContext<'_>| {
                if !has_subject_attr(ctx, &known::bimi_statute_citation()) {
                    LintStatus::NotApplicable
                } else if has_subject_attr(ctx, &known::bimi_statute_country()) {
                    LintStatus::Pass
                } else {
                    LintStatus::Violation
                }
            }
        ),
        lint!(
            "w_bimi_prior_use_url_not_https",
            "priorUseMarkSourceURL should be an https:// URL",
            "BIMI VMC Guidelines §2.1",
            Source::Community,
            Severity::Warning,
            NoncomplianceType::IllegalFormat,
            new = false,
            |ctx: &LintContext<'_>| {
                check_attr(ctx, Which::Subject, &known::bimi_prior_use_url(), |v| {
                    v.wire_text().is_some_and(|t| t.starts_with("https://"))
                })
            }
        ),
        lint!(
            "e_bimi_san_dns_missing",
            "VMC subjectAltName must carry at least one dNSName for the asserting domain",
            "BIMI VMC Guidelines §2.1",
            Source::Community,
            Severity::Error,
            NoncomplianceType::InvalidStructure,
            new = false,
            |ctx: &LintContext<'_>| {
                if ctx.san_dns().is_empty() {
                    LintStatus::Violation
                } else {
                    LintStatus::Pass
                }
            }
        ),
    ];
    lints.extend(
        crate::catalog::all_lints()
            .into_iter()
            .filter(|l| SHARED_WEBPKI_LINTS.contains(&l.name)),
    );
    lints
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimi_catalog_shape() {
        let lints = all_lints();
        assert_eq!(lints.len(), 15);
        let bimi_specific = lints.iter().filter(|l| l.name.contains("_bimi_")).count();
        assert_eq!(bimi_specific, 13);
        for shared in SHARED_WEBPKI_LINTS {
            assert!(lints.iter().any(|l| l.name == shared), "missing shared lint {shared}");
        }
        // Mark-specific lints are community-sourced and not part of the
        // paper's 50 new WebPKI lints.
        for l in lints.iter().filter(|l| l.name.contains("_bimi_")) {
            assert_eq!(l.source, Source::Community, "{}", l.name);
            assert!(!l.new_lint, "{}", l.name);
        }
        let mut names: Vec<_> = lints.iter().map(|l| l.name).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
