//! Named compliance profiles: selectable lint catalogs behind one
//! [`Registry`] abstraction.
//!
//! The paper's 95-lint WebPKI catalog ([`crate::catalog`]) is the default
//! `webpki` profile; the `bimi` profile ([`bimi`]) transcribes the BIMI
//! Group's Verified Mark Certificate requirements. Profiles are selected
//! by name — via [`Registry::for_profile`], via
//! [`crate::RunOptions::profile`], or via the `UNICERT_PROFILE`
//! environment variable — and selection swaps *whole catalogs*: a lint
//! shared between two profiles (by name) carries identical metadata and an
//! identical check in both, so profile choice never changes what any
//! individual lint means.

use crate::framework::{Lint, Registry};
use std::sync::OnceLock;

pub mod bimi;

/// The profile every pipeline uses unless told otherwise.
pub const DEFAULT_PROFILE: &str = "webpki";

/// A named, selectable lint catalog.
pub struct Profile {
    /// Selection key (`webpki`, `bimi`).
    pub name: &'static str,
    /// One-line description for docs and reports.
    pub description: &'static str,
    /// Catalog constructor. Must be deterministic: every call yields the
    /// same lints in the same order.
    build: fn() -> Vec<Lint>,
}

impl std::fmt::Debug for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profile").field("name", &self.name).finish_non_exhaustive()
    }
}

impl Profile {
    /// A fresh copy of the profile's catalog, in registration order.
    pub fn lints(&self) -> Vec<Lint> {
        (self.build)()
    }

    /// Build a fresh [`Registry`] carrying this profile's catalog.
    pub fn build_registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.set_profile_name(self.name);
        for lint in self.lints() {
            reg.register(lint);
        }
        reg
    }
}

/// The registered profiles, default first.
static PROFILES: [Profile; 2] = [
    Profile {
        name: "webpki",
        description: "the paper's 95-lint WebPKI internationalization catalog (Table 1)",
        build: crate::catalog::all_lints,
    },
    Profile {
        name: "bimi",
        description: "BIMI/VMC mark-certificate requirements (SNIPPETS Snippet 1 catalog)",
        build: bimi::all_lints,
    },
];

/// All registered profiles, default first.
pub fn all() -> &'static [Profile] {
    &PROFILES
}

/// Look up a profile by name (exact, case-sensitive — profile names are
/// lowercase identifiers).
pub fn find(name: &str) -> Option<&'static Profile> {
    PROFILES.iter().find(|p| p.name == name)
}

/// The shared per-process registry of a named profile. Registries are
/// built once on first use (boxing ~95 check closures is cheap but not
/// free) and live for the process lifetime, mirroring what
/// `unicert_corpus::lint_registry` always did for the default catalog.
pub fn registry(name: &str) -> Option<&'static Registry> {
    static REGISTRIES: OnceLock<Vec<Registry>> = OnceLock::new();
    let built = REGISTRIES.get_or_init(|| PROFILES.iter().map(Profile::build_registry).collect());
    PROFILES.iter().position(|p| p.name == name).and_then(|i| built.get(i))
}

/// The shared registry of the default (`webpki`) profile — infallible.
pub fn default_registry_static() -> &'static Registry {
    match registry(DEFAULT_PROFILE) {
        Some(reg) => reg,
        // Unreachable: DEFAULT_PROFILE is the first PROFILES entry.
        None => {
            static FALLBACK: OnceLock<Registry> = OnceLock::new();
            FALLBACK.get_or_init(crate::catalog::default_registry)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_the_full_webpki_catalog() {
        let reg = Registry::for_profile("webpki").expect("webpki registered");
        assert_eq!(reg.len(), 95);
        assert_eq!(reg.profile_name(), "webpki");
        // Identical lint names, in the same order, as the legacy entry point.
        let legacy = crate::catalog::default_registry();
        let a: Vec<_> = reg.iter().map(|l| l.name).collect();
        let b: Vec<_> = legacy.iter().map(|l| l.name).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_profile_is_none() {
        assert!(Registry::for_profile("zlint").is_none());
        assert!(find("WEBPKI").is_none(), "names are case-sensitive identifiers");
    }

    #[test]
    fn shared_registries_are_stable_instances() {
        let a = registry("bimi").expect("bimi registered");
        let b = registry("bimi").expect("bimi registered");
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.profile_name(), "bimi");
        assert!(std::ptr::eq(default_registry_static(), registry("webpki").unwrap()));
    }

    #[test]
    fn effective_profile_resolution() {
        use crate::framework::RunOptions;
        let opts = RunOptions { profile: Some("bimi"), ..RunOptions::default() };
        assert_eq!(opts.effective_profile(), "bimi");
        let opts = RunOptions { profile: Some("no-such-profile"), ..RunOptions::default() };
        assert_eq!(opts.effective_profile(), DEFAULT_PROFILE);
    }

    #[test]
    fn shared_lints_carry_identical_metadata() {
        // Profile selection must only add/remove whole catalogs: any lint
        // name present in several profiles means the same rule everywhere.
        for (i, p) in PROFILES.iter().enumerate() {
            for q in &PROFILES[i + 1..] {
                let a = p.build_registry();
                for lint in q.build_registry().iter() {
                    if let Some(twin) = a.get(lint.name) {
                        assert_eq!(twin.severity, lint.severity, "{}", lint.name);
                        assert_eq!(twin.nc_type, lint.nc_type, "{}", lint.name);
                        assert_eq!(twin.source.label(), lint.source.label(), "{}", lint.name);
                        assert_eq!(twin.new_lint, lint.new_lint, "{}", lint.name);
                        assert_eq!(twin.citation, lint.citation, "{}", lint.name);
                    }
                }
            }
        }
    }
}
