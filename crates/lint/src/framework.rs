//! The lint framework: metadata, registry, execution, and reports.
//!
//! Mirrors the structure the paper adopted from Zlint (§3.1.2): each lint has
//! a severity derived from the standard's requirement level (MUST → Error,
//! SHOULD → Warning), a source standard, an **effective date** (a lint only
//! applies to certificates issued on/after that date — the paper's
//! no-retroactivity rule), and a taxonomy type from Table 1.

use std::collections::BTreeMap;
use std::fmt;
use unicert_asn1::DateTime;
use unicert_x509::Certificate;

use crate::context::LintContext;

/// Requirement level → finding severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// SHOULD-level violation.
    Warning,
    /// MUST-level violation.
    Error,
}

/// The standard a lint is derived from (§3.1's document set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Source {
    Rfc5280,
    Rfc6818,
    Rfc8399,
    Rfc9549,
    Rfc9598,
    Rfc1034,
    Rfc5890,
    Idna2008,
    CabfBr,
    Community,
}

/// Midnight on a (validated-by-inspection) calendar date, usable in `const`
/// position — the effective-date table must be panic-free even under the
/// audit's rules, so no fallible constructor runs at lookup time.
const fn midnight(year: i32, month: u8, day: u8) -> DateTime {
    DateTime { year, month, day, hour: 0, minute: 0, second: 0 }
}

impl Source {
    /// All source standards, in declaration order.
    pub const ALL: [Source; 10] = [
        Source::Rfc5280,
        Source::Rfc6818,
        Source::Rfc8399,
        Source::Rfc9549,
        Source::Rfc9598,
        Source::Rfc1034,
        Source::Rfc5890,
        Source::Idna2008,
        Source::CabfBr,
        Source::Community,
    ];

    /// The date from which lints citing this source apply to new issuance.
    pub const fn effective_date(self) -> DateTime {
        match self {
            Source::Rfc5280 => midnight(2008, 5, 1),
            Source::Rfc6818 => midnight(2013, 1, 1),
            Source::Rfc8399 => midnight(2018, 5, 1),
            Source::Rfc9549 => midnight(2024, 3, 1), // RFC 9549 is dated March 2024
            Source::Rfc9598 => midnight(2024, 6, 1),
            Source::Rfc1034 => midnight(2008, 5, 1), // enforced via RFC 5280's profile
            Source::Rfc5890 => midnight(2010, 8, 1),
            Source::Idna2008 => midnight(2010, 8, 1),
            Source::CabfBr => midnight(2012, 7, 1),
            Source::Community => midnight(2015, 1, 1),
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Source::Rfc5280 => "RFC5280",
            Source::Rfc6818 => "RFC6818",
            Source::Rfc8399 => "RFC8399",
            Source::Rfc9549 => "RFC9549",
            Source::Rfc9598 => "RFC9598",
            Source::Rfc1034 => "RFC1034",
            Source::Rfc5890 => "RFC5890",
            Source::Idna2008 => "IDNA2008",
            Source::CabfBr => "CABF-BR",
            Source::Community => "Community",
        }
    }
}

/// The Table 1 noncompliance taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NoncomplianceType {
    /// T1: invalid characters for the field's character range.
    InvalidCharacter,
    /// T2: missing or wrong value normalization (NFC, Punycode forms).
    BadNormalization,
    /// T3a: basic format errors (lengths, cases).
    IllegalFormat,
    /// T3b: wrong ASN.1 encoding type for the field.
    InvalidEncoding,
    /// T3c: structural rule violations (duplicates, required inclusion).
    InvalidStructure,
    /// T3d: non-recommended fields.
    DiscouragedField,
}

impl NoncomplianceType {
    /// Label as printed in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            NoncomplianceType::InvalidCharacter => "Invalid Character",
            NoncomplianceType::BadNormalization => "Bad Normalization",
            NoncomplianceType::IllegalFormat => "Illegal Format",
            NoncomplianceType::InvalidEncoding => "Invalid Encoding",
            NoncomplianceType::InvalidStructure => "Invalid Structure",
            NoncomplianceType::DiscouragedField => "Discouraged Field",
        }
    }

    /// All six, in Table 1 order.
    pub const ALL: [NoncomplianceType; 6] = [
        NoncomplianceType::InvalidCharacter,
        NoncomplianceType::BadNormalization,
        NoncomplianceType::IllegalFormat,
        NoncomplianceType::InvalidEncoding,
        NoncomplianceType::InvalidStructure,
        NoncomplianceType::DiscouragedField,
    ];
}

/// Result of running one lint against one certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintStatus {
    /// The checked condition holds.
    Pass,
    /// The certificate doesn't contain the field this lint checks.
    NotApplicable,
    /// Violation found (severity comes from the lint's metadata).
    Violation,
    /// The lint's effective date postdates the certificate's issuance
    /// (only produced by the runner, not by check functions).
    NotEffective,
}

/// Static description of one lint.
pub struct Lint {
    /// Zlint-style name, e.g. `e_subject_organization_not_printable_or_utf8`.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Citation, e.g. `RFC 5280 §4.1.2.4`.
    pub citation: &'static str,
    /// Source standard.
    pub source: Source,
    /// MUST → Error, SHOULD → Warning.
    pub severity: Severity,
    /// Table 1 taxonomy type.
    pub nc_type: NoncomplianceType,
    /// Is this one of the paper's 50 newly derived lints (not covered by
    /// existing linters)?
    pub new_lint: bool,
    /// The check itself. Checks receive the certificate through a
    /// memoized [`LintContext`] so expensive derivations (extension
    /// parses, text decodes, label pipelines) are shared across the
    /// whole catalog.
    pub check: Box<dyn Fn(&LintContext<'_>) -> LintStatus + Send + Sync>,
}

impl fmt::Debug for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Lint")
            .field("name", &self.name)
            .field("severity", &self.severity)
            .field("nc_type", &self.nc_type)
            .field("new", &self.new_lint)
            .finish()
    }
}

impl Lint {
    /// The date from which this lint applies to newly issued certificates.
    pub fn effective_date(&self) -> DateTime {
        self.source.effective_date()
    }

    /// Stable metadata accessor: lint name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Stable metadata accessor: one-line description.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Stable metadata accessor: citation string.
    pub fn citation(&self) -> &'static str {
        self.citation
    }

    /// Stable metadata accessor: Table 1 taxonomy type.
    pub fn taxonomy(&self) -> NoncomplianceType {
        self.nc_type
    }

    /// Stable metadata accessor: severity.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// Stable metadata accessor: source standard.
    pub fn source(&self) -> Source {
        self.source
    }

    /// Stable metadata accessor: is this one of the paper's 50 new lints?
    pub fn is_new(&self) -> bool {
        self.new_lint
    }
}

/// Structured provenance attached to a [`Finding`] in evidence mode: the
/// byte range and TLV path of the input the lint actually read, the raw
/// (lossy-decoded) value, its NFC normalization when that differs, and the
/// lint's citation. See DESIGN.md §13.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evidence {
    /// Byte range in the certificate DER the finding is anchored to.
    pub span: unicert_asn1::Span,
    /// Structural path of the element, e.g. `tbs.subject.attr[0].value` or
    /// `tbs.ext[3](2.5.29.17).item[1]`; `tbs` when the lint read the
    /// certificate directly rather than through a cached value.
    pub tlv_path: String,
    /// The value as decoded from the wire (lossy; empty for whole-TBS
    /// fallback evidence).
    pub raw: String,
    /// The NFC normalization of `raw`, when it differs from `raw`.
    pub normalized: Option<String>,
    /// The fired lint's citation, e.g. `RFC 5280 §4.1.2.4`.
    pub citation: &'static str,
}

/// One finding: a lint that fired on a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint name.
    pub lint: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Taxonomy type.
    pub nc_type: NoncomplianceType,
    /// Was the lint one of the 50 new ones?
    pub new_lint: bool,
    /// Byte-range provenance, populated only in evidence mode
    /// ([`RunOptions::evidence`] or a context built with
    /// [`LintContext::with_evidence`]); empty on the survey hot path.
    pub evidence: Vec<Evidence>,
}

/// Per-certificate lint report.
#[derive(Debug, Clone, Default)]
pub struct CertReport {
    /// All findings.
    pub findings: Vec<Finding>,
}

impl CertReport {
    /// Any finding at all?
    pub fn is_noncompliant(&self) -> bool {
        !self.findings.is_empty()
    }

    /// Any Error-level finding?
    pub fn has_error(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// Any Warning-level finding?
    pub fn has_warning(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Warning)
    }

    /// Taxonomy types present.
    pub fn nc_types(&self) -> Vec<NoncomplianceType> {
        let mut types: Vec<_> = self.findings.iter().map(|f| f.nc_type).collect();
        types.sort();
        types.dedup();
        types
    }

    /// Did any of the 50 new lints fire?
    pub fn hit_new_lint(&self) -> bool {
        self.findings.iter().any(|f| f.new_lint)
    }
}

/// Execution options, for one certificate and for corpus-scale pipelines.
///
/// The sharding knobs (`threads`, `shard_size`) are carried here so every
/// consumer of a `RunOptions` — the survey engine, the bench binaries, the
/// CLI — shares one source of truth; [`Registry::run`] itself ignores them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Apply effective-date gating (§3.1.2). Turning this off reproduces
    /// the paper's footnote-4 ablation (249K → 1.8M findings).
    pub enforce_effective_dates: bool,
    /// Worker threads for sharded pipelines. `None` resolves to the
    /// `UNICERT_THREADS` environment variable, falling back to
    /// [`std::thread::available_parallelism`]; `Some(1)` forces the serial
    /// path.
    pub threads: Option<usize>,
    /// Certificates per shard for sharded pipelines. `0` resolves to the
    /// `UNICERT_SHARD_SIZE` environment variable, falling back to
    /// [`RunOptions::DEFAULT_SHARD_SIZE`].
    pub shard_size: usize,
    /// Compliance profile selecting the lint catalog. `None` resolves to
    /// the `UNICERT_PROFILE` environment variable, falling back to the
    /// default [`crate::profiles::DEFAULT_PROFILE`] (`"webpki"`). Unknown
    /// names fall back to the default rather than failing the run.
    pub profile: Option<&'static str>,
    /// Capture byte-range provenance: [`Registry::run`] builds the context
    /// with [`LintContext::with_evidence`] so every finding carries
    /// [`Evidence`]. Off by default — the survey hot path and the guarded
    /// fingerprint never pay for provenance.
    pub evidence: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            enforce_effective_dates: true,
            threads: None,
            shard_size: 0,
            profile: None,
            evidence: false,
        }
    }
}

impl RunOptions {
    /// Shard granularity when neither `shard_size` nor `UNICERT_SHARD_SIZE`
    /// says otherwise: large enough to amortize merge cost, small enough to
    /// keep every worker busy on 10k-cert corpora.
    pub const DEFAULT_SHARD_SIZE: usize = 256;

    /// The footnote-4 ablation configuration (no effective-date gating).
    pub fn ungated() -> RunOptions {
        RunOptions { enforce_effective_dates: false, ..RunOptions::default() }
    }

    /// Validate the shared environment knobs (`UNICERT_THREADS`,
    /// `UNICERT_SHARD_SIZE`, `UNICERT_PROFILE`) *strictly*.
    ///
    /// The library resolvers below are lenient by design — a malformed
    /// value falls back along the documented chain so embedding code never
    /// fails on a stray variable. Binaries want the opposite: a typo'd
    /// `UNICERT_THREADS=fuor` silently running serial is a misconfiguration
    /// the operator should hear about. Every `unicert` binary calls this on
    /// startup and exits with status 2 on `Err`, which carries one line per
    /// offending variable.
    ///
    /// Strict rules: `UNICERT_THREADS` and `UNICERT_SHARD_SIZE`, when set,
    /// must parse as integers ≥ 1; `UNICERT_PROFILE`, when set, must name a
    /// registered profile. Unset variables are always fine.
    pub fn validate_env() -> Result<(), String> {
        let mut problems = Vec::new();
        for name in ["UNICERT_THREADS", "UNICERT_SHARD_SIZE"] {
            if let Ok(v) = std::env::var(name) {
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => {}
                    _ => problems.push(format!(
                        "{name}={v:?} is not a positive integer"
                    )),
                }
            }
        }
        if let Ok(v) = std::env::var("UNICERT_PROFILE") {
            if crate::profiles::find(&v).is_none() {
                let names: Vec<&str> =
                    crate::profiles::all().iter().map(|p| p.name).collect();
                problems.push(format!(
                    "UNICERT_PROFILE={v:?} is not a registered profile (registered: {})",
                    names.join(", ")
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems.join("\n"))
        }
    }

    /// Resolve the worker-thread count: explicit option, then the
    /// `UNICERT_THREADS` environment variable, then the machine's available
    /// parallelism. Always at least 1.
    ///
    /// Lenient fallback rule (see [`RunOptions::validate_env`] for the
    /// strict binary-facing check): a `UNICERT_THREADS` value that does not
    /// parse as an integer is ignored — resolution falls through to the
    /// machine's parallelism — and `0` is clamped to 1.
    pub fn effective_threads(&self) -> usize {
        let configured = self.threads.or_else(|| {
            std::env::var("UNICERT_THREADS").ok().and_then(|v| v.parse().ok())
        });
        let n = configured.unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) // analysis:allow(thread_dependence) worker-count default only; shard merge is order-independent (PR 2)
        });
        n.max(1)
    }

    /// Resolve the shard size: explicit option, then `UNICERT_SHARD_SIZE`,
    /// then [`RunOptions::DEFAULT_SHARD_SIZE`]. Always at least 1.
    ///
    /// Lenient fallback rule: an unparsable `UNICERT_SHARD_SIZE` is
    /// ignored (resolution falls through to the default) and `0` is
    /// clamped to 1. Binaries reject such values up front via
    /// [`RunOptions::validate_env`].
    pub fn effective_shard_size(&self) -> usize {
        let configured = if self.shard_size > 0 {
            Some(self.shard_size)
        } else {
            std::env::var("UNICERT_SHARD_SIZE").ok().and_then(|v| v.parse().ok())
        };
        configured.unwrap_or(Self::DEFAULT_SHARD_SIZE).max(1)
    }

    /// Resolve the compliance profile: explicit option, then the
    /// `UNICERT_PROFILE` environment variable (matched against the
    /// registered profile names), then the default profile. Always a
    /// registered profile name.
    ///
    /// Lenient fallback rule: an unregistered name (from either source)
    /// resolves to the default profile rather than failing the run.
    /// Binaries reject unknown `UNICERT_PROFILE` values up front via
    /// [`RunOptions::validate_env`].
    pub fn effective_profile(&self) -> &'static str {
        if let Some(name) = self.profile {
            return crate::profiles::find(name)
                .map(|p| p.name)
                .unwrap_or(crate::profiles::DEFAULT_PROFILE);
        }
        match std::env::var("UNICERT_PROFILE") {
            Ok(v) => crate::profiles::find(&v)
                .map(|p| p.name)
                .unwrap_or(crate::profiles::DEFAULT_PROFILE),
            Err(_) => crate::profiles::DEFAULT_PROFILE,
        }
    }
}

/// Pre-resolved telemetry handles for one lint: a run counter and a
/// latency histogram, both in the global metrics registry under the
/// lint's name as label.
struct LintInstrument {
    runs: std::sync::Arc<unicert_telemetry::Counter>,
    latency: std::sync::Arc<unicert_telemetry::Histogram>,
}

/// All telemetry handles [`Registry::run`] records into, resolved once on
/// the first instrumented run (see DESIGN.md §8 for the metric names).
struct Instruments {
    /// Parallel to `Registry::lints`.
    per_lint: Vec<LintInstrument>,
    /// `lint.findings{error}` — Error-level findings across all lints.
    errors: std::sync::Arc<unicert_telemetry::Counter>,
    /// `lint.findings{warning}` — Warning-level findings.
    warnings: std::sync::Arc<unicert_telemetry::Counter>,
    /// `lint.certs` — certificates pushed through the registry; doubles as
    /// the sequence number for latency sampling.
    certs: std::sync::Arc<unicert_telemetry::Counter>,
}

impl Instruments {
    fn resolve(lints: &[Lint]) -> Instruments {
        let registry = unicert_telemetry::global();
        Instruments {
            per_lint: lints
                .iter()
                .map(|lint| LintInstrument {
                    runs: registry.counter("lint.runs", lint.name),
                    latency: registry.histogram("lint.latency_ns", lint.name),
                })
                .collect(),
            errors: registry.counter("lint.findings", "error"),
            warnings: registry.counter("lint.findings", "warning"),
            certs: registry.counter("lint.certs", ""),
        }
    }
}

/// Shard-local accumulator for the `lint.runs` / `lint.findings` /
/// `lint.certs` counters (DESIGN.md §8).
///
/// [`Registry::run_tallied`] adds into plain locals here instead of the
/// global atomics — ~97 relaxed RMWs per certificate collapse into one
/// [`Registry::flush_tally`] per shard, which is what keeps the
/// metrics-on survey inside the §8 overhead budget. Totals are exact as
/// long as the owner flushes before its snapshot is taken (the survey
/// pipeline flushes at the end of every shard and of the serial loop).
pub struct RunTally {
    /// Parallel to `Registry::lints`.
    counts: Vec<u64>,
    errors: u64,
    warnings: u64,
    /// Certificates seen; doubles as the latency-sampling sequence.
    certs: u64,
}

impl RunTally {
    /// Will the next [`Registry::run_tallied`] certificate be latency-timed?
    ///
    /// Exposed so callers can gate their own per-certificate timing (the
    /// survey's stage histograms) on the same 1-in-`metrics_sample()`
    /// sequence — one sampling decision for the whole hot loop.
    pub fn will_time_next(&self) -> bool {
        let sample = unicert_telemetry::metrics_sample();
        sample <= 1 || self.certs % sample == 0
    }
}

/// The lint registry.
pub struct Registry {
    lints: Vec<Lint>,
    instruments: std::sync::OnceLock<Instruments>,
    /// Name of the compliance profile the registry was built from.
    /// Hand-assembled registries (fault-injection tests) keep the default
    /// name so their reports render exactly as before profiles existed.
    profile: &'static str,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            lints: Vec::new(),
            instruments: std::sync::OnceLock::new(),
            profile: crate::profiles::DEFAULT_PROFILE,
        }
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry").field("lints", &self.lints).finish_non_exhaustive()
    }
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Build the registry of a named compliance profile, or `None` for an
    /// unregistered name. The result is a fresh instance; pipelines that
    /// want the shared per-process copy go through
    /// [`crate::profiles::registry`] instead.
    pub fn for_profile(name: &str) -> Option<Registry> {
        crate::profiles::find(name).map(|p| p.build_registry())
    }

    /// The compliance profile this registry was built from.
    pub fn profile_name(&self) -> &'static str {
        self.profile
    }

    /// Stamp the profile name (used by the profile table's builder).
    pub(crate) fn set_profile_name(&mut self, name: &'static str) {
        self.profile = name;
    }

    /// Register a lint; names must be unique.
    pub fn register(&mut self, lint: Lint) {
        debug_assert!(
            !self.lints.iter().any(|l| l.name == lint.name),
            "duplicate lint name {}",
            lint.name
        );
        self.lints.push(lint);
    }

    /// All registered lints.
    pub fn lints(&self) -> &[Lint] {
        &self.lints
    }

    /// Iterate over registered lints in registration (Table 1) order.
    ///
    /// This is the supported introspection surface for external tooling
    /// (the `unicert-analysis` meta-linter) — combined with the
    /// [`Lint`] metadata accessors it avoids any dependence on catalog
    /// module layout.
    pub fn iter(&self) -> impl Iterator<Item = &Lint> {
        self.lints.iter()
    }

    /// Number of registered lints.
    pub fn len(&self) -> usize {
        self.lints.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.lints.is_empty()
    }

    /// Look up a lint by name.
    pub fn get(&self, name: &str) -> Option<&Lint> {
        self.lints.iter().find(|l| l.name == name)
    }

    /// Run every applicable lint against a certificate.
    ///
    /// With metrics enabled (`unicert_telemetry::metrics_enabled`) this
    /// dispatches to the instrumented twin, which records exactly one
    /// `lint.runs` observation per enabled lint per certificate plus
    /// per-severity finding counters, and — on a sampled subset of
    /// certificates (`UNICERT_METRICS_SAMPLE`, default 1 in 16) — a
    /// per-lint latency histogram. The findings are identical either way:
    /// telemetry never feeds back into the report.
    pub fn run(&self, cert: &Certificate, opts: RunOptions) -> CertReport {
        if opts.evidence {
            return self.run_ctx(&LintContext::with_evidence(cert), opts);
        }
        self.run_ctx(&LintContext::new(cert), opts)
    }

    /// [`Registry::run`] against a caller-built [`LintContext`].
    ///
    /// Use this when the same certificate also feeds other analysis stages
    /// (the survey's classify and field-matrix passes) so every stage
    /// shares one decode cache.
    pub fn run_ctx(&self, ctx: &LintContext<'_>, opts: RunOptions) -> CertReport {
        if unicert_telemetry::metrics_enabled() {
            return self.run_instrumented(ctx, opts);
        }
        let mut report = CertReport::default();
        let issued = ctx.validity().not_before;
        let evidence_on = ctx.evidence_enabled();
        let flight = unicert_telemetry::flight::flight_enabled();
        for lint in &self.lints {
            if opts.enforce_effective_dates && issued < lint.effective_date() {
                continue;
            }
            if flight {
                unicert_telemetry::flight::set_context(lint.name);
            }
            if evidence_on {
                ctx.begin_check();
            }
            if (lint.check)(ctx) == LintStatus::Violation {
                if flight {
                    unicert_telemetry::flight::record("violation", lint.name, 0);
                }
                report.findings.push(Finding {
                    lint: lint.name,
                    severity: lint.severity,
                    nc_type: lint.nc_type,
                    new_lint: lint.new_lint,
                    evidence: if evidence_on {
                        ctx.drain_evidence(lint.citation)
                    } else {
                        Vec::new()
                    },
                });
            }
        }
        report
    }

    fn instruments(&self) -> &Instruments {
        self.instruments.get_or_init(|| Instruments::resolve(&self.lints))
    }

    /// The metrics-recording twin of the `run` loop.
    ///
    /// Latency uses consecutive timestamps — one clock read per executed
    /// lint, the delta between neighbours attributed to the lint that just
    /// ran (gating checks are folded in; they are a comparison each). Full
    /// per-lint timing runs on one certificate in `metrics_sample()`; the
    /// run/severity counters are exhaustive on every certificate.
    fn run_instrumented(&self, ctx: &LintContext<'_>, opts: RunOptions) -> CertReport {
        use std::time::Instant;
        let instruments = self.instruments();
        let sequence = instruments.certs.inc_fetch();
        let sample = unicert_telemetry::metrics_sample();
        let timed = sample <= 1 || sequence % sample == 0;

        let mut report = CertReport::default();
        let issued = ctx.validity().not_before;
        let evidence_on = ctx.evidence_enabled();
        let flight = unicert_telemetry::flight::flight_enabled();
        let mut previous = timed.then(Instant::now);
        for (lint, instrument) in self.lints.iter().zip(&instruments.per_lint) {
            if opts.enforce_effective_dates && issued < lint.effective_date() {
                continue;
            }
            let _span = unicert_telemetry::span!(verbose: "lint", "{}", lint.name);
            if flight {
                unicert_telemetry::flight::set_context(lint.name);
            }
            if evidence_on {
                ctx.begin_check();
            }
            let status = (lint.check)(ctx);
            instrument.runs.inc();
            if let Some(before) = previous {
                let now = Instant::now(); // analysis:allow(clock) per-lint latency feeds telemetry histograms only, never report bytes
                instrument
                    .latency
                    .record(u64::try_from(now.duration_since(before).as_nanos()).unwrap_or(u64::MAX));
                previous = Some(now);
            }
            if status == LintStatus::Violation {
                match lint.severity {
                    Severity::Error => instruments.errors.inc(),
                    Severity::Warning => instruments.warnings.inc(),
                }
                if flight {
                    unicert_telemetry::flight::record("violation", lint.name, 0);
                }
                report.findings.push(Finding {
                    lint: lint.name,
                    severity: lint.severity,
                    nc_type: lint.nc_type,
                    new_lint: lint.new_lint,
                    evidence: if evidence_on {
                        ctx.drain_evidence(lint.citation)
                    } else {
                        Vec::new()
                    },
                });
            }
        }
        report
    }

    /// Fresh zeroed [`RunTally`] sized to this registry.
    pub fn tally(&self) -> RunTally {
        RunTally { counts: vec![0; self.lints.len()], errors: 0, warnings: 0, certs: 0 }
    }

    /// The batching twin of [`Registry::run`] for tight survey loops.
    ///
    /// Identical findings and identical metric semantics, but the run /
    /// finding / cert counters go into `tally`'s plain locals instead of
    /// the global atomics; the caller owns flushing them with
    /// [`Registry::flush_tally`]. Latency sampling uses the tally's own
    /// certificate sequence, so each shard times one certificate in
    /// `metrics_sample()` exactly as the unbatched path does.
    pub fn run_tallied(
        &self,
        cert: &Certificate,
        opts: RunOptions,
        tally: &mut RunTally,
    ) -> CertReport {
        if opts.evidence {
            return self.run_tallied_ctx(&LintContext::with_evidence(cert), opts, tally);
        }
        self.run_tallied_ctx(&LintContext::new(cert), opts, tally)
    }

    /// [`Registry::run_tallied`] against a caller-built [`LintContext`] —
    /// the survey hot loop's entry point.
    pub fn run_tallied_ctx(
        &self,
        ctx: &LintContext<'_>,
        opts: RunOptions,
        tally: &mut RunTally,
    ) -> CertReport {
        let timed = tally.will_time_next();
        tally.certs += 1;
        // Hoisted out of the per-lint loop: one trace-level load per cert
        // instead of 95.
        let verbose =
            unicert_telemetry::trace::trace_level() >= unicert_telemetry::TraceLevel::Verbose;
        if timed || verbose {
            return self.run_tallied_timed(ctx, opts, tally, timed, verbose);
        }

        // Fast path for the 15-in-16 untimed certificates: no clocks, no
        // span guards — just local count bumps next to the check calls.
        let mut report = CertReport::default();
        let issued = ctx.validity().not_before;
        let evidence_on = ctx.evidence_enabled();
        let flight = unicert_telemetry::flight::flight_enabled();
        for (lint, count) in self.lints.iter().zip(&mut tally.counts) {
            if opts.enforce_effective_dates && issued < lint.effective_date() {
                continue;
            }
            if flight {
                unicert_telemetry::flight::set_context(lint.name);
            }
            if evidence_on {
                ctx.begin_check();
            }
            let status = (lint.check)(ctx);
            *count += 1;
            if status == LintStatus::Violation {
                match lint.severity {
                    Severity::Error => tally.errors += 1,
                    Severity::Warning => tally.warnings += 1,
                }
                if flight {
                    unicert_telemetry::flight::record("violation", lint.name, 0);
                }
                report.findings.push(Finding {
                    lint: lint.name,
                    severity: lint.severity,
                    nc_type: lint.nc_type,
                    new_lint: lint.new_lint,
                    evidence: if evidence_on {
                        ctx.drain_evidence(lint.citation)
                    } else {
                        Vec::new()
                    },
                });
            }
        }
        report
    }

    /// The sampled / verbose-traced arm of [`Registry::run_tallied`].
    fn run_tallied_timed(
        &self,
        ctx: &LintContext<'_>,
        opts: RunOptions,
        tally: &mut RunTally,
        timed: bool,
        verbose: bool,
    ) -> CertReport {
        use std::time::Instant;
        let instruments = self.instruments();
        let mut report = CertReport::default();
        let issued = ctx.validity().not_before;
        let evidence_on = ctx.evidence_enabled();
        let flight = unicert_telemetry::flight::flight_enabled();
        let mut previous = timed.then(Instant::now);
        for ((lint, instrument), count) in
            self.lints.iter().zip(&instruments.per_lint).zip(&mut tally.counts)
        {
            if opts.enforce_effective_dates && issued < lint.effective_date() {
                continue;
            }
            let _span = if verbose {
                unicert_telemetry::span!(verbose: "lint", "{}", lint.name)
            } else {
                unicert_telemetry::SpanGuard::inert()
            };
            if flight {
                unicert_telemetry::flight::set_context(lint.name);
            }
            if evidence_on {
                ctx.begin_check();
            }
            let status = (lint.check)(ctx);
            *count += 1;
            if let Some(before) = previous {
                let now = Instant::now(); // analysis:allow(clock) per-lint latency feeds telemetry histograms only, never report bytes
                instrument
                    .latency
                    .record(u64::try_from(now.duration_since(before).as_nanos()).unwrap_or(u64::MAX));
                previous = Some(now);
            }
            if status == LintStatus::Violation {
                match lint.severity {
                    Severity::Error => tally.errors += 1,
                    Severity::Warning => tally.warnings += 1,
                }
                if flight {
                    unicert_telemetry::flight::record("violation", lint.name, 0);
                }
                report.findings.push(Finding {
                    lint: lint.name,
                    severity: lint.severity,
                    nc_type: lint.nc_type,
                    new_lint: lint.new_lint,
                    evidence: if evidence_on {
                        ctx.drain_evidence(lint.citation)
                    } else {
                        Vec::new()
                    },
                });
            }
        }
        report
    }

    /// Drain `tally` into the global metrics registry and reset it.
    pub fn flush_tally(&self, tally: &mut RunTally) {
        let instruments = self.instruments();
        for (instrument, count) in instruments.per_lint.iter().zip(&mut tally.counts) {
            if *count > 0 {
                instrument.runs.add(*count);
                *count = 0;
            }
        }
        instruments.errors.add(std::mem::take(&mut tally.errors));
        instruments.warnings.add(std::mem::take(&mut tally.warnings));
        instruments.certs.add(std::mem::take(&mut tally.certs));
    }

    /// Count lints per taxonomy type as `(all, new)` — the "#Lints" columns
    /// of Table 1.
    pub fn lint_counts_by_type(&self) -> BTreeMap<NoncomplianceType, (usize, usize)> {
        let mut map = BTreeMap::new();
        for l in &self.lints {
            let e = map.entry(l.nc_type).or_insert((0usize, 0usize));
            e.0 += 1;
            if l.new_lint {
                e.1 += 1;
            }
        }
        map
    }
}

// The sharded survey pipeline borrows one registry across its worker pool;
// keep the `Send + Sync` bounds (via the boxed check closures) a hard
// compile-time guarantee rather than an accident of the current fields.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Registry>();
    assert_send_sync::<Lint>();
};

#[cfg(test)]
mod tests {
    use super::*;

    /// Every source's const-constructed effective date must be a valid
    /// calendar date (the table is hand-maintained; this keeps it honest
    /// without a fallible lookup path).
    #[test]
    fn every_source_effective_date_is_valid() {
        for source in Source::ALL {
            let d = source.effective_date();
            let validated = DateTime::new(d.year, d.month, d.day, d.hour, d.minute, d.second)
                .unwrap_or_else(|_| panic!("invalid effective date for {}", source.label()));
            assert_eq!(validated, d, "{}", source.label());
            // Sanity: all effective dates fall in the standards era.
            assert!((2000..=2030).contains(&d.year), "{}", source.label());
        }
    }

    #[test]
    fn effective_dates_are_ordered_sanely() {
        // The two 2024 RFCs postdate everything else.
        let base = Source::Rfc5280.effective_date();
        assert!(Source::Rfc9549.effective_date() > base);
        assert!(Source::Rfc9598.effective_date() > Source::Rfc9549.effective_date());
    }

    #[test]
    fn run_options_resolution() {
        let opts = RunOptions { threads: Some(3), shard_size: 17, ..RunOptions::default() };
        assert_eq!(opts.effective_threads(), 3);
        assert_eq!(opts.effective_shard_size(), 17);
        let opts = RunOptions { threads: Some(0), ..RunOptions::default() };
        assert!(opts.effective_threads() >= 1);
        assert!(RunOptions::default().effective_shard_size() >= 1);
        assert!(!RunOptions::ungated().enforce_effective_dates);
    }
}
