//! The Unicert compliance linter — the paper's primary contribution.
//!
//! A Zlint-style framework ([`framework`]) carrying a catalog of **95
//! constraint rules** ([`catalog`]) extracted from RFC 5280 and its
//! internationalization updates (8399/9549/9598), the DNS and IDNA
//! standards, and the CA/Browser Forum Baseline Requirements. Fifty of the
//! rules are the paper's newly derived ("RFCGPT") lints not covered by
//! existing linters; the remainder transcribe pre-existing community rules
//! the paper reused.
//!
//! ```
//! use unicert_lint::{default_registry, RunOptions};
//! use unicert_x509::{CertificateBuilder, SimKey};
//! use unicert_asn1::DateTime;
//!
//! let registry = default_registry();
//! let cert = CertificateBuilder::new()
//!     .subject_cn("h\u{0}st.example")     // NUL in CN: T1
//!     .validity_days(DateTime::date(2024, 6, 1).unwrap(), 90)
//!     .build_signed(&SimKey::from_seed("demo-ca"));
//! let report = registry.run(&cert, RunOptions::default());
//! assert!(report.is_noncompliant());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod context;
pub mod framework;
pub mod helpers;
pub mod profiles;

pub use catalog::{all_lints, default_registry};
pub use context::{LintContext, Origin};
pub use framework::{
    CertReport, Evidence, Finding, Lint, LintStatus, NoncomplianceType, Registry, RunOptions,
    RunTally, Severity, Source,
};
pub use profiles::{Profile, DEFAULT_PROFILE};
