//! Shared predicates and field extractors used across the lint catalog.
//!
//! Two layers live here:
//!
//! - **Context-based lifters and predicates** (`check_attr`, `check_values`,
//!   `is_printable_or_utf8`, …) operating on [`LintContext`] /
//!   [`CachedVal`] — what the catalog uses. Decode results are memoized in
//!   the context, so 95 lints asking about the same value pay for one
//!   decode.
//! - **Direct, uncached extractors** (`san`, `attr_values`, `crldp_uris`,
//!   …) operating on a bare [`Certificate`]. These are the reference
//!   semantics: external consumers (`unicert-threats`, differential tests)
//!   call them, and the context-equivalence proptests pin every cached
//!   accessor against them.

use crate::context::{CachedVal, LintContext};
use crate::framework::LintStatus;
use unicert_asn1::oid::known;
use unicert_asn1::{Oid, StringKind};
use unicert_unicode::classify;
use unicert_x509::extensions::{ParsedExtension, PolicyQualifier};
use unicert_x509::{Certificate, DistinguishedName, GeneralName, RawValue};

/// Which DN a lint inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// The Subject DN.
    Subject,
    /// The Issuer DN.
    Issuer,
}

/// Select a DN.
pub fn dn(cert: &Certificate, which: Which) -> &DistinguishedName {
    match which {
        Which::Subject => &cert.tbs.subject,
        Which::Issuer => &cert.tbs.issuer,
    }
}

/// Values of one attribute type in a DN (uncached reference extractor).
pub fn attr_values<'a>(cert: &'a Certificate, which: Which, oid: &Oid) -> Vec<&'a RawValue> {
    dn(cert, which).all_values(oid)
}

/// Lift a per-value predicate over an attribute: `NotApplicable` when the
/// attribute is absent, `Violation` when any value fails.
pub fn check_attr(
    ctx: &LintContext<'_>,
    which: Which,
    oid: &Oid,
    ok: impl Fn(&CachedVal) -> bool,
) -> LintStatus {
    check_values(ctx.attr_vals(which, oid), ok)
}

/// DirectoryString attributes must be PrintableString or UTF8String, fully
/// conformant to the chosen type (RFC 5280 §4.1.2.4 / CABF BR 7.1.4.2).
pub fn is_printable_or_utf8(v: &CachedVal) -> bool {
    matches!(v.kind(), Some(StringKind::Printable) | Some(StringKind::Utf8)) && v.strict_ok()
}

/// PrintableString-only attributes (countryName, serialNumber, DNQualifier).
pub fn is_printable(v: &CachedVal) -> bool {
    v.kind() == Some(StringKind::Printable) && v.strict_ok()
}

/// IA5String-only values (emailAddress, domainComponent, GN strings).
pub fn is_ia5(v: &CachedVal) -> bool {
    v.kind() == Some(StringKind::Ia5) && v.strict_ok()
}

/// Decodable text, via whatever the tag claims (used by character-range
/// checks, which want to inspect content even when the *type* is wrong).
/// Memoized: the first asker pays for the decode.
pub fn lenient_text(v: &CachedVal) -> Option<&str> {
    v.wire_text()
}

/// Lift a per-value predicate over *all* DN values.
pub fn check_all_dn(
    ctx: &LintContext<'_>,
    which: Which,
    ok: impl Fn(&CachedVal) -> bool,
) -> LintStatus {
    check_values(ctx.dn_attrs(which).iter().map(|a| &a.val), ok)
}

/// The SAN GeneralNames, or empty (uncached reference extractor).
pub fn san(cert: &Certificate) -> Vec<GeneralName> {
    cert.tbs.subject_alt_names().unwrap_or_default()
}

/// The IAN GeneralNames, or empty (uncached reference extractor).
pub fn ian(cert: &Certificate) -> Vec<GeneralName> {
    match cert
        .tbs
        .extension(&known::issuer_alt_name())
        .and_then(|e| e.parse().ok())
    {
        Some(ParsedExtension::IssuerAltName(names)) => names,
        _ => Vec::new(),
    }
}

/// SAN DNSName raw values (uncached reference extractor).
pub fn san_dns_values(cert: &Certificate) -> Vec<RawValue> {
    san(cert)
        .into_iter()
        .filter_map(|n| match n {
            GeneralName::DnsName(v) => Some(v),
            _ => None,
        })
        .collect()
}

/// Lift a predicate over a sequence of cached values with the usual
/// NA/Pass/Violation semantics. Short-circuits on the first failure.
pub fn check_values<'a>(
    values: impl IntoIterator<Item = &'a CachedVal>,
    ok: impl Fn(&CachedVal) -> bool,
) -> LintStatus {
    let mut any = false;
    for v in values {
        any = true;
        if !ok(v) {
            return LintStatus::Violation;
        }
    }
    if any {
        LintStatus::Pass
    } else {
        LintStatus::NotApplicable
    }
}

/// GeneralName string values from SAN by selector (uncached reference
/// extractor).
pub fn san_values(
    cert: &Certificate,
    select: impl Fn(&GeneralName) -> Option<RawValue>,
) -> Vec<RawValue> {
    san(cert).iter().filter_map(select).collect()
}

/// URIs from AIA / SIA access descriptions (uncached reference extractor).
pub fn access_uris(cert: &Certificate, oid: &Oid) -> Vec<RawValue> {
    let parsed = cert.tbs.extension(oid).and_then(|e| e.parse().ok());
    let descs = match parsed {
        Some(ParsedExtension::AuthorityInfoAccess(d)) | Some(ParsedExtension::SubjectInfoAccess(d)) => d,
        _ => return Vec::new(),
    };
    descs
        .into_iter()
        .filter_map(|d| match d.location {
            GeneralName::Uri(v) => Some(v),
            _ => None,
        })
        .collect()
}

/// URIs from CRLDistributionPoints fullNames (uncached reference extractor).
pub fn crldp_uris(cert: &Certificate) -> Vec<RawValue> {
    let parsed = cert
        .tbs
        .extension(&known::crl_distribution_points())
        .and_then(|e| e.parse().ok());
    let dps = match parsed {
        Some(ParsedExtension::CrlDistributionPoints(d)) => d,
        _ => return Vec::new(),
    };
    dps.into_iter()
        .flat_map(|dp| dp.full_names)
        .filter_map(|n| match n {
            GeneralName::Uri(v) => Some(v),
            _ => None,
        })
        .collect()
}

/// `explicitText` values from CertificatePolicies user notices (uncached
/// reference extractor).
pub fn explicit_texts(cert: &Certificate) -> Vec<RawValue> {
    let parsed = cert
        .tbs
        .extension(&known::certificate_policies())
        .and_then(|e| e.parse().ok());
    let policies = match parsed {
        Some(ParsedExtension::CertificatePolicies(p)) => p,
        _ => return Vec::new(),
    };
    policies
        .into_iter()
        .flat_map(|p| p.qualifiers)
        .filter_map(|q| match q {
            PolicyQualifier::UserNotice { explicit_text: Some(t) } => Some(t),
            _ => None,
        })
        .collect()
}

/// Is the text free of the given character class?
pub fn free_of(v: &CachedVal, bad: impl Fn(char) -> bool) -> bool {
    match v.wire_text() {
        Some(t) => !t.chars().any(&bad),
        // Undecodable bytes are not this lint's concern (encoding lints
        // catch them).
        None => true,
    }
}

/// The paper's printable-characters requirement for Subject DNs: every
/// character must be outside C0/C1/DEL.
pub fn has_no_control_chars(v: &CachedVal) -> bool {
    free_of(v, classify::is_control)
}

/// DNSName repertoire: `[a-zA-Z0-9.*-]` only.
pub fn is_dns_repertoire(text: &str) -> bool {
    text.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '*'))
}
