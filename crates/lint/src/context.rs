//! The per-certificate analysis cache: decode once, lint 95 times.
//!
//! Every lint in the catalog used to independently re-walk the DN, re-parse
//! the SAN/IAN/AIA/CRLDP/CertificatePolicies extensions, re-decode attribute
//! bytes, and re-run punycode/NFC over the same DNS labels. [`LintContext`]
//! is built once per certificate and shared by the whole catalog (and by the
//! survey pipeline's classify and field-matrix stages): each derived artifact
//! is computed lazily on first use and memoized for the rest of the
//! certificate's analysis.
//!
//! Memoization is invalidation-free by construction — the context borrows an
//! immutable [`Certificate`] and nothing mutates it during a run, so a cached
//! value can never go stale. The context is intentionally `!Send`/`!Sync`
//! (plain `OnceCell`/`RefCell`/`Rc`, no atomics): the sharded survey pipeline
//! builds one context per certificate *inside* a worker, so cross-thread
//! sharing never happens and the caches stay free of synchronization cost.
//! The registry and its lint closures remain `Send + Sync` as before.
//!
//! Cache-effectiveness counters (`ctx.cache.hit` / `ctx.cache.miss`, labelled
//! by field family: `san`, `dn_text`, `punycode`, `nfc`) are tallied in plain
//! `Cell`s and flushed to the global metrics registry when the context drops,
//! and only when metrics are enabled — the hot path never touches an atomic.

use std::cell::{Cell, OnceCell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use crate::framework::Evidence;
use crate::helpers::Which;
use unicert_asn1::oid::known;
use unicert_asn1::{Oid, Span, StringKind};
use unicert_idna::label::{has_ace_prefix, validate_ldh, ALabelStatus, LabelError};
use unicert_idna::punycode;
use unicert_unicode::nfc;
use unicert_x509::extensions::{parse_extension_value, ParsedExtension, PolicyQualifier};
use unicert_x509::{
    CertSpans, CertView, Certificate, DistinguishedName, GeneralName, RawValue, Validity,
};

/// Hit/miss tally for one cached field family.
#[derive(Debug, Default)]
struct FamilyStats {
    hit: Cell<u64>,
    miss: Cell<u64>,
}

impl FamilyStats {
    fn touch(&self, hit: bool) {
        if hit {
            self.hit.set(self.hit.get().saturating_add(1));
        } else {
            self.miss.set(self.miss.get().saturating_add(1));
        }
    }
}

/// Cache-effectiveness counters for one context, grouped by field family.
///
/// `san` covers the parsed-extension caches (SAN/IAN/AIA/SIA/CRLDP/CP and
/// the value lists derived from them), `dn_text` the decoded DN attribute
/// texts, `punycode` the per-label A-label cache, and `nfc` the per-value
/// NFC verdicts.
#[derive(Debug, Default)]
pub struct CacheStats {
    san: FamilyStats,
    dn_text: FamilyStats,
    punycode: FamilyStats,
    nfc: FamilyStats,
}

impl CacheStats {
    /// `(hit, miss)` for the extension family.
    pub fn san(&self) -> (u64, u64) {
        (self.san.hit.get(), self.san.miss.get())
    }

    /// `(hit, miss)` for the DN text family.
    pub fn dn_text(&self) -> (u64, u64) {
        (self.dn_text.hit.get(), self.dn_text.miss.get())
    }

    /// `(hit, miss)` for the punycode label family.
    pub fn punycode(&self) -> (u64, u64) {
        (self.punycode.hit.get(), self.punycode.miss.get())
    }

    /// `(hit, miss)` for the NFC verdict family.
    pub fn nfc(&self) -> (u64, u64) {
        (self.nfc.hit.get(), self.nfc.miss.get())
    }
}

/// Pre-resolved `ctx.cache.*` counter handles, one pair per family.
struct CacheCounters {
    families: [(
        std::sync::Arc<unicert_telemetry::Counter>,
        std::sync::Arc<unicert_telemetry::Counter>,
    ); 4],
}

fn cache_counters() -> &'static CacheCounters {
    static COUNTERS: std::sync::OnceLock<CacheCounters> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        let registry = unicert_telemetry::global();
        let pair = |family: &str| {
            (registry.counter("ctx.cache.hit", family), registry.counter("ctx.cache.miss", family))
        };
        CacheCounters { families: [pair("san"), pair("dn_text"), pair("punycode"), pair("nfc")] }
    })
}

/// Where a cached value sits in the certificate DER, plus its decoded
/// forms — precomputed when an evidence-mode context is built, shared by
/// reference with every [`CachedVal`] derived from that element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Origin {
    /// Byte range of the value's TLV in the certificate DER.
    pub span: Span,
    /// Structural path, e.g. `tbs.subject.attr[0].value`.
    pub tlv_path: String,
    /// Lossy wire decode of the value.
    pub raw: String,
    /// NFC normalization of `raw`, when it differs.
    pub normalized: Option<String>,
}

/// The origins a lint's check touched since the last `begin_check`.
type TouchLog = Rc<RefCell<Vec<Rc<Origin>>>>;

/// Evidence-mode state: the certificate's span map (when capturable) and
/// the per-check touch log the framework drains into findings.
struct EvidenceState {
    spans: Option<CertSpans>,
    touched: TouchLog,
}

/// A string value with memoized decode results.
///
/// Wraps the original [`RawValue`] (tag + bytes, untouched) and computes the
/// wire decode, the strict decode verdict, and the NFC verdict at most once
/// each, no matter how many lints ask. In evidence mode the value also
/// carries its [`Origin`]; every accessor then logs the touch so the
/// framework can attribute byte ranges to the finding of the lint that
/// asked.
#[derive(Debug)]
pub struct CachedVal {
    raw: RawValue,
    wire: OnceCell<Option<Box<str>>>,
    strict_ok: OnceCell<bool>,
    nfc_ok: OnceCell<bool>,
    stats: Rc<CacheStats>,
    /// `(origin, touch log)` — populated only in evidence mode.
    provenance: Option<(Rc<Origin>, TouchLog)>,
}

impl CachedVal {
    fn new(
        raw: RawValue,
        stats: Rc<CacheStats>,
        provenance: Option<(Rc<Origin>, TouchLog)>,
    ) -> CachedVal {
        CachedVal {
            raw,
            wire: OnceCell::new(),
            strict_ok: OnceCell::new(),
            nfc_ok: OnceCell::new(),
            stats,
            provenance,
        }
    }

    /// Log this value into the current check's touch set (evidence mode
    /// only; a no-op branch on the hot path).
    #[inline]
    fn touch_origin(&self) {
        if let Some((origin, log)) = &self.provenance {
            log.borrow_mut().push(Rc::clone(origin));
        }
    }

    /// This value's byte-range origin, when captured in evidence mode.
    pub fn origin(&self) -> Option<&Origin> {
        self.provenance.as_ref().map(|(o, _)| o.as_ref())
    }

    /// The underlying raw value.
    pub fn raw(&self) -> &RawValue {
        self.touch_origin();
        &self.raw
    }

    /// The declared string kind, if the tag is a string type.
    pub fn kind(&self) -> Option<StringKind> {
        self.touch_origin();
        self.raw.kind()
    }

    /// The content octets, untouched.
    pub fn bytes(&self) -> &[u8] {
        self.touch_origin();
        &self.raw.bytes
    }

    /// Wire-format decode (`RawValue::decode_wire`), memoized. `None` means
    /// the bytes are not decodable under the declared tag.
    pub fn wire_text(&self) -> Option<&str> {
        self.touch_origin();
        self.stats.dn_text.touch(self.wire.get().is_some());
        self.wire
            .get_or_init(|| self.raw.decode_wire().ok().map(String::into_boxed_str))
            .as_deref()
    }

    /// Does the value pass a strict decode (`RawValue::decode_strict`)?
    pub fn strict_ok(&self) -> bool {
        self.touch_origin();
        self.stats.dn_text.touch(self.strict_ok.get().is_some());
        *self.strict_ok.get_or_init(|| self.raw.decode_strict().is_ok())
    }

    /// Is the wire-decoded text NFC-normalized? Undecodable bytes count as
    /// normalized (encoding lints own them), matching the T2 lints.
    pub fn text_is_nfc(&self) -> bool {
        self.touch_origin();
        self.stats.nfc.touch(self.nfc_ok.get().is_some());
        *self.nfc_ok.get_or_init(|| match self.wire_text() {
            Some(t) => nfc::is_nfc(t),
            None => true,
        })
    }
}

/// One DN attribute with its cached value.
#[derive(Debug)]
pub struct DnAttr {
    /// The attribute type.
    pub oid: Oid,
    /// The cached value.
    pub val: CachedVal,
}

/// Everything the label cache knows about one DNS label, from a single
/// `a_to_u` pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelInfo {
    /// The F1 classification (`classify_a_label` equivalent).
    pub status: ALabelStatus,
    /// Does the label decode to a non-NFC U-label? (T2's
    /// `has_non_nfc_label` per-label predicate.)
    pub non_nfc: bool,
    /// Did the full pipeline fail specifically with a round-trip mismatch?
    pub roundtrip_mismatch: bool,
}

impl LabelInfo {
    /// Run the IDNA pipeline once and derive every verdict the catalog asks
    /// about. Matches `classify_a_label` / the T2 lints bit for bit.
    fn compute(label: &str) -> LabelInfo {
        let ldh_ok = validate_ldh(label).is_ok() && has_ace_prefix(label);
        let converted = unicert_idna::label::a_to_u(label);
        let status = if !ldh_ok {
            ALabelStatus::NotALabel
        } else {
            match &converted {
                Ok(_) => ALabelStatus::Valid,
                Err(LabelError::UnconvertibleALabel(_)) | Err(LabelError::EmptyAcePayload) => {
                    ALabelStatus::Unconvertible
                }
                Err(LabelError::RoundTripMismatch) => ALabelStatus::NonCanonical,
                Err(_) => ALabelStatus::DisallowedContent,
            }
        };
        // a_to_u checks NFC before other U-label rules may fire; also catch
        // decodable labels whose U-label isn't NFC but that fail earlier
        // pipeline stages. Lowercasing allocates only when needed.
        let non_nfc = match &converted {
            Err(LabelError::NotNfc) => true,
            _ => match label.get(4..) {
                Some(payload) => match decode_payload_lowercased(payload) {
                    Some(u) => !nfc::is_nfc(&u),
                    None => false,
                },
                None => false,
            },
        };
        let roundtrip_mismatch = matches!(&converted, Err(LabelError::RoundTripMismatch));
        LabelInfo { status, non_nfc, roundtrip_mismatch }
    }
}

/// Punycode-decode an ACE payload, lowercasing first — without allocating
/// an intermediate string when the payload is already lowercase.
fn decode_payload_lowercased(payload: &str) -> Option<String> {
    if payload.bytes().any(|b| b.is_ascii_uppercase()) {
        punycode::decode(&payload.to_ascii_lowercase()).ok()
    } else {
        punycode::decode(payload).ok()
    }
}

/// Where the certificate under analysis lives: the owned model or the
/// zero-copy borrowed view. Every context accessor reads through this, so
/// the whole catalog, the classify stage, and the field matrix run
/// unchanged on either representation.
enum Source<'c> {
    /// The owned [`Certificate`] model (build/encode/evidence paths).
    Owned(&'c Certificate),
    /// The borrowed [`CertView`] (the survey hot path).
    View(&'c CertView<'c>),
}

/// The memoized per-certificate analysis context.
///
/// Built once per certificate ([`LintContext::new`] /
/// [`LintContext::from_view`]) and handed to every lint `check`, to the
/// survey classify stage, and to the field matrix. All accessors are lazy:
/// a certificate with no SAN never pays for SAN parsing, and a lint that
/// never runs never triggers its inputs.
pub struct LintContext<'c> {
    source: Source<'c>,
    /// Owned materialization of a view source, built only if a consumer
    /// insists on `&Certificate` (off the hot path; lints use the typed
    /// accessors instead).
    owned: OnceCell<Box<Certificate>>,
    stats: Rc<CacheStats>,
    /// Parse results parallel to `cert.tbs.extensions` (`None` = malformed
    /// body). Iterating *all* entries preserves duplicate-extension
    /// semantics for the classify stage; the first-matching-OID scan
    /// preserves `TbsCertificate::extension` semantics for the lints.
    parsed_exts: OnceCell<Vec<Option<ParsedExtension>>>,
    subject: OnceCell<Vec<DnAttr>>,
    issuer: OnceCell<Vec<DnAttr>>,
    san_dns: OnceCell<Vec<CachedVal>>,
    san_rfc822: OnceCell<Vec<CachedVal>>,
    san_uri: OnceCell<Vec<CachedVal>>,
    smtp_mailboxes: OnceCell<Vec<CachedVal>>,
    ian_dns: OnceCell<Vec<CachedVal>>,
    ian_strings: OnceCell<Vec<CachedVal>>,
    aia_uris: OnceCell<Vec<CachedVal>>,
    sia_uris: OnceCell<Vec<CachedVal>>,
    crldp_uris: OnceCell<Vec<CachedVal>>,
    explicit_texts: OnceCell<Vec<CachedVal>>,
    cps_values: OnceCell<Vec<CachedVal>>,
    labels: RefCell<HashMap<Box<str>, LabelInfo>>,
    /// Evidence-mode state; `None` on the survey hot path.
    evidence: Option<EvidenceState>,
}

impl<'c> LintContext<'c> {
    /// A fresh (everything-lazy) context for one certificate.
    pub fn new(cert: &'c Certificate) -> LintContext<'c> {
        Self::build(Source::Owned(cert), None)
    }

    /// A fresh context over a zero-copy [`CertView`]: the survey hot path.
    /// Identical analysis results to [`LintContext::new`] on the owned
    /// parse of the same DER; evidence capture is not available here (use
    /// the owned constructor for evidence runs).
    pub fn from_view(view: &'c CertView<'c>) -> LintContext<'c> {
        Self::build(Source::View(view), None)
    }

    /// A context that additionally captures byte-range provenance: the
    /// certificate's span map is walked up front ([`CertSpans::capture`]),
    /// every cached value carries its [`Origin`], and the registry drains
    /// the values each check touched into [`Evidence`] on its findings.
    ///
    /// Strictly off the survey hot path — use [`LintContext::new`] there.
    pub fn with_evidence(cert: &'c Certificate) -> LintContext<'c> {
        let state = EvidenceState {
            spans: CertSpans::capture(&cert.raw).ok(),
            touched: Rc::new(RefCell::new(Vec::new())),
        };
        Self::build(Source::Owned(cert), Some(state))
    }

    fn build(source: Source<'c>, evidence: Option<EvidenceState>) -> LintContext<'c> {
        LintContext {
            source,
            owned: OnceCell::new(),
            stats: Rc::new(CacheStats::default()),
            parsed_exts: OnceCell::new(),
            subject: OnceCell::new(),
            issuer: OnceCell::new(),
            san_dns: OnceCell::new(),
            san_rfc822: OnceCell::new(),
            san_uri: OnceCell::new(),
            smtp_mailboxes: OnceCell::new(),
            ian_dns: OnceCell::new(),
            ian_strings: OnceCell::new(),
            aia_uris: OnceCell::new(),
            sia_uris: OnceCell::new(),
            crldp_uris: OnceCell::new(),
            explicit_texts: OnceCell::new(),
            cps_values: OnceCell::new(),
            labels: RefCell::new(HashMap::new()),
            evidence,
        }
    }

    /// The certificate under analysis, as the owned model. For an owned
    /// source this is free; for a view source the owned tree is
    /// materialized once and cached (off the hot path — prefer the typed
    /// accessors below, which read the view directly).
    pub fn cert(&self) -> &Certificate {
        match self.source {
            Source::Owned(cert) => cert,
            Source::View(view) => self.owned.get_or_init(|| Box::new(view.to_owned())),
        }
    }

    /// Length of the raw certificate DER (whole-certificate span fallback).
    fn raw_len(&self) -> usize {
        match self.source {
            Source::Owned(cert) => cert.raw.len(),
            Source::View(view) => view.raw.len(),
        }
    }

    /// The serial number magnitude.
    pub fn serial(&self) -> &[u8] {
        match self.source {
            Source::Owned(cert) => &cert.tbs.serial,
            Source::View(view) => view.serial,
        }
    }

    /// The validity window.
    pub fn validity(&self) -> &Validity {
        match self.source {
            Source::Owned(cert) => &cert.tbs.validity,
            Source::View(view) => &view.validity,
        }
    }

    /// Index of the first extension carrying `oid`, in wire order — the
    /// extension `TbsCertificate::extension` selects.
    pub fn extension_position(&self, oid: &Oid) -> Option<usize> {
        match self.source {
            Source::Owned(cert) => cert.tbs.extensions.iter().position(|e| &e.oid == oid),
            Source::View(view) => view.extensions.iter().position(|e| &e.oid == oid),
        }
    }

    /// Is an extension with `oid` present?
    pub fn has_extension(&self, oid: &Oid) -> bool {
        self.extension_position(oid).is_some()
    }

    /// The criticality flag of the first extension carrying `oid`, if
    /// present.
    pub fn extension_critical(&self, oid: &Oid) -> Option<bool> {
        let idx = self.extension_position(oid)?;
        match self.source {
            Source::Owned(cert) => cert.tbs.extensions.get(idx).map(|e| e.critical),
            Source::View(view) => view.extensions.get(idx).map(|e| e.critical),
        }
    }

    /// True if the DN has no RDNs (an "empty subject"). Distinct from
    /// having no *attributes*: an RDN with an empty SET still counts.
    pub fn dn_is_empty(&self, which: Which) -> bool {
        match self.source {
            Source::Owned(cert) => match which {
                Which::Subject => cert.tbs.subject.is_empty(),
                Which::Issuer => cert.tbs.issuer.is_empty(),
            },
            Source::View(view) => match which {
                Which::Subject => view.subject.is_empty(),
                Which::Issuer => view.issuer.is_empty(),
            },
        }
    }

    /// Number of attributes of type `oid` in a DN (duplicate detection).
    pub fn count_of(&self, which: Which, oid: &Oid) -> usize {
        self.dn_attrs(which).iter().filter(|a| &a.oid == oid).count()
    }

    /// This context's cache hit/miss tallies (flushed to telemetry on drop).
    pub fn cache_stats(&self) -> &CacheStats {
        &self.stats
    }

    // --- Evidence -------------------------------------------------------

    /// Was this context built with [`LintContext::with_evidence`]?
    pub fn evidence_enabled(&self) -> bool {
        self.evidence.is_some()
    }

    /// The certificate's span map, when evidence mode captured one.
    pub fn cert_spans(&self) -> Option<&CertSpans> {
        self.evidence.as_ref().and_then(|e| e.spans.as_ref())
    }

    /// Clear the touch log before a lint's check runs (framework only).
    pub(crate) fn begin_check(&self) {
        if let Some(ev) = &self.evidence {
            ev.touched.borrow_mut().clear();
        }
    }

    /// Drain the origins the last check touched into [`Evidence`] entries,
    /// deduplicated in touch order. A check that touched nothing trackable
    /// (it read the certificate struct directly) yields one whole-TBS
    /// fallback so every finding still carries an in-bounds span.
    pub(crate) fn drain_evidence(&self, citation: &'static str) -> Vec<Evidence> {
        let Some(ev) = &self.evidence else {
            return Vec::new();
        };
        let mut touched = ev.touched.borrow_mut();
        let mut seen: Vec<*const Origin> = Vec::new();
        let mut out = Vec::new();
        for origin in touched.drain(..) {
            let ptr = Rc::as_ptr(&origin);
            if seen.contains(&ptr) {
                continue;
            }
            seen.push(ptr);
            out.push(Evidence {
                span: origin.span,
                tlv_path: origin.tlv_path.clone(),
                raw: origin.raw.clone(),
                normalized: origin.normalized.clone(),
                citation,
            });
        }
        if out.is_empty() {
            let span = match &ev.spans {
                Some(s) => s.tbs,
                None => Span { offset: 0, len: self.raw_len() },
            };
            out.push(Evidence {
                span,
                tlv_path: "tbs".to_string(),
                raw: String::new(),
                normalized: None,
                citation,
            });
        }
        out
    }

    /// Build an [`Origin`] for a value at `span`, precomputing its decoded
    /// forms (evidence mode only, so the cost is off the hot path).
    fn make_origin(&self, raw: &RawValue, span: Span, tlv_path: String) -> Rc<Origin> {
        let raw_text = raw.display_lossy();
        let normalized = {
            let n = nfc::nfc(&raw_text);
            if n == raw_text {
                None
            } else {
                Some(n)
            }
        };
        Rc::new(Origin { span, tlv_path, raw: raw_text, normalized })
    }

    /// Provenance pair for a value whose origin resolver succeeds, shared
    /// with the context's touch log. `None` when evidence is off.
    fn provenance(
        &self,
        raw: &RawValue,
        resolve: impl FnOnce(&CertSpans) -> Option<(Span, String)>,
    ) -> Option<(Rc<Origin>, TouchLog)> {
        let ev = self.evidence.as_ref()?;
        let (span, path) = match ev.spans.as_ref().and_then(resolve) {
            Some(hit) => hit,
            // Span map unavailable (hostile DER the walker refused):
            // anchor to the whole certificate rather than dropping
            // provenance entirely.
            None => (Span { offset: 0, len: self.raw_len() }, "certificate".to_string()),
        };
        Some((self.make_origin(raw, span, path), Rc::clone(&ev.touched)))
    }

    /// Origin resolver for the `child`-th top-level element inside the
    /// first extension carrying `oid`, falling back to the extension's
    /// value span when the child wasn't individually mapped.
    fn ext_child_resolver(
        &self,
        oid: &Oid,
        child: usize,
    ) -> impl FnOnce(&CertSpans) -> Option<(Span, String)> + '_ {
        let oid = oid.clone();
        move |spans: &CertSpans| {
            let idx = self.extension_position(&oid)?;
            let ext = spans.extension(idx)?;
            match ext.children.get(child) {
                Some(span) => Some((*span, spans.ext_child_path(idx, child))),
                None => Some((ext.value, spans.ext_path(idx))),
            }
        }
    }

    /// Cache a value that came from extension `oid`'s `child`-th element.
    fn cached_ext(&self, raw: RawValue, oid: &Oid, child: usize) -> CachedVal {
        let provenance = self.provenance(&raw, self.ext_child_resolver(oid, child));
        CachedVal::new(raw, Rc::clone(&self.stats), provenance)
    }

    /// Cache the `idx`-th attribute value of a DN.
    fn cached_dn(&self, raw: RawValue, which: Which, idx: usize) -> CachedVal {
        let provenance = self.provenance(&raw, |spans| {
            let (attrs, name) = match which {
                Which::Subject => (&spans.subject_attrs, "subject"),
                Which::Issuer => (&spans.issuer_attrs, "issuer"),
            };
            let span = *attrs.get(idx)?;
            Some((span, CertSpans::dn_attr_path(name, idx)))
        });
        CachedVal::new(raw, Rc::clone(&self.stats), provenance)
    }

    // --- DNs ------------------------------------------------------------

    /// Select a DN as the owned model (materializes a view source —
    /// prefer [`LintContext::dn_attrs`] and the typed DN accessors, which
    /// read either source directly).
    pub fn dn(&self, which: Which) -> &DistinguishedName {
        let cert = self.cert();
        match which {
            Which::Subject => &cert.tbs.subject,
            Which::Issuer => &cert.tbs.issuer,
        }
    }

    /// All attributes of a DN in wire order, with cached values.
    pub fn dn_attrs(&self, which: Which) -> &[DnAttr] {
        let cell = match which {
            Which::Subject => &self.subject,
            Which::Issuer => &self.issuer,
        };
        self.stats.dn_text.touch(cell.get().is_some());
        cell.get_or_init(|| match self.source {
            Source::Owned(cert) => {
                let dn = match which {
                    Which::Subject => &cert.tbs.subject,
                    Which::Issuer => &cert.tbs.issuer,
                };
                dn.attributes()
                    .enumerate()
                    .map(|(i, a)| DnAttr {
                        oid: a.oid.clone(),
                        val: self.cached_dn(a.value.clone(), which, i),
                    })
                    .collect()
            }
            Source::View(view) => {
                let dn = match which {
                    Which::Subject => &view.subject,
                    Which::Issuer => &view.issuer,
                };
                dn.attributes()
                    .enumerate()
                    .map(|(i, a)| DnAttr {
                        oid: a.oid.clone(),
                        val: self.cached_dn(a.raw_value(), which, i),
                    })
                    .collect()
            }
        })
    }

    /// Cached values of one attribute type, in wire order.
    pub fn attr_vals(&self, which: Which, oid: &Oid) -> impl Iterator<Item = &CachedVal> {
        let oid = oid.clone();
        self.dn_attrs(which).iter().filter(move |a| a.oid == oid).map(|a| &a.val)
    }

    // --- Extensions -----------------------------------------------------

    /// Parse results for every extension, parallel to
    /// `cert.tbs.extensions`; `None` marks a malformed body.
    pub fn parsed_extensions(&self) -> &[Option<ParsedExtension>] {
        self.stats.san.touch(self.parsed_exts.get().is_some());
        self.parsed_exts.get_or_init(|| match self.source {
            Source::Owned(cert) => cert.tbs.extensions.iter().map(|e| e.parse().ok()).collect(),
            Source::View(view) => view
                .extensions
                .iter()
                .map(|e| parse_extension_value(&e.oid, e.value).ok())
                .collect(),
        })
    }

    /// The parse result of the first extension carrying `oid` — the same
    /// extension `TbsCertificate::extension` selects.
    fn first_parsed(&self, oid: &Oid) -> Option<&ParsedExtension> {
        let index = self.extension_position(oid)?;
        self.parsed_extensions().get(index)?.as_ref()
    }

    /// The SAN GeneralNames, or empty (absent or malformed SAN).
    pub fn san(&self) -> &[GeneralName] {
        match self.first_parsed(&known::subject_alt_name()) {
            Some(ParsedExtension::SubjectAltName(names)) => names,
            _ => &[],
        }
    }

    /// The IAN GeneralNames, or empty.
    pub fn ian(&self) -> &[GeneralName] {
        match self.first_parsed(&known::issuer_alt_name()) {
            Some(ParsedExtension::IssuerAltName(names)) => names,
            _ => &[],
        }
    }

    fn gn_list<'s>(
        &'s self,
        cell: &'s OnceCell<Vec<CachedVal>>,
        ext_oid: Oid,
        names: impl Fn(&Self) -> &[GeneralName],
        pick: impl Fn(&GeneralName) -> Option<RawValue>,
    ) -> &'s [CachedVal] {
        self.stats.san.touch(cell.get().is_some());
        cell.get_or_init(|| {
            // Enumerate *before* the pick filter: a GeneralName's position
            // in the extension SEQUENCE is its child span index.
            names(self)
                .iter()
                .enumerate()
                .filter_map(|(i, n)| pick(n).map(|v| self.cached_ext(v, &ext_oid, i)))
                .collect()
        })
    }

    /// SAN DNSName values.
    pub fn san_dns(&self) -> &[CachedVal] {
        self.gn_list(&self.san_dns, known::subject_alt_name(), Self::san, |n| match n {
            GeneralName::DnsName(v) => Some(v.clone()),
            _ => None,
        })
    }

    /// SAN RFC822Name values.
    pub fn san_rfc822(&self) -> &[CachedVal] {
        self.gn_list(&self.san_rfc822, known::subject_alt_name(), Self::san, |n| match n {
            GeneralName::Rfc822Name(v) => Some(v.clone()),
            _ => None,
        })
    }

    /// SAN URI values.
    pub fn san_uri(&self) -> &[CachedVal] {
        self.gn_list(&self.san_uri, known::subject_alt_name(), Self::san, |n| match n {
            GeneralName::Uri(v) => Some(v.clone()),
            _ => None,
        })
    }

    /// SmtpUTF8Mailbox inner values from SAN OtherNames (RFC 9598): the
    /// UTF8String TLV unwrapped from its `[0] EXPLICIT` envelope.
    pub fn smtp_mailboxes(&self) -> &[CachedVal] {
        self.gn_list(&self.smtp_mailboxes, known::subject_alt_name(), Self::san, |n| match n {
            GeneralName::OtherName { type_id, value }
                if *type_id == known::smtp_utf8_mailbox() =>
            {
                let mut r = unicert_asn1::Reader::new(value);
                let outer = r.read_tlv().ok()?;
                let mut c = outer.contents();
                let inner = c.read_tlv().ok()?;
                Some(RawValue { tag_number: inner.tag.number, bytes: inner.value.to_vec() })
            }
            _ => None,
        })
    }

    /// IAN DNSName values.
    pub fn ian_dns(&self) -> &[CachedVal] {
        self.gn_list(&self.ian_dns, known::issuer_alt_name(), Self::ian, |n| match n {
            GeneralName::DnsName(v) => Some(v.clone()),
            _ => None,
        })
    }

    /// All IAN string-bearing values (DNSName, RFC822Name, URI).
    pub fn ian_strings(&self) -> &[CachedVal] {
        self.gn_list(&self.ian_strings, known::issuer_alt_name(), Self::ian, |n| match n {
            GeneralName::DnsName(v) | GeneralName::Rfc822Name(v) | GeneralName::Uri(v) => {
                Some(v.clone())
            }
            _ => None,
        })
    }

    fn access_uri_list<'s>(
        &'s self,
        cell: &'s OnceCell<Vec<CachedVal>>,
        oid: Oid,
    ) -> &'s [CachedVal] {
        self.stats.san.touch(cell.get().is_some());
        cell.get_or_init(|| {
            let descs = match self.first_parsed(&oid) {
                Some(ParsedExtension::AuthorityInfoAccess(d))
                | Some(ParsedExtension::SubjectInfoAccess(d)) => d.as_slice(),
                _ => &[],
            };
            descs
                .iter()
                .enumerate()
                .filter_map(|(i, d)| match &d.location {
                    GeneralName::Uri(v) => Some(self.cached_ext(v.clone(), &oid, i)),
                    _ => None,
                })
                .collect()
        })
    }

    /// AuthorityInfoAccess URIs.
    pub fn aia_uris(&self) -> &[CachedVal] {
        self.access_uri_list(&self.aia_uris, known::authority_info_access())
    }

    /// SubjectInfoAccess URIs.
    pub fn sia_uris(&self) -> &[CachedVal] {
        self.access_uri_list(&self.sia_uris, known::subject_info_access())
    }

    /// CRLDistributionPoints fullName URIs.
    pub fn crldp_uris(&self) -> &[CachedVal] {
        self.stats.san.touch(self.crldp_uris.get().is_some());
        self.crldp_uris.get_or_init(|| {
            let dps = match self.first_parsed(&known::crl_distribution_points()) {
                Some(ParsedExtension::CrlDistributionPoints(d)) => d.as_slice(),
                _ => &[],
            };
            let oid = known::crl_distribution_points();
            dps.iter()
                .enumerate()
                .flat_map(|(i, dp)| dp.full_names.iter().map(move |n| (i, n)))
                .filter_map(|(i, n)| match n {
                    // The DistributionPoint's index is the child span; the
                    // URI sits inside it (fullName isn't mapped deeper).
                    GeneralName::Uri(v) => Some(self.cached_ext(v.clone(), &oid, i)),
                    _ => None,
                })
                .collect()
        })
    }

    /// CertificatePolicies userNotice `explicitText` values.
    pub fn explicit_texts(&self) -> &[CachedVal] {
        self.stats.san.touch(self.explicit_texts.get().is_some());
        self.explicit_texts.get_or_init(|| {
            let policies = match self.first_parsed(&known::certificate_policies()) {
                Some(ParsedExtension::CertificatePolicies(p)) => p.as_slice(),
                _ => &[],
            };
            let oid = known::certificate_policies();
            policies
                .iter()
                .enumerate()
                .flat_map(|(i, p)| p.qualifiers.iter().map(move |q| (i, q)))
                .filter_map(|(i, q)| match q {
                    PolicyQualifier::UserNotice { explicit_text: Some(t) } => {
                        Some(self.cached_ext(t.clone(), &oid, i))
                    }
                    _ => None,
                })
                .collect()
        })
    }

    /// CertificatePolicies CPS qualifier values.
    pub fn cps_values(&self) -> &[CachedVal] {
        self.stats.san.touch(self.cps_values.get().is_some());
        self.cps_values.get_or_init(|| {
            let policies = match self.first_parsed(&known::certificate_policies()) {
                Some(ParsedExtension::CertificatePolicies(p)) => p.as_slice(),
                _ => &[],
            };
            let oid = known::certificate_policies();
            policies
                .iter()
                .enumerate()
                .flat_map(|(i, p)| p.qualifiers.iter().map(move |q| (i, q)))
                .filter_map(|(i, q)| match q {
                    PolicyQualifier::Cps(v) => Some(self.cached_ext(v.clone(), &oid, i)),
                    _ => None,
                })
                .collect()
        })
    }

    // --- DNS labels -----------------------------------------------------

    /// Everything the IDNA pipeline says about one DNS label, cached across
    /// the whole analysis (the same label typically appears in the CN, the
    /// SAN, and the classify stage).
    pub fn label_info(&self, label: &str) -> LabelInfo {
        if let Some(&info) = self.labels.borrow().get(label) {
            self.stats.punycode.touch(true);
            return info;
        }
        self.stats.punycode.touch(false);
        let info = LabelInfo::compute(label);
        self.labels.borrow_mut().insert(Box::from(label), info);
        info
    }

    /// Does any ACE-prefixed label of this DNSName text satisfy `pred`?
    pub fn any_ace_label(&self, text: &str, pred: impl Fn(LabelInfo) -> bool) -> bool {
        text.split('.').filter(|l| has_ace_prefix(l)).any(|l| pred(self.label_info(l)))
    }
}

impl std::fmt::Debug for LintContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LintContext")
            .field("serial", &self.serial())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Drop for LintContext<'_> {
    fn drop(&mut self) {
        if !unicert_telemetry::metrics_enabled() {
            return;
        }
        let counters = cache_counters();
        let families = [
            (&self.stats.san, &counters.families[0]),
            (&self.stats.dn_text, &counters.families[1]),
            (&self.stats.punycode, &counters.families[2]),
            (&self.stats.nfc, &counters.families[3]),
        ];
        for (stats, (hit, miss)) in families {
            if stats.hit.get() > 0 {
                hit.add(stats.hit.get());
            }
            if stats.miss.get() > 0 {
                miss.add(stats.miss.get());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicert_asn1::DateTime;
    use unicert_x509::{CertificateBuilder, SimKey};

    fn builder() -> CertificateBuilder {
        CertificateBuilder::new().validity_days(DateTime::date(2024, 6, 1).unwrap(), 90)
    }

    #[test]
    fn san_dns_matches_direct_extraction() {
        let cert = builder()
            .subject_cn("a.example")
            .add_dns_san("a.example")
            .add_dns_san("xn--mnchen-3ya.de")
            .build_signed(&SimKey::from_seed("ctx"));
        let ctx = LintContext::new(&cert);
        let direct: Vec<String> = cert.tbs.san_dns_names();
        let cached: Vec<String> =
            ctx.san_dns().iter().map(|v| v.raw().display_lossy()).collect();
        assert_eq!(direct, cached);
        // Second access must be a hit, not a recomputation.
        let (hits_before, misses_before) = ctx.cache_stats().san();
        let _ = ctx.san_dns();
        let (hits_after, misses_after) = ctx.cache_stats().san();
        assert_eq!(hits_after, hits_before + 1);
        assert_eq!(misses_after, misses_before);
    }

    #[test]
    fn wire_text_memoizes() {
        let cert = builder().subject_cn("Müller").build_signed(&SimKey::from_seed("ctx"));
        let ctx = LintContext::new(&cert);
        let vals: Vec<_> = ctx.attr_vals(Which::Subject, &known::common_name()).collect();
        assert_eq!(vals.len(), 1);
        let v = vals[0];
        assert_eq!(v.wire_text(), Some("Müller"));
        assert_eq!(v.wire_text(), Some("Müller"));
        assert!(v.strict_ok());
        assert!(v.text_is_nfc());
        let (_, misses) = ctx.cache_stats().nfc();
        assert_eq!(misses, 1);
    }

    #[test]
    fn label_info_matches_classify_a_label() {
        let cert = builder().build_signed(&SimKey::from_seed("ctx"));
        let ctx = LintContext::new(&cert);
        for label in [
            "xn--mnchen-3ya",
            "xn--99999999999",
            "xn--www-hn0a",
            "xn---foo",
            "plain",
            "xn--",
            "XN--MNCHEN-3YA",
        ] {
            assert_eq!(
                ctx.label_info(label).status,
                unicert_idna::label::classify_a_label(label),
                "{label}"
            );
        }
        // Cached on second ask.
        let (hits, _) = ctx.cache_stats().punycode();
        ctx.label_info("xn--mnchen-3ya");
        let (hits_after, _) = ctx.cache_stats().punycode();
        assert_eq!(hits_after, hits + 1);
    }

    #[test]
    fn label_info_non_nfc_and_roundtrip_match_t2_logic() {
        let cert = builder().build_signed(&SimKey::from_seed("ctx"));
        let ctx = LintContext::new(&cert);
        let decomposed = "mu\u{308}nchen";
        let a = format!("xn--{}", punycode::encode(decomposed).unwrap());
        assert!(ctx.label_info(&a).non_nfc);
        assert!(!ctx.label_info("xn--mnchen-3ya").non_nfc);
        for label in ["xn---foo", "xn--mnchen-3ya", "xn--tda"] {
            assert_eq!(
                ctx.label_info(label).roundtrip_mismatch,
                matches!(
                    unicert_idna::label::a_to_u(label),
                    Err(LabelError::RoundTripMismatch)
                ),
                "{label}"
            );
        }
    }

    #[test]
    fn evidence_mode_attaches_in_bounds_spans() {
        let decomposed = "mu\u{308}nchen"; // non-NFC CN text
        let cert = builder()
            .subject_cn(decomposed)
            .add_dns_san("a.example")
            .build_signed(&SimKey::from_seed("ctx-ev"));
        let registry = crate::catalog::default_registry();
        let opts = crate::framework::RunOptions { evidence: true, ..Default::default() };
        let report = registry.run(&cert, opts);
        assert!(report.is_noncompliant());
        for f in &report.findings {
            assert!(!f.evidence.is_empty(), "{} has no evidence", f.lint);
            for e in &f.evidence {
                assert!(e.span.len > 0, "{} empty span", f.lint);
                assert!(e.span.end() <= cert.raw.len(), "{} span out of bounds", f.lint);
                assert!(!e.tlv_path.is_empty());
            }
        }
        // The NFC lints read the CN through the cache, so at least one
        // finding must anchor to the subject attribute value, carrying
        // both the wire text and its normalization.
        let cn_ev = report
            .findings
            .iter()
            .flat_map(|f| f.evidence.iter())
            .find(|e| e.tlv_path.contains("subject.attr"))
            .expect("no finding anchored to the subject CN");
        assert_eq!(cn_ev.raw, decomposed);
        assert_eq!(cn_ev.normalized.as_deref(), Some("münchen"));
    }

    #[test]
    fn evidence_off_leaves_findings_bare() {
        let cert = builder()
            .subject_cn("mu\u{308}nchen")
            .build_signed(&SimKey::from_seed("ctx-ev"));
        let registry = crate::catalog::default_registry();
        let report = registry.run(&cert, crate::framework::RunOptions::default());
        assert!(report.is_noncompliant());
        assert!(report.findings.iter().all(|f| f.evidence.is_empty()));
    }

    #[test]
    fn absent_extensions_yield_empty_lists() {
        let cert = builder().subject_cn("no-ext.example").build_signed(&SimKey::from_seed("ctx"));
        let ctx = LintContext::new(&cert);
        assert!(ctx.san_rfc822().is_empty());
        assert!(ctx.ian_strings().is_empty());
        assert!(ctx.aia_uris().is_empty());
        assert!(ctx.sia_uris().is_empty());
        assert!(ctx.crldp_uris().is_empty());
        assert!(ctx.explicit_texts().is_empty());
        assert!(ctx.cps_values().is_empty());
        assert!(ctx.smtp_mailboxes().is_empty());
    }
}
