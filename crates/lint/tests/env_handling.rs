//! Environment-variable contract of the execution knobs.
//!
//! Two documented layers (see `RunOptions` docs):
//!
//! * **Strict** — `RunOptions::validate_env` is what every binary calls on
//!   startup; a malformed `UNICERT_*` variable must produce an error that
//!   names it (the binary then exits 2).
//! * **Lenient** — the `effective_*` resolvers embed in library code and
//!   must never fail: malformed values fall back along the documented
//!   chain (explicit option → env → default).
//!
//! Everything lives in ONE `#[test]` because the process environment is
//! global and the test harness runs tests on parallel threads.

use unicert_lint::profiles::DEFAULT_PROFILE;
use unicert_lint::RunOptions;

fn clear() {
    for name in ["UNICERT_THREADS", "UNICERT_SHARD_SIZE", "UNICERT_PROFILE"] {
        std::env::remove_var(name);
    }
}

#[test]
fn strict_validation_and_lenient_fallbacks() {
    clear();
    let opts = RunOptions::default();

    // Unset environment: valid, and every resolver lands on its default.
    assert_eq!(RunOptions::validate_env(), Ok(()));
    assert_eq!(opts.effective_shard_size(), RunOptions::DEFAULT_SHARD_SIZE);
    assert_eq!(opts.effective_profile(), DEFAULT_PROFILE);
    assert!(opts.effective_threads() >= 1);

    // Well-formed values: valid, and resolvers honor them.
    std::env::set_var("UNICERT_THREADS", "3");
    std::env::set_var("UNICERT_SHARD_SIZE", "77");
    std::env::set_var("UNICERT_PROFILE", DEFAULT_PROFILE);
    assert_eq!(RunOptions::validate_env(), Ok(()));
    assert_eq!(opts.effective_threads(), 3);
    assert_eq!(opts.effective_shard_size(), 77);
    assert_eq!(opts.effective_profile(), DEFAULT_PROFILE);

    // Explicit options always beat the environment.
    let explicit = RunOptions {
        threads: Some(5),
        shard_size: 11,
        profile: Some(DEFAULT_PROFILE),
        ..RunOptions::default()
    };
    assert_eq!(explicit.effective_threads(), 5);
    assert_eq!(explicit.effective_shard_size(), 11);

    // Malformed integers: strict check names each offending variable;
    // lenient resolvers fall through to the defaults.
    for bad in ["fuor", "-1", "0", "1.5", ""] {
        std::env::set_var("UNICERT_THREADS", bad);
        std::env::set_var("UNICERT_SHARD_SIZE", bad);
        std::env::remove_var("UNICERT_PROFILE");
        let err = RunOptions::validate_env()
            .expect_err(&format!("value {bad:?} must fail strict validation"));
        assert!(err.contains("UNICERT_THREADS"), "{bad:?}: {err}");
        assert!(err.contains("UNICERT_SHARD_SIZE"), "{bad:?}: {err}");
        // Lenient rule: unparsable → fall through; 0 → clamped to 1.
        let threads = opts.effective_threads();
        assert!(threads >= 1, "threads resolved to {threads} under {bad:?}");
        let expected_shard =
            if bad == "0" { 1 } else { RunOptions::DEFAULT_SHARD_SIZE };
        assert_eq!(opts.effective_shard_size(), expected_shard, "under {bad:?}");
    }

    // Unknown profile: strict check lists the registered names; lenient
    // resolver falls back to the default profile.
    clear();
    std::env::set_var("UNICERT_PROFILE", "no-such-profile");
    let err = RunOptions::validate_env().expect_err("unknown profile must fail");
    assert!(err.contains("UNICERT_PROFILE"), "{err}");
    assert!(err.contains(DEFAULT_PROFILE), "error must list registered profiles: {err}");
    assert_eq!(opts.effective_profile(), DEFAULT_PROFILE);
    // ... even when asked for explicitly.
    let unknown = RunOptions { profile: Some("also-missing"), ..RunOptions::default() };
    assert_eq!(unknown.effective_profile(), DEFAULT_PROFILE);

    // One bad variable among good ones: the error names only the bad one.
    clear();
    std::env::set_var("UNICERT_THREADS", "2");
    std::env::set_var("UNICERT_SHARD_SIZE", "abc");
    let err = RunOptions::validate_env().expect_err("one bad variable must fail");
    assert!(!err.contains("UNICERT_THREADS"), "{err}");
    assert!(err.contains("UNICERT_SHARD_SIZE"), "{err}");

    clear();
    assert_eq!(RunOptions::validate_env(), Ok(()));
}
