//! Property tests: the linter never panics, and behaves monotonically with
//! respect to effective-date gating.

use proptest::prelude::*;
use unicert_asn1::oid::known;
use unicert_asn1::{DateTime, StringKind};
use unicert_lint::{default_registry, RunOptions};
use unicert_x509::{Certificate, CertificateBuilder, SimKey};

proptest! {
    /// The full registry runs without panicking on certificates carrying
    /// arbitrary bytes in subject attributes and SAN entries.
    #[test]
    fn registry_never_panics(
        cn_bytes in proptest::collection::vec(any::<u8>(), 0..40),
        org_bytes in proptest::collection::vec(any::<u8>(), 0..40),
        dns in "[ -~]{0,40}",
        kind in proptest::sample::select(vec![
            StringKind::Utf8, StringKind::Printable, StringKind::Ia5,
            StringKind::Bmp, StringKind::Teletex, StringKind::Numeric,
        ]),
    ) {
        let cert = CertificateBuilder::new()
            .subject_attr_raw(known::common_name(), kind, &cn_bytes)
            .subject_attr_raw(known::organization_name(), StringKind::Utf8, &org_bytes)
            .add_dns_san(&dns)
            .validity_days(DateTime::date(2024, 3, 1).unwrap(), 90)
            .build_signed(&SimKey::from_seed("prop-ca"));
        let reg = default_registry();
        let _ = reg.run(&cert, RunOptions::default());
        let _ = reg.run(&cert, RunOptions::ungated());
    }

    /// Date gating can only remove findings, never add them.
    #[test]
    fn gating_is_monotone(year in 1995i32..2026, bad in any::<bool>()) {
        let mut b = CertificateBuilder::new()
            .validity_days(DateTime::date(year, 6, 1).unwrap(), 365);
        if bad {
            b = b.subject_attr_raw(known::common_name(), StringKind::Printable, b"x\x00y@");
        } else {
            b = b.subject_cn("fine.example").add_dns_san("fine.example");
        }
        let cert = b.build_signed(&SimKey::from_seed("ca"));
        let reg = default_registry();
        let gated = reg.run(&cert, RunOptions::default());
        let ungated = reg.run(&cert, RunOptions::ungated());
        prop_assert!(gated.findings.len() <= ungated.findings.len());
        for f in &gated.findings {
            prop_assert!(ungated.findings.contains(f));
        }
    }

    /// The linter never panics on parse-able mutations of a valid cert.
    #[test]
    fn lint_survives_cert_mutation(pos_seed in any::<usize>(), byte in any::<u8>()) {
        let cert = CertificateBuilder::new()
            .subject_cn("m.example")
            .add_dns_san("m.example")
            .validity_days(DateTime::date(2024, 3, 1).unwrap(), 90)
            .build_signed(&SimKey::from_seed("ca"));
        let mut der = cert.raw.clone();
        let pos = pos_seed % der.len();
        der[pos] = byte;
        if let Ok(mutated) = Certificate::parse_der(&der) {
            let reg = default_registry();
            let _ = reg.run(&mutated, RunOptions::default());
        }
    }
}
