//! Exhaustive lint coverage: every one of the 95 catalog lints has a
//! certificate construction that makes it fire. This both proves no lint
//! is dead code and documents, per lint, a minimal violating certificate.

use std::collections::BTreeMap;
use unicert_asn1::oid::known;
use unicert_asn1::{DateTime, Oid, StringKind, Tag, Writer};
use unicert_lint::{default_registry, RunOptions};
use unicert_x509::extensions::{
    authority_info_access, certificate_policies, crl_distribution_points, issuer_alt_name,
    subject_info_access, AccessDescription, PolicyInformation, PolicyQualifier,
};
use unicert_x509::{
    AttributeTypeAndValue, Certificate, CertificateBuilder, DistinguishedName, GeneralName,
    RawValue, Rdn, SimKey, Validity,
};

fn base() -> CertificateBuilder {
    // Issued after every source's effective date (RFC 9598: 2024-06).
    CertificateBuilder::new().validity_days(DateTime::date(2024, 7, 1).unwrap(), 90)
}

fn sign(b: CertificateBuilder) -> Certificate {
    b.build_signed(&SimKey::from_seed("coverage-ca"))
}

fn attr(oid: Oid, kind: StringKind, text: &str) -> CertificateBuilder {
    base().subject_attr(oid, kind, text)
}

fn raw_attr(oid: Oid, kind: StringKind, bytes: &[u8]) -> CertificateBuilder {
    base().subject_attr_raw(oid, kind, bytes)
}

fn issuer_with(oid: Oid, kind: StringKind, text: &str) -> CertificateBuilder {
    base().issuer(DistinguishedName::from_attributes(&[(oid, kind, text)]))
}

fn policies_text(kind: StringKind, text: &str) -> CertificateBuilder {
    base().add_extension(certificate_policies(&[PolicyInformation {
        policy_id: known::any_policy(),
        qualifiers: vec![PolicyQualifier::UserNotice {
            explicit_text: Some(RawValue::from_text(kind, text)),
        }],
    }]))
}

fn smtp_mailbox(kind: StringKind, text: &str) -> CertificateBuilder {
    let mut inner = Writer::new();
    inner.write_constructed(Tag::context_constructed(0), |w| {
        w.write_string(kind, text);
    });
    base().add_san(GeneralName::OtherName {
        type_id: known::smtp_utf8_mailbox(),
        value: inner.into_bytes(),
    })
}

fn odd_tag_cn() -> CertificateBuilder {
    base().subject(DistinguishedName {
        rdns: vec![Rdn {
            attributes: vec![AttributeTypeAndValue {
                oid: known::common_name(),
                // OCTET STRING: not a character string type at all.
                value: RawValue { tag_number: 4, bytes: b"octets".to_vec() },
            }],
        }],
    })
}

/// `(lint_name, violating certificate)` for every catalog lint.
fn violations() -> Vec<(&'static str, Certificate)> {
    let dn_qualifier = Oid::from_arcs(&[2, 5, 4, 46]).unwrap();
    vec![
        // --- T1: Invalid Character ---------------------------------------
        ("e_rfc_dns_idn_a2u_unpermitted_unichar",
         sign(base().add_dns_san("xn--www-hn0a.example.com"))),
        ("e_rfc_subject_dn_not_printable_characters",
         sign(raw_attr(known::organization_name(), StringKind::Utf8, b"A\x1BB"))),
        ("e_rfc_subject_printable_string_badalpha",
         sign(raw_attr(known::organization_name(), StringKind::Printable, b"a@b"))),
        ("w_community_subject_dn_trailing_whitespace",
         sign(attr(known::organization_name(), StringKind::Utf8, "Acme "))),
        ("w_community_subject_dn_leading_whitespace",
         sign(attr(known::organization_name(), StringKind::Utf8, " Acme"))),
        ("e_rfc_dns_idn_malformed_unicode",
         sign(base().add_dns_san("xn--99999999999.example.com"))),
        ("e_cab_dns_bad_character_in_label",
         sign(base().add_dns_san("bad_label.example.com"))),
        ("e_ext_san_dns_contain_unpermitted_unichar",
         sign(base().add_san(GeneralName::DnsName(RawValue::from_raw(
             StringKind::Ia5, "münchen.de".as_bytes()))))),
        ("e_subject_dn_nul_byte",
         sign(raw_attr(known::organization_name(), StringKind::Utf8, b"A\x00B"))),
        ("e_issuer_dn_not_printable_characters",
         sign(base().issuer(DistinguishedName {
             rdns: vec![Rdn { attributes: vec![AttributeTypeAndValue {
                 oid: known::organization_name(),
                 value: RawValue::from_raw(StringKind::Utf8, b"CA\x01"),
             }] }],
         }))),
        ("e_ext_san_rfc822_invalid_characters",
         sign(base().add_san(GeneralName::Rfc822Name(RawValue::from_raw(
             StringKind::Ia5, b"a\x01b@example.com"))))),
        ("e_ext_san_uri_invalid_characters",
         sign(base().add_san(GeneralName::Uri(RawValue::from_raw(
             StringKind::Ia5, b"https://a b.example"))))),
        ("e_subject_dn_bidi_controls",
         sign(attr(known::organization_name(), StringKind::Utf8, "A\u{202E}B\u{202C}"))),
        ("e_subject_dn_zero_width_characters",
         sign(attr(known::organization_name(), StringKind::Utf8, "A\u{200B}B"))),
        ("e_ext_ian_dns_invalid_characters",
         sign(base().add_extension(issuer_alt_name(&[GeneralName::dns("bad_label.example")])))),
        ("e_utf8string_disallowed_control_codes",
         sign(raw_attr(known::organization_name(), StringKind::Utf8, b"A\x02B"))),
        ("w_subject_dn_nonstandard_whitespace",
         sign(attr(known::organization_name(), StringKind::Utf8, "Peddy\u{A0}Shield"))),
        ("e_ext_crldp_uri_control_characters",
         sign(base().add_extension(crl_distribution_points(&[vec![GeneralName::Uri(
             RawValue::from_raw(StringKind::Ia5, b"http://ssl\x01test.com/c.crl"))]])))),
        ("e_numeric_string_invalid_character",
         sign(raw_attr(known::serial_number(), StringKind::Numeric, b"12a"))),
        ("e_ia5string_out_of_range",
         sign(raw_attr(known::domain_component(), StringKind::Ia5, &[b'a', 0x80]))),
        ("w_teletex_replacement_character",
         sign(raw_attr(known::organization_name(), StringKind::Teletex,
             &[b'S', b't', 0xEF, 0xBF, 0xBD, b'r', b'i']))),
        ("e_visible_string_control_characters",
         sign(raw_attr(known::organization_name(), StringKind::Visible, b"a\x0Ab"))),
        // --- T2: Bad Normalization ----------------------------------------
        ("e_rfc_dns_idn_u_label_not_nfc", {
            let decomposed = "mu\u{308}nchen";
            let a = format!("xn--{}", unicert_idna::punycode::encode(decomposed).unwrap());
            sign(base().add_dns_san(&format!("{a}.de")))
        }),
        ("w_subject_utf8_not_nfc",
         sign(attr(known::common_name(), StringKind::Utf8, "I\u{302}le-de-France"))),
        ("e_rfc_dns_idn_punycode_roundtrip_mismatch",
         sign(base().add_dns_san("xn---foo.example"))),
        ("w_smtp_utf8_mailbox_not_nfc",
         sign(smtp_mailbox(StringKind::Utf8, "mu\u{308}ller@example.com"))),
        // --- T3a: Illegal Format -------------------------------------------
        ("e_rfc_ext_cp_explicit_text_too_long",
         sign(policies_text(StringKind::Utf8, &"x".repeat(201)))),
        ("e_subject_country_not_two_letters",
         sign(attr(known::country_name(), StringKind::Printable, "Germany"))),
        ("e_subject_common_name_max_length",
         sign(attr(known::common_name(), StringKind::Utf8, &"c".repeat(65)))),
        ("e_subject_organization_name_max_length",
         sign(attr(known::organization_name(), StringKind::Utf8, &"o".repeat(65)))),
        ("e_subject_locality_max_length",
         sign(attr(known::locality_name(), StringKind::Utf8, &"l".repeat(129)))),
        ("e_dns_label_too_long",
         sign(base().add_dns_san(&format!("{}.example.com", "a".repeat(64))))),
        ("e_dns_name_too_long", {
            let long: String = "abcdefghij.".repeat(25) + "example.com";
            sign(base().add_dns_san(&long))
        }),
        ("e_dns_label_bad_hyphen_placement",
         sign(base().add_dns_san("-abc.example.com"))),
        ("e_serial_number_longer_than_20_octets",
         sign(base().serial(&[0x55; 21]))),
        ("e_serial_number_zero",
         sign(base().serial(&[0x00]))),
        ("e_validity_wrong_time_encoding", {
            // 2024 dates carried as GeneralizedTime: wrong era encoding.
            let v = Validity {
                not_before: DateTime::date(2024, 7, 1).unwrap(),
                not_after: DateTime::date(2024, 10, 1).unwrap(),
                not_before_kind: unicert_asn1::TimeKind::Generalized,
                not_after_kind: unicert_asn1::TimeKind::Generalized,
            };
            sign(CertificateBuilder::new().validity(v))
        }),
        ("e_subject_empty_attribute_value",
         sign(attr(known::organization_name(), StringKind::Utf8, ""))),
        ("e_rfc_dns_empty_label",
         sign(base().add_dns_san("a..example.com"))),
        ("e_country_code_lowercase",
         sign(attr(known::country_name(), StringKind::Printable, "de"))),
        ("e_san_wildcard_not_leftmost",
         sign(base().add_dns_san("a.*.example.com"))),
        ("e_ext_san_rfc822_invalid_format",
         sign(base().add_san(GeneralName::email("nobody")))),
        ("e_ext_san_uri_missing_scheme",
         sign(base().add_san(GeneralName::uri("//no-scheme/p")))),
        // --- T3b: Invalid Encoding -----------------------------------------
        ("w_rfc_ext_cp_explicit_text_not_utf8",
         sign(policies_text(StringKind::Visible, "Notice"))),
        ("e_rfc_ext_cp_explicit_text_ia5",
         sign(policies_text(StringKind::Ia5, "Notice"))),
        ("e_subject_dn_serial_number_not_printable",
         sign(attr(known::serial_number(), StringKind::Utf8, "S-1"))),
        ("e_rfc_subject_country_not_printable",
         sign(attr(known::country_name(), StringKind::Utf8, "DE"))),
        ("e_rfc_issuer_country_not_printable",
         sign(issuer_with(known::country_name(), StringKind::Utf8, "DE"))),
        ("e_subject_email_address_not_ia5",
         sign(attr(known::email_address(), StringKind::Utf8, "a@b.example"))),
        ("e_subject_domain_component_not_ia5",
         sign(attr(known::domain_component(), StringKind::Utf8, "example"))),
        ("w_subject_dn_uses_teletex_string",
         sign(attr(known::organization_name(), StringKind::Teletex, "Org"))),
        ("w_subject_dn_uses_universal_string",
         sign(attr(known::organization_name(), StringKind::Universal, "Org"))),
        ("w_subject_dn_uses_bmp_string",
         sign(attr(known::organization_name(), StringKind::Bmp, "Org"))),
        ("e_subject_dn_qualifier_not_printable",
         sign(attr(dn_qualifier.clone(), StringKind::Utf8, "q"))),
        ("e_subject_organization_not_printable_or_utf8",
         sign(attr(known::organization_name(), StringKind::Bmp, "Org"))),
        ("e_subject_common_name_not_printable_or_utf8",
         sign(attr(known::common_name(), StringKind::Bmp, "cn.example"))),
        ("e_subject_locality_not_printable_or_utf8",
         sign(attr(known::locality_name(), StringKind::Teletex, "Zürich"))),
        ("e_subject_ou_not_printable_or_utf8",
         sign(attr(known::organizational_unit(), StringKind::Bmp, "Unit"))),
        ("e_subject_state_not_printable_or_utf8",
         sign(attr(known::state_or_province(), StringKind::Teletex, "Bern"))),
        ("e_subject_street_not_printable_or_utf8",
         sign(attr(known::street_address(), StringKind::Teletex, "Hauptstraße"))),
        ("e_subject_postal_code_not_printable_or_utf8",
         sign(attr(known::postal_code(), StringKind::Bmp, "8000"))),
        ("e_subject_jurisdiction_locality_not_printable_or_utf8",
         sign(attr(known::jurisdiction_locality(), StringKind::Teletex, "München"))),
        ("e_subject_jurisdiction_state_not_printable_or_utf8",
         sign(attr(known::jurisdiction_state(), StringKind::Bmp, "Bayern"))),
        ("e_subject_given_name_not_printable_or_utf8",
         sign(attr(known::given_name(), StringKind::Bmp, "Anna"))),
        ("e_subject_surname_not_printable_or_utf8",
         sign(attr(known::surname(), StringKind::Bmp, "Muster"))),
        ("e_subject_title_not_printable_or_utf8",
         sign(attr(known::title(), StringKind::Bmp, "Dr"))),
        ("e_subject_business_category_not_printable_or_utf8",
         sign(attr(known::business_category(), StringKind::Bmp, "Private"))),
        ("e_subject_pseudonym_not_printable_or_utf8",
         sign(attr(known::pseudonym(), StringKind::Bmp, "px"))),
        ("e_subject_jurisdiction_country_not_printable",
         sign(attr(known::jurisdiction_country(), StringKind::Utf8, "DE"))),
        ("e_issuer_organization_not_printable_or_utf8",
         sign(issuer_with(known::organization_name(), StringKind::Bmp, "CA Org"))),
        ("e_issuer_common_name_not_printable_or_utf8",
         sign(issuer_with(known::common_name(), StringKind::Bmp, "CA R1"))),
        ("e_issuer_ou_not_printable_or_utf8",
         sign(issuer_with(known::organizational_unit(), StringKind::Bmp, "CA Unit"))),
        ("e_issuer_locality_not_printable_or_utf8",
         sign(issuer_with(known::locality_name(), StringKind::Teletex, "Genève"))),
        ("e_issuer_state_not_printable_or_utf8",
         sign(issuer_with(known::state_or_province(), StringKind::Teletex, "Vaud"))),
        ("e_ext_san_dns_not_ia5string",
         sign(base().add_san(GeneralName::DnsName(RawValue::from_raw(
             StringKind::Ia5, &[b'a', 0xC3, 0xBC, b'b']))))),
        ("e_ext_san_rfc822_not_ia5string",
         sign(base().add_san(GeneralName::Rfc822Name(RawValue::from_raw(
             StringKind::Ia5, "почта@example.com".as_bytes()))))),
        ("e_ext_san_uri_not_ia5string",
         sign(base().add_san(GeneralName::Uri(RawValue::from_raw(
             StringKind::Ia5, "https://bücher.example/".as_bytes()))))),
        ("e_ext_ian_name_not_ia5string",
         sign(base().add_extension(issuer_alt_name(&[GeneralName::DnsName(
             RawValue::from_raw(StringKind::Ia5, "ça.example".as_bytes()))])))),
        ("e_ext_aia_uri_not_ia5string",
         sign(base().add_extension(authority_info_access(&[AccessDescription {
             method: known::ad_ocsp(),
             location: GeneralName::Uri(RawValue::from_raw(
                 StringKind::Ia5, "http://ocsp.bücher.example/".as_bytes())),
         }])))),
        ("e_ext_sia_uri_not_ia5string",
         sign(base().add_extension(subject_info_access(&[AccessDescription {
             method: known::ad_ca_repository(),
             location: GeneralName::Uri(RawValue::from_raw(
                 StringKind::Ia5, "http://repo.bücher.example/".as_bytes())),
         }])))),
        ("e_ext_crldp_uri_not_ia5string",
         sign(base().add_extension(crl_distribution_points(&[vec![GeneralName::Uri(
             RawValue::from_raw(StringKind::Ia5, "http://crl.bücher.example/".as_bytes()))]])))),
        ("e_utf8string_invalid_bytes",
         sign(raw_attr(known::organization_name(), StringKind::Utf8, &[0xC3, 0x28]))),
        ("e_bmpstring_odd_length",
         sign(raw_attr(known::common_name(), StringKind::Bmp, &[0x00, 0x41, 0x42]))),
        ("e_universalstring_invalid_length",
         sign(raw_attr(known::organization_name(), StringKind::Universal, &[0, 0, 0x41]))),
        ("e_bmpstring_surrogate_code_unit",
         sign(raw_attr(known::common_name(), StringKind::Bmp, &[0xD8, 0x00]))),
        ("e_subject_cn_not_directory_string_type", sign(odd_tag_cn())),
        ("e_smtp_utf8_mailbox_not_utf8string",
         sign(smtp_mailbox(StringKind::Printable, "plain@example.com"))),
        ("w_ext_cp_explicit_text_bmpstring",
         sign(policies_text(StringKind::Bmp, "Notice"))),
        ("e_dn_attribute_unknown_string_tag", sign(odd_tag_cn())),
        ("e_ext_cp_cps_uri_not_ia5string",
         sign(base().add_extension(certificate_policies(&[PolicyInformation {
             policy_id: known::any_policy(),
             qualifiers: vec![PolicyQualifier::Cps(RawValue::from_text(
                 StringKind::Utf8, "https://cps.example"))],
         }])))),
        ("e_ext_san_rfc822_contains_non_ascii",
         sign(base().add_san(GeneralName::Rfc822Name(RawValue::from_raw(
             StringKind::Ia5, "grüße@example.com".as_bytes()))))),
        // --- T3c: Invalid Structure ----------------------------------------
        ("w_cab_subject_common_name_not_in_san",
         sign(base().subject_cn("orphan.example").add_dns_san("other.example"))),
        ("e_subject_duplicate_attribute",
         sign(base()
             .subject_attr(known::organizational_unit(), StringKind::Utf8, "A")
             .subject_attr(known::organizational_unit(), StringKind::Utf8, "B"))),
        // --- T3d: Discouraged Field ----------------------------------------
        ("w_cab_subject_contain_extra_common_name",
         sign(base()
             .subject_cn("a.example")
             .subject_cn("b.example")
             .add_dns_san("a.example")
             .add_dns_san("b.example"))),
        ("w_ext_san_uri_discouraged",
         sign(base().add_dns_san("a.example").add_san(GeneralName::uri("https://a.example")))),
    ]
}

#[test]
fn every_lint_fires_on_its_violating_certificate() {
    let registry = default_registry();
    for (name, cert) in violations() {
        assert!(registry.get(name).is_some(), "unknown lint {name}");
        let report = registry.run(&cert, RunOptions::default());
        assert!(
            report.findings.iter().any(|f| f.lint == name),
            "{name} did not fire; findings: {:?}",
            report.findings.iter().map(|f| f.lint).collect::<Vec<_>>()
        );
    }
}

#[test]
fn coverage_is_complete_for_all_95_lints() {
    let registry = default_registry();
    let covered: BTreeMap<&str, usize> =
        violations().iter().map(|(n, _)| (*n, 1)).collect();
    let mut missing: Vec<&str> = registry
        .lints()
        .iter()
        .map(|l| l.name)
        .filter(|n| !covered.contains_key(n))
        .collect();
    missing.sort();
    assert!(missing.is_empty(), "lints without coverage: {missing:?}");
}

#[test]
fn violations_survive_der_round_trips() {
    // Findings must be derivable from the wire form, not builder state.
    let registry = default_registry();
    for (name, cert) in violations() {
        let reparsed = Certificate::parse_der(&cert.raw).unwrap();
        let report = registry.run(&reparsed, RunOptions::default());
        assert!(
            report.findings.iter().any(|f| f.lint == name),
            "{name} lost through DER round trip"
        );
    }
}
